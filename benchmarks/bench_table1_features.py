"""Table 1: benchmark-system feature comparison.

Renders the published matrix and verifies every claim of the PDSP-Bench
row against this codebase (14 real-world apps, 9 synthetic structures,
S/P queries, He/Ho hardware, learned-model integration).
"""

from benchmarks.conftest import emit
from repro.apps import REGISTRY
from repro.cluster import heterogeneous_cluster, homogeneous_cluster
from repro.ml.models import default_models
from repro.report.related_work import pdsp_bench_claims, render_table1
from repro.workload import QueryStructure


def _verify_claims() -> str:
    claims = pdsp_bench_claims()
    assert len(REGISTRY) == claims["real_world_apps"]
    assert len(list(QueryStructure)) == claims["synthetic_apps"]
    assert {model.name for model in default_models()} == {
        "LR", "MLP", "RF", "GNN",
    }
    assert homogeneous_cluster().is_heterogeneous is False
    assert heterogeneous_cluster().is_heterogeneous is True
    # Sequential queries are parallel plans at degree 1; parallel ones at
    # higher degrees — both representable.
    return render_table1()


def test_table1_feature_matrix(benchmark):
    table = benchmark(_verify_claims)
    emit(table)
    emit(
        "verified PDSP-Bench row claims: "
        + ", ".join(f"{k}={v}" for k, v in pdsp_bench_claims().items())
    )
