"""Elastic runtime grid: autoscaling policies under chaos scenarios.

The exp4 experiment (see :mod:`repro.core.experiments.exp4`) crosses
the autoscaling policy plugins — static baseline, reactive queue
hysteresis, predictive cost-model sizing — with reproducible
disturbance scenarios (load spike, straggler, node failure) on a keyed
windowed workload, and scores each cell on SLO-violation-seconds
against resource-seconds. The bench prints the grid and asserts the
qualitative shape an elastic runtime must show:

- every cell is determinism-clean (the race detector runs inside every
  cell; a :class:`DeterminismError` would surface as a cell field);
- the adaptive policies actually rescale under disturbance, the static
  baseline never does;
- under the straggler scenario an adaptive policy spends no *more*
  time in SLO violation than the do-nothing baseline.

This file doubles as the nightly CI lane's entry point:
``pytest benchmarks/bench_elastic_scenarios.py --benchmark-only``.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.experiments.exp4 import policy_comparison
from repro.report import render_table

_POLICIES = (
    "none",
    "reactive:high=4,low=0.5,cooldown=0.3,max=6",
    "predictive:util=0.6,cooldown=0.3,max=6",
)
_SCENARIOS = (
    ("baseline", "none"),
    ("spike", "spike:at=0.5,factor=3,duration=1.0"),
    ("straggler", "straggler:at=0.5,factor=12,duration=1.2"),
    ("failure", "failure:at=0.5,duration=0.4"),
)


def _grid() -> dict:
    return policy_comparison(
        policies=_POLICIES, scenarios=_SCENARIOS, quick=True
    )


def test_elastic_policy_grid(benchmark):
    report = benchmark.pedantic(_grid, rounds=1, iterations=1)
    cells = report["cells"]
    rows = [
        [
            cell["policy"],
            cell["scenario"],
            f"{cell['slo_violation_s']:.3f}",
            f"{cell['resource_hours'] * 3600.0:.2f}",
            f"{cell['rescales']:.1f}",
            f"{cell['p50_latency_ms']:.1f}",
        ]
        for cell in cells
    ]
    emit(
        render_table(
            [
                "policy", "scenario", "SLO viol (s)",
                "resource (s)", "rescales", "p50 (ms)",
            ],
            rows,
            title=(
                "exp4: autoscaling policies x chaos scenarios "
                f"(SLO {report['slo_latency_s'] * 1e3:.0f} ms)"
            ),
        )
    )

    # Determinism-clean: the sanitizer ran inside every cell.
    assert all(cell["determinism_error"] is None for cell in cells)

    by_cell = {(c["policy"], c["scenario"]): c for c in cells}
    # The static baseline never moves; adaptive policies do.
    assert all(
        by_cell[("none", name)]["rescales"] == 0
        for name, _ in _SCENARIOS
    )
    adaptive_rescales = sum(
        by_cell[(policy, name)]["rescales"]
        for policy in ("reactive", "predictive")
        for name, _ in _SCENARIOS
    )
    assert adaptive_rescales >= 1

    # Adapting must not hurt: under the straggler disturbance the
    # adaptive policies spend at most the baseline's violation time.
    for policy in ("reactive", "predictive"):
        assert (
            by_cell[(policy, "straggler")]["slo_violation_s"]
            <= by_cell[("none", "straggler")]["slo_violation_s"]
        )

    # Resource accounting is live in every cell.
    assert all(cell["resource_hours"] > 0 for cell in cells)
