"""Figure 4 (bottom) — Exp 2: synthetic PQPs across clusters and degrees.

Sweeps parallelism categories for a mix of synthetic structures on all
four clusters (homogeneous m510, the two powerful uniform clusters, and a
genuinely mixed c6525_25g+c6320 cluster), and asserts:

- O6: the optimal parallelism category differs across cluster types
  (no consistent balancing point);
- O7: at low parallelism, the homogeneous m510 baseline is competitive
  with — or better than — the mixed heterogeneous cluster for synthetic
  standard-operator PQPs, while high parallelism favours the bigger
  hardware.
"""

from benchmarks.conftest import bench_runner_config, emit
from repro.core.experiments import figure4_bottom
from repro.report import render_figure


def _run():
    return figure4_bottom(runner_config=bench_runner_config(), seed=13)


def test_fig4_bottom_synthetic(benchmark):
    figure = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(render_figure(figure))
    x = figure.shared_x()

    def best_category(series):
        return x[series.y.index(min(series.y))]

    optima = {s.label: best_category(s) for s in figure.series}
    emit(f"optimal parallelism per cluster: {optima}")

    # O6: no single optimal parallelism across cluster types.
    assert len(set(optima.values())) >= 2

    # O7: synthetic PQPs run fine on the homogeneous baseline at low
    # degrees: m510 is within 2x of the mixed cluster at XS.
    ho = figure.series_by_label("Ho-m510")
    mixed = figure.series_by_label("He-mixed")
    assert ho.value_at("XS") < 2.0 * mixed.value_at("XS")

    # ...but the big-core clusters win at the highest degree.
    big = figure.series_by_label("He-c6320")
    assert big.value_at("XXL") < ho.value_at("XXL") * 1.5
