"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper, prints the
paper-style series, and asserts the qualitative observations (O1-O9). The
profile below trades some statistical smoothness for tractable wall time;
EXPERIMENTS.md records a full-profile run.
"""

from __future__ import annotations

import pytest

from repro.core.runner import RunnerConfig


def bench_runner_config(repeats: int = 2) -> RunnerConfig:
    """The benchmark harness measurement profile."""
    return RunnerConfig(
        repeats=repeats,
        dilation=25.0,
        max_tuples_per_source=2500,
        max_sim_time=3.0,
        seed=17,
    )


@pytest.fixture(scope="session")
def runner_config() -> RunnerConfig:
    """Session-wide runner profile."""
    return bench_runner_config()


def emit(text: str) -> None:
    """Print a figure/table so `--benchmark-only` output captures it."""
    print("\n" + text, flush=True)
