"""Failure injection: latency under transient stalls.

Benchmarking systems must characterise behaviour under perturbation, not
just steady state. This bench injects a 200ms stall (GC pause / noisy
neighbour) into a moderately loaded operator and reports the latency
distribution against an unperturbed baseline: the median barely moves
(recovery), while the tail absorbs the full pause.
"""

from benchmarks.conftest import emit
from repro.apps.base import make_generator
from repro.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.report import render_table
from repro.sps import builders
from repro.sps.engine import (
    SimulationConfig,
    StallInjection,
    StreamEngine,
)
from repro.sps.logical import LogicalPlan
from repro.sps.operators.udo import FunctionUDO
from repro.sps.types import DataType, Field, Schema

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def _plan(rate: float) -> LogicalPlan:
    def sample(rng):
        return (int(rng.integers(50)), float(rng.random()))

    plan = LogicalPlan("stall-bench")
    plan.add_operator(
        builders.source(
            "src", make_generator(SCHEMA, sample), SCHEMA, rate
        )
    )
    plan.add_operator(
        builders.udo(
            "work",
            lambda: FunctionUDO(lambda state, t, now: [t]),
            cost_scale=4.0,  # ~60% utilisation at the chosen rate
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "work")
    plan.connect("work", "sink")
    return plan


def _measure():
    results = {}
    for label, stalls in (
        ("baseline", ()),
        (
            "200ms stall @ t=0.5s",
            (StallInjection(at_time=0.5, op_id="work", duration=0.2),),
        ),
    ):
        engine = StreamEngine(
            _plan(rate=4000.0),
            homogeneous_cluster(num_nodes=4),
            config=SimulationConfig(
                max_tuples_per_source=6000,
                max_sim_time=4.0,
                warmup_fraction=0.0,
                stalls=stalls,
            ),
            rng_factory=RngFactory(23),
        )
        metrics = engine.run()
        results[label] = metrics
    return results


def test_failure_injection_latency_profile(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        [
            label,
            metrics.latency.p50 * 1e3,
            metrics.latency.p95 * 1e3,
            metrics.latency.maximum * 1e3,
            metrics.results,
        ]
        for label, metrics in results.items()
    ]
    emit(
        render_table(
            ["scenario", "p50 (ms)", "p95 (ms)", "max (ms)", "results"],
            rows,
            title="Failure injection: 200ms operator stall "
            "(4k ev/s, ~60% utilisation)",
        )
    )
    baseline = results["baseline"]
    stalled = results["200ms stall @ t=0.5s"]
    # Nothing is lost, the tail absorbs the pause, the median recovers.
    assert stalled.results == baseline.results
    assert stalled.latency.maximum > 0.15
    assert stalled.latency.p50 < 4 * max(baseline.latency.p50, 1e-4)