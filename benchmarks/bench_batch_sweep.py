#!/usr/bin/env python
"""Batch-size × throughput/latency sweep — standalone entry point.

Runs the ``hotpath`` and ``WC`` engine workloads under the scalar event
loop and under the columnar micro-batch executor at a ladder of batch
sizes, printing simulator events/sec (wall-clock cost of simulating)
against the simulated mean end-to-end latency (micro-batching trades
latency for throughput: tuples wait for their batch).  See
:func:`repro.core.perf.run_batch_sweep`.

    python benchmarks/bench_batch_sweep.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.perf import run_batch_sweep  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    sweep = run_batch_sweep(quick=args.quick)
    for name, rows in sweep.items():
        print(f"{name}: batch size vs throughput / simulated latency")
        for row in rows:
            label = (
                "scalar"
                if row["batch_size"] is None
                else f"b={row['batch_size']}"
            )
            print(
                f"  {label:>7s}  {row['events_per_sec']:>12,.0f} ev/s"
                f"  latency {row['latency_mean_ms']:>9.3f} ms"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
