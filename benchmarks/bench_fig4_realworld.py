"""Figure 4 (top) — Exp 2: real-world apps across cluster types.

Runs the highlighted applications on the homogeneous m510 cluster and the
two powerful clusters (c6525_25g, c6320), parallelism set to each
cluster's per-node core count, and asserts:

- O5: SA, CA and SD benefit strongly from the powerful heterogeneous
  hardware, while AD does not;
- O7: there is no universal winner — some apps do best on the
  homogeneous baseline.
"""

from benchmarks.conftest import bench_runner_config, emit
from repro.core.experiments import figure4_top
from repro.report import render_figure

APPS = ("WC", "LR", "SA", "CA", "SD", "SG", "AD")


def _run():
    return figure4_top(runner_config=bench_runner_config(), apps=APPS)


def test_fig4_top_realworld(benchmark):
    figure = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(render_figure(figure))

    def series_for(prefix):
        for series in figure.series:
            if series.label.startswith(prefix):
                return series
        raise AssertionError(f"missing series {prefix}")

    ho = series_for("Ho-m510")
    big = series_for("He-c6320")  # 28 cores/node

    def gain(app: str) -> float:
        return ho.value_at(app) / max(big.value_at(app), 1e-9)

    # O5: data-intensive apps benefit from the powerful cluster — the
    # fully compute-bound ones (SD, SG) dramatically, SA and CA clearly.
    for app in ("SD", "SG"):
        assert gain(app) > 2.5, f"{app}: gain {gain(app):.2f}"
    for app in ("SA", "CA"):
        assert gain(app) > 1.25, f"{app}: gain {gain(app):.2f}"
    # ... while AD does not (coordination-bound, not compute-bound).
    assert gain("AD") < 1.15
    assert gain("AD") < gain("SD") / 2

    # O7: no universal choice — the standard-operator apps see no
    # meaningful improvement on the powerful cluster.
    assert any(gain(app) < 1.25 for app in ("WC", "LR", "AD"))
