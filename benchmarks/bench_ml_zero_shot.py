"""Cross-hardware generalization of the learned cost models (C3).

The paper motivates learned SPS models that support *heterogeneous
placements* (ZeroTune, COSTREAM). Since our encodings carry cluster
descriptors (cores, speeds, heterogeneity), a GNN trained on one hardware
pool should transfer zero-shot to another. This bench trains on the
m510 cluster, evaluates on the c6320 cluster, and compares against an
in-domain model — quantifying the transfer gap.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.cluster import homogeneous_cluster
from repro.core.experiments.exp3 import build_labelled_corpus
from repro.ml.models import GNNCostModel
from repro.report import render_table
from repro.workload import QueryStructure, RuleBasedEnumeration


def _measure():
    m510 = homogeneous_cluster("m510", 10)
    c6320 = homogeneous_cluster("c6320", 10)
    structures = list(QueryStructure)
    train_m510 = build_labelled_corpus(
        m510, 300, structures, RuleBasedEnumeration(), seed=51
    )
    train_c6320 = build_labelled_corpus(
        c6320, 300, structures, RuleBasedEnumeration(), seed=52
    )
    test_c6320 = build_labelled_corpus(
        c6320, 120, structures, RuleBasedEnumeration(), seed=53
    )
    # Mixed-hardware corpus: the paper's resource-diversity axis.
    mixed_records = train_m510.records[:150] + train_c6320.records[:150]
    from repro.ml.dataset import Dataset

    results = {}
    for label, corpus in (
        ("in-domain (c6320)", train_c6320),
        ("zero-shot (m510 only)", train_m510),
        ("mixed hardware", Dataset(mixed_records)),
    ):
        rng = np.random.default_rng(7)
        train, val, _ = corpus.split(rng, test_fraction=0.02)
        model = GNNCostModel()
        model.fit(train, val, seed=7)
        results[label] = model.evaluate(test_c6320)["median"]
    return results


def test_ml_zero_shot_hardware_transfer(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    emit(
        render_table(
            ["training corpus", "median q-error on c6320 queries"],
            [[k, v] for k, v in results.items()],
            title="GNN cross-hardware generalization",
        )
    )
    in_domain = results["in-domain (c6320)"]
    zero_shot = results["zero-shot (m510 only)"]
    mixed = results["mixed hardware"]
    # Transfer works: zero-shot predictions remain useful...
    assert zero_shot < 3.0
    # ...in-domain training is at least as good...
    assert in_domain <= zero_shot * 1.5
    # ...and resource-diverse corpora close most of the gap.
    assert mixed <= max(zero_shot, in_domain) * 1.2
