"""Ablation 1: discrete-event engine vs analytic estimator, and the

coordination-overhead term.

DESIGN.md calls out two design decisions this bench validates:

1. The analytic estimator (used to label large ML corpora) must agree
   with the discrete-event engine on *ordering* across configurations —
   that is the property Exp 3 relies on.
2. The coordination-overhead term in the cost model is what produces the
   parallelism paradox (O2): with it removed, latency becomes
   monotonically non-increasing in parallelism.
"""

from scipy import stats

from benchmarks.conftest import bench_runner_config, emit
from repro.cluster import homogeneous_cluster
from repro.core.runner import BenchmarkRunner
from repro.report import render_table
from repro.sps.analytic import AnalyticEstimator
from repro.sps.costs import OperatorCost
from repro.workload import (
    ParameterBasedEnumeration,
    QueryStructure,
    WorkloadGenerator,
)
from repro.workload.generator import scale_plan_costs


def _des_vs_analytic():
    cluster = homogeneous_cluster("m510", 10)
    config = bench_runner_config()
    runner = BenchmarkRunner(cluster, config)
    estimator = AnalyticEstimator(cluster)
    generator = WorkloadGenerator(seed=41)
    rows = []
    des_values, analytic_values = [], []
    for structure in (
        QueryStructure.LINEAR,
        QueryStructure.TWO_WAY_JOIN,
        QueryStructure.THREE_WAY_JOIN,
    ):
        query = generator.generate_one(
            cluster,
            structure,
            strategy=ParameterBasedEnumeration(1),
            event_rate=100_000.0 / config.dilation,
        )
        scale_plan_costs(query.plan, config.dilation)
        for degree in (1, 4, 16):
            query.plan.set_uniform_parallelism(degree)
            des = runner.measure(query.plan)["mean_median_latency_ms"]
            analytic = estimator.estimate(query.plan).latency_ms
            rows.append([structure.value, degree, des, analytic])
            des_values.append(des)
            analytic_values.append(analytic)
    rho = stats.spearmanr(des_values, analytic_values).statistic
    return rows, float(rho)


def _paradox_ablation():
    """The coordination term caps scale-out capacity.

    A stateful operator with coordination coefficient kappa loses
    ``1 + kappa * (p - 1)`` of its per-instance capacity at parallelism
    ``p``. At p = 64 and an event rate *between* the two capacity levels,
    the operator saturates with the term and stays comfortable without
    it — the mechanism behind the parallelism paradox (O2).
    """
    from repro.apps.base import make_generator
    from repro.sps import builders
    from repro.sps.logical import LogicalPlan
    from repro.sps.operators.udo import FunctionUDO
    from repro.sps.types import DataType, Field, Schema

    from repro.core.runner import RunnerConfig

    cluster = homogeneous_cluster("m510", 10)
    config = RunnerConfig(
        repeats=2,
        dilation=25.0,
        max_tuples_per_source=20_000,
        max_sim_time=3.0,
        seed=17,
    )
    runner = BenchmarkRunner(cluster, config)
    schema = Schema([Field("k", DataType.INT),
                     Field("v", DataType.DOUBLE)])

    def sample(rng):
        return (int(rng.integers(1000)), float(rng.random()))

    # 64 instances at 40us/tuple give a nominal capacity of 1.6M/s;
    # the coordination factor at p=64 is 1.63, cutting it to ~982k/s.
    # 1.2M/s sits between the two: saturated *only* with the term.
    rate = 1_200_000.0 / config.dilation
    results = {}
    for label, kappa in (
        ("with-coordination", 0.010),
        ("no-coordination", 0.0),
    ):
        plan = LogicalPlan(f"ablation-{label}")
        plan.add_operator(
            builders.source(
                "src", make_generator(schema, sample), schema, rate
            )
        )
        plan.add_operator(
            builders.udo(
                "stateful",
                lambda: FunctionUDO(lambda state, t, now: [t]),
                cost=OperatorCost(
                    base_cpu_s=40.0e-6 * config.dilation,
                    coord_kappa=kappa,
                    stateful=True,
                    is_udo=True,
                ),
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "stateful")
        plan.connect("stateful", "sink")
        latencies = []
        for degree in (16, 64):
            plan.set_uniform_parallelism(degree)
            # Sources are cheap; keeping them at 8 keeps total subtasks
            # within the 80 slots so slot contention cannot confound
            # the coordination-term comparison.
            plan.set_parallelism({"src": 8})
            latencies.append(
                runner.measure(plan)["mean_median_latency_ms"]
            )
        results[label] = latencies
    return results


def test_ablation_engine_vs_analytic(benchmark):
    (rows, rho) = benchmark.pedantic(
        _des_vs_analytic, rounds=1, iterations=1
    )
    emit(
        render_table(
            ["structure", "parallelism", "DES ms", "analytic ms"],
            rows,
            title="Ablation: discrete-event engine vs analytic estimator",
        )
    )
    emit(f"Spearman rank correlation: {rho:.3f}")
    assert rho > 0.5  # same ordering story across configurations


def test_ablation_coordination_term(benchmark):
    results = benchmark.pedantic(
        _paradox_ablation, rounds=1, iterations=1
    )
    emit(
        render_table(
            ["variant", "p=16", "p=64"],
            [[k, *v] for k, v in results.items()],
            title="Ablation: coordination overhead caps scale-out "
            "capacity (stateful UDO @ 1.2M ev/s)",
        )
    )
    with_coord = results["with-coordination"]
    without = results["no-coordination"]
    # At p=16 both variants are saturated (rate >> capacity). Scaling
    # out to p=64 rescues the plan only WITHOUT the coordination term:
    # with it, capacity stays below the offered rate and the backlog
    # keeps the latency an order of magnitude higher.
    assert with_coord[-1] > 5.0 * without[-1]
    # Scaling out helped the no-coordination variant dramatically.
    assert without[-1] < without[0] / 5.0
