"""Scalability: sustainable throughput vs parallelism.

Table 1 marks PDSP-Bench "Fully" scalable: the workload generator can
raise event rates (Table 3's ladder reaches 4M ev/s) until the SUT
saturates at any parallelism. This bench measures the sustainable
throughput of the data-intensive Spike Detection app at increasing
parallelism degrees — the capacity curve behind Figure 3 (bottom)'s
latency cliffs.
"""

from benchmarks.conftest import emit
from repro.cluster import homogeneous_cluster
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.core.throughput import sustainable_throughput
from repro.report import render_table

LADDER = (
    1_000.0,
    5_000.0,
    20_000.0,
    50_000.0,
    100_000.0,
    200_000.0,
    500_000.0,
    1_000_000.0,
)

CONFIG = RunnerConfig(
    repeats=1,
    dilation=25.0,
    max_tuples_per_source=4000,
    max_sim_time=150.0,
    seed=17,
)


def _measure():
    runner = BenchmarkRunner(homogeneous_cluster("m510", 10), CONFIG)
    results = {}
    for parallelism in (1, 4, 16, 64):
        results[parallelism] = sustainable_throughput(
            runner, "SD", parallelism, rates=LADDER, refine_steps=1
        )
    return results


def test_scalability_sustainable_throughput(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        [
            parallelism,
            result.sustainable_rate,
            result.baseline_latency_ms,
            result.latency_at_limit_ms,
        ]
        for parallelism, result in results.items()
    ]
    emit(
        render_table(
            [
                "parallelism", "sustainable rate (ev/s)",
                "baseline latency (ms)", "latency at limit (ms)",
            ],
            rows,
            title="Sustainable throughput of SD vs parallelism "
            "(10 x m510)",
        )
    )
    rates = [r.sustainable_rate for r in results.values()]
    # Capacity grows with parallelism, by a large total factor...
    assert all(b >= a for a, b in zip(rates, rates[1:]))
    assert rates[-1] >= 8 * rates[0]
    # ...but sub-linearly: 64x the instances do not give 64x capacity
    # (coordination overhead — the same mechanism as O2).
    assert rates[-1] < 64 * rates[0]
