"""Partitioning strategies under key skew (Table 3's partitioning row).

PDSP-Bench enumerates data partitioning strategies (forward, rebalance,
hashing) as a workload dimension. This bench quantifies why: with
Zipf-skewed keys, hash partitioning concentrates load on hot instances of
an expensive operator while rebalance spreads it; for *stateless*
operators the choice changes latency dramatically.
"""

import numpy as np

from benchmarks.conftest import bench_runner_config, emit
from repro.apps.base import make_generator
from repro.cluster import homogeneous_cluster
from repro.core.runner import BenchmarkRunner
from repro.report import render_table
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.udo import FunctionUDO
from repro.sps.partitioning import HashPartitioner, RebalancePartitioner
from repro.sps.types import DataType, Field, Schema
from repro.workload.distributions import ZipfInt

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])
ZIPF = ZipfInt(n=64, s=1.4)  # heavily skewed keys


def _plan(partitioner, rate):
    def sample(rng):
        return (ZIPF.sample(rng), float(rng.random()))

    plan = LogicalPlan(f"skew-{partitioner.name}")
    plan.add_operator(
        builders.source(
            "src", make_generator(SCHEMA, sample), SCHEMA, rate,
            parallelism=2,
        )
    )
    plan.add_operator(
        builders.udo(
            "heavy",
            lambda: FunctionUDO(lambda state, t, now: [t]),
            parallelism=8,
            # Calibrated so the *balanced* load sits at ~60% utilisation
            # while the Zipf head key alone (~36% of traffic) overloads
            # a single hash-target instance.
            cost_scale=1.0,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "heavy", partitioner=partitioner)
    plan.connect("heavy", "sink")
    return plan


def _measure():
    config = bench_runner_config()
    runner = BenchmarkRunner(homogeneous_cluster("m510", 10), config)
    rate = 120_000.0 / config.dilation
    results = {}
    for partitioner in (
        HashPartitioner(key_field=0),
        RebalancePartitioner(),
    ):
        plan = _plan(partitioner, rate)
        from repro.workload.generator import scale_plan_costs

        scale_plan_costs(plan, config.dilation)
        runs = runner.run_plan(plan)
        latency = float(
            np.mean([run.latency.p50 for run in runs]) * 1e3
        )
        peak = max(run.operator_queue_peak["heavy"] for run in runs)
        results[partitioner.name] = (latency, peak)
    return results


def test_partitioning_under_skew(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        [name, latency, peak]
        for name, (latency, peak) in results.items()
    ]
    emit(
        render_table(
            ["partitioning", "median latency (ms)", "peak queue depth"],
            rows,
            title="Partitioning under Zipf key skew "
            "(stateless heavy operator, 120k ev/s)",
        )
    )
    hash_latency, hash_peak = results["hash"]
    rebalance_latency, rebalance_peak = results["rebalance"]
    # The hot hash instance saturates: worse latency, deeper queues.
    assert hash_latency > 3.0 * rebalance_latency
    assert hash_peak > rebalance_peak
