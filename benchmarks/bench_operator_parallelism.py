"""Per-operator parallelism: why uniform degrees waste resources.

The paper's enumeration rationale (Section 3.1): "selecting higher
parallelism degrees for downstream operators is less meaningful since
there are anyways less tuples... random selection of parallelism degrees
leads to a plan that is very bad in performance because it first limits
processing capabilities by selecting only one instance of filter".

This bench isolates the effect: for a filtered 2-way join, it scales only
one operator at a time and compares against the rule-based assignment —
scaling the bottleneck join helps, scaling the post-filter aggregate does
not, and the paper's pathological example (starved upstream, wide
downstream) wastes its resources.
"""

from benchmarks.conftest import bench_runner_config, emit
from repro.cluster import homogeneous_cluster
from repro.core.runner import BenchmarkRunner
from repro.report import render_table
from repro.workload import (
    ParameterBasedEnumeration,
    QueryStructure,
    RuleBasedEnumeration,
    WorkloadGenerator,
)
from repro.workload.generator import scale_plan_costs


def _measure():
    cluster = homogeneous_cluster("m510", 10)
    config = bench_runner_config()
    runner = BenchmarkRunner(cluster, config)

    def fresh_query():
        generator = WorkloadGenerator(seed=61)
        query = generator.generate_one(
            cluster,
            QueryStructure.FILTER_JOIN_AGG,
            strategy=ParameterBasedEnumeration(1),
            event_rate=150_000.0 / config.dilation,
        )
        scale_plan_costs(query.plan, config.dilation)
        return query

    baseline = {op: 1 for op in fresh_query().plan.operators}
    variants: dict[str, dict[str, int]] = {
        "all @ 1": dict(baseline),
        "join0 @ 8": {**baseline, "join0": 8},
        "agg0 @ 8": {**baseline, "agg0": 8},
        "paper's bad plan (joins wide, filters starved)": {
            **baseline, "join0": 16, "agg0": 16,
        },
    }
    results = {}
    for label, degrees in variants.items():
        query = fresh_query()
        query.plan.set_parallelism(
            {k: v for k, v in degrees.items() if k != "sink"}
        )
        results[label] = runner.measure(query.plan)[
            "mean_median_latency_ms"
        ]
    # The rule-based heuristic's assignment, for comparison.
    query = fresh_query()
    rule = RuleBasedEnumeration(exploration=0.0)
    assignment = rule.required_degrees(query.plan, cluster)
    query.plan.set_parallelism(
        {k: v for k, v in assignment.items() if k != "sink"}
    )
    results[f"rule-based {assignment}"] = runner.measure(query.plan)[
        "mean_median_latency_ms"
    ]
    return results


def test_operator_level_parallelism(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    emit(
        render_table(
            ["assignment", "median latency (ms)"],
            [[k, v] for k, v in results.items()],
            title="Per-operator parallelism on a filtered 2-way join "
            "@ 150k ev/s",
        )
    )
    all_one = results["all @ 1"]
    join_scaled = results["join0 @ 8"]
    agg_scaled = results["agg0 @ 8"]
    rule_based = next(
        v for k, v in results.items() if k.startswith("rule-based")
    )
    # Scaling the bottleneck join helps; scaling the downstream
    # aggregate (fed by thinned data) does not.
    assert join_scaled < 0.85 * all_one
    assert agg_scaled > 0.9 * all_one
    assert join_scaled < agg_scaled
    # The rule-based assignment matches the best variant's ballpark
    # without sweeping (it computed join0 needs ~3 instances, others 1).
    assert rule_based < 1.25 * min(results.values())