"""Table 2: the application suite.

Builds every application of the suite, renders the Table 2 metadata and
per-app plan shapes, and benchmarks building + validating all 14 plans.
"""

from benchmarks.conftest import emit
from repro.apps import APP_INFOS, REGISTRY, build_app
from repro.report import render_table


def _build_all():
    queries = {}
    for abbrev in sorted(REGISTRY):
        query = build_app(abbrev, event_rate=100_000.0)
        query.plan.validate()
        queries[abbrev] = query
    return queries


def test_table2_application_suite(benchmark):
    queries = benchmark(_build_all)
    assert len(queries) == 14
    rows = []
    for abbrev, query in queries.items():
        info = APP_INFOS[abbrev]
        rows.append(
            [
                abbrev,
                info.name,
                info.area,
                "yes" if info.uses_udo else "no",
                info.data_intensity,
                query.plan.num_operators,
                len(query.plan.sources()),
                info.origin,
            ]
        )
    emit(
        render_table(
            [
                "abbrev", "application", "area", "UDO", "intensity",
                "ops", "sources", "origin",
            ],
            rows,
            title="Table 2: PDSP-Bench application suite (14 real-world)",
        )
    )
