"""Figure 3 (top) — Exp 1: synthetic PQP complexity vs parallelism.

Regenerates the latency-vs-parallelism-category series for synthetic
structures from a linear filter query to a 4-way join on the homogeneous
10 x m510 cluster at 100k events/s, and asserts:

- O1: multi-way join queries speed up with parallelism; filters-only
  queries stay flat;
- O2: join gains saturate — the XS->M improvement dominates XL->XXL;
- O4: the latency/parallelism relationship is non-linear.
"""

import numpy as np

from benchmarks.conftest import bench_runner_config, emit
from repro.core.experiments import figure3_top
from repro.report import render_figure
from repro.workload import QueryStructure

STRUCTURES = (
    QueryStructure.LINEAR,
    QueryStructure.TWO_FILTER_CHAIN,
    QueryStructure.THREE_FILTER_CHAIN,
    QueryStructure.TWO_WAY_JOIN,
    QueryStructure.THREE_WAY_JOIN,
    QueryStructure.FOUR_WAY_JOIN,
)


def _run():
    return figure3_top(
        runner_config=bench_runner_config(),
        structures=STRUCTURES,
        seed=21,
    )


def test_fig3_top_synthetic(benchmark):
    figure = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(render_figure(figure))

    joins = figure.series_by_label("three_way_join")
    linear = figure.series_by_label("linear")

    # O1: joins gain from parallelism, filters-only queries do not.
    assert joins.value_at("M") < joins.value_at("XS")
    assert linear.value_at("XL") < 3 * linear.value_at("XS")

    # O2: early gains dominate late gains (parallelism paradox onset).
    early = joins.value_at("XS") - joins.value_at("M")
    late = abs(joins.value_at("XL") - joins.value_at("XXL"))
    assert early > late

    # O4: non-linearity — successive relative improvements are not
    # constant across the sweep for join queries.
    y = np.array(joins.y)
    ratios = y[:-1] / np.maximum(y[1:], 1e-9)
    assert ratios.max() > 1.5 * max(ratios.min(), 1e-9)
