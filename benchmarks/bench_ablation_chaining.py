"""Ablation 3: operator chaining (task fusion).

Flink chains forward-connected operators by default; the simulator
reproduces that optimization opt-in. This bench measures a three-stage
stateless pipeline at the paper's headline rate with chaining on and off:
fusion removes two queued exchanges (and their cross-node network hops)
per tuple, cutting latency — and quantifies exactly what the paper's SUT
gains from Flink's default chaining.
"""

from benchmarks.conftest import bench_runner_config, emit
from repro.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.report import render_table
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from repro.workload.generator import scale_plan_costs
from tests.conftest import kv_generator

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def _pipeline(rate: float, parallelism: int) -> LogicalPlan:
    plan = LogicalPlan("chaining-ablation")
    plan.add_operator(
        builders.source(
            "src", kv_generator(num_keys=100), SCHEMA, rate,
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.filter_op(
            "f1",
            Predicate(1, FilterFunction.GT, 0.1, selectivity_hint=0.9),
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.map_op(
            "m1",
            lambda values: (values[0], values[1] * 10.0),
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.filter_op(
            "f2",
            Predicate(1, FilterFunction.LT, 9.0, selectivity_hint=0.9),
            parallelism=parallelism,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "f1")
    plan.connect("f1", "m1")
    plan.connect("m1", "f2")
    plan.connect("f2", "sink")
    return plan


def _measure():
    config = bench_runner_config()
    cluster = homogeneous_cluster("m510", 10)
    results = {}
    for label, chaining in (("chained", True), ("unchained", False)):
        medians = []
        for repeat in range(config.repeats):
            plan = _pipeline(
                100_000.0 / config.dilation, parallelism=4
            )
            scale_plan_costs(plan, config.dilation)
            engine = StreamEngine(
                plan,
                cluster,
                config=SimulationConfig(
                    max_tuples_per_source=config.max_tuples_per_source,
                    max_sim_time=config.max_sim_time,
                ),
                rng_factory=RngFactory(100 + repeat),
                chaining=chaining,
            )
            metrics = engine.run()
            medians.append(metrics.latency.p50)
        results[label] = (
            sum(medians) / len(medians) * 1e3,
            metrics.extras["events_processed"],
        )
    return results


def test_ablation_operator_chaining(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    emit(
        render_table(
            ["variant", "median latency (ms)", "engine events"],
            [[k, latency, events]
             for k, (latency, events) in results.items()],
            title="Ablation: operator chaining "
            "(filter-map-filter pipeline @ 100k ev/s, p=4)",
        )
    )
    chained_latency, chained_events = results["chained"]
    unchained_latency, unchained_events = results["unchained"]
    # Fusion removes two exchanges per tuple: lower latency, and far
    # fewer simulation events (a proxy for real task-to-task traffic).
    assert chained_latency < unchained_latency
    assert chained_events < 0.7 * unchained_events
