"""Figure 5 — Exp 3(1): learned cost model accuracy per query structure.

Trains LR, MLP, RF and GNN on one shared corpus (uniform early stopping)
and reports median q-error per synthetic query structure, asserting:

- O8: the GNN's graph encoding gives it the lowest overall q-error, and
  it stays accurate as query complexity grows.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.experiments import figure5
from repro.report import render_figure


def _run():
    return figure5(corpus_size=400, seed=5)


def test_fig5_cost_models(benchmark):
    figure = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(render_figure(figure))

    medians = {
        s.label: float(np.nanmedian(s.y)) for s in figure.series
    }
    emit(f"median-of-structure-medians q-error: {medians}")

    # O8: GNN wins overall.
    assert medians["GNN"] == min(medians.values())

    # O8: GNN stays accurate on the most complex structures (the last
    # third of the complexity ordering).
    gnn = figure.series_by_label("GNN")
    complex_tail = [v for v in gnn.y[-3:] if not np.isnan(v)]
    assert complex_tail and max(complex_tail) < 2.5
