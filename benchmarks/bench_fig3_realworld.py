"""Figure 3 (bottom) — Exp 1: real-world applications vs parallelism.

Regenerates the per-application latency series over parallelism degrees
1..128 on the homogeneous cluster and asserts:

- O1: data-intensive UDO apps (SA, SG, SD) gain far more from
  parallelism than standard-operator apps (WC, LR);
- O2: SG/SD keep improving past degree 16, while AD's gains stall;
- O3: the UDO-heavy AD scales non-monotonically (overhead can degrade
  performance at high degrees).
"""

from benchmarks.conftest import bench_runner_config, emit
from repro.core.experiments import figure3_bottom
from repro.core.experiments.exp1 import EXTENDED_CATEGORIES
from repro.report import render_figure

APPS = ("WC", "LR", "MO", "SA", "SG", "SD", "CA", "AD")


def _run():
    return figure3_bottom(
        runner_config=bench_runner_config(),
        apps=APPS,
        categories=EXTENDED_CATEGORIES,
    )


def _speedup(series, low="XS", high="3XL") -> float:
    return series.value_at(low) / max(series.value_at(high), 1e-9)


def test_fig3_bottom_realworld(benchmark):
    figure = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(render_figure(figure))

    # O1: UDO-heavy apps benefit much more than standard-operator apps.
    for heavy in ("SA", "SG", "SD"):
        assert _speedup(figure.series_by_label(heavy)) > 3.0
    for light in ("WC", "LR"):
        assert _speedup(figure.series_by_label(light)) < 2.0

    # O2: SG/SD still improve beyond degree 16 (XL -> 3XL).
    for app in ("SG", "SD"):
        series = figure.series_by_label(app)
        assert series.value_at("3XL") < series.value_at("XL")

    # O2/O3: AD's gains stall — best degree is modest, and very high
    # parallelism is no better than its optimum.
    ad = figure.series_by_label("AD")
    best = min(ad.y)
    assert ad.value_at("4XL") > best
    assert ad.value_at("XS") / best < 4.0  # only modest total gain
