"""Figure 6 — Exp 3(2): enumeration strategies and training efficiency.

Compares rule-based and random parallelism enumeration for GNN training:

- Figure 6a: q-error vs number of training queries, on seen structures
  (the training distribution) and unseen ones;
- Figure 6b: total cost (data collection at the paper's 3 x 5 min
  protocol + training) to reach the target accuracy.

Asserts O9: rule-based enumeration reaches the accuracy target with fewer
queries — and therefore roughly 3x less total time — than random.
"""

from benchmarks.conftest import emit
from repro.core.experiments import figure6
from repro.report import render_figure

TARGET_Q = 1.6


def _run():
    return figure6(
        training_sizes=(25, 50, 100, 200, 400),
        test_size=160,
        target_q=TARGET_Q,
        seed=9,
    )


def test_fig6_enumeration_strategies(benchmark):
    fig6a, fig6b = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(render_figure(fig6a))
    emit(render_figure(fig6b))

    rule = fig6b.series_by_label("rule-based")
    random_ = fig6b.series_by_label("random")
    rule_queries = rule.value_at("queries to target")
    random_queries = random_.value_at("queries to target")
    rule_hours = rule.value_at("total hours")
    random_hours = random_.value_at("total hours")
    emit(
        f"queries to q<= {TARGET_Q}: rule-based={rule_queries:.0f}, "
        f"random={random_queries:.0f}; hours: "
        f"rule-based={rule_hours:.1f}, random={random_hours:.1f} "
        f"(ratio {random_hours / rule_hours:.1f}x)"
    )

    # O9: rule-based needs no more queries than random, and
    # substantially less total time (the paper reports ~3x).
    assert rule_queries <= random_queries
    assert random_hours >= 1.5 * rule_hours

    # Rule-based accuracy improves with corpus size on seen structures.
    seen = fig6a.series_by_label("rule-based (seen)")
    assert seen.y[-1] <= seen.y[0]
