#!/usr/bin/env python
"""Checkpointing-overhead sweep — standalone entry point.

Runs the ``hotpath`` engine workload with aligned-barrier checkpointing
at a ladder of checkpoint intervals (plus a checkpointing-off baseline)
and prints simulator events/sec next to the checkpoint accounting from
``extras["ft"]`` — how many checkpoints completed, the snapshotted
state size, and the mean barrier round-trip.  Shorter intervals mean
more barrier traffic and more alignment stalls, so throughput decays as
the interval shrinks; this sweep makes that control-plane cost visible
(the regression gate pins one point of it via the ``hotpath-ckpt``
workload in ``BENCH_engine.json``).

    python benchmarks/bench_ft_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster import homogeneous_cluster  # noqa: E402
from repro.common.rng import RngFactory  # noqa: E402
from repro.core.perf import _BENCH_SEED, hotpath_plan  # noqa: E402
from repro.sps.engine import SimulationConfig, StreamEngine  # noqa: E402

#: Checkpoint intervals swept, seconds; ``None`` is the FT-off baseline.
INTERVALS: tuple[float | None, ...] = (None, 1.0, 0.5, 0.25, 0.1, 0.05)


def run_ft_overhead_sweep(quick: bool = False) -> list[dict]:
    """events/sec and checkpoint accounting per interval."""
    tuples = 1500 if quick else 5000
    rounds = 1 if quick else 2
    cluster = homogeneous_cluster("m510", 4)
    rows: list[dict] = []
    for interval in INTERVALS:
        sim = SimulationConfig(
            max_tuples_per_source=tuples,
            max_sim_time=8.0,
            checkpoint_interval=interval,
        )
        best = 0.0
        ft: dict = {}
        for _ in range(rounds):
            engine = StreamEngine(
                hotpath_plan(),
                cluster,
                config=sim,
                rng_factory=RngFactory(_BENCH_SEED),
            )
            start = time.perf_counter()
            metrics = engine.run()
            elapsed = time.perf_counter() - start
            events = metrics.extras["events_processed"]
            best = max(best, events / elapsed)
            ft = metrics.extras.get("ft", {})
        rows.append(
            {
                "checkpoint_interval": interval,
                "events_per_sec": round(best, 1),
                "checkpoints_completed": ft.get("checkpoints_completed", 0),
                "state_bytes": ft.get("state_bytes", 0.0),
                "checkpoint_duration_mean_s": ft.get(
                    "checkpoint_duration_mean_s", 0.0
                ),
            }
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    rows = run_ft_overhead_sweep(quick=args.quick)
    baseline = rows[0]["events_per_sec"]
    print("checkpoint interval vs simulator throughput (hotpath):")
    for row in rows:
        label = (
            "off"
            if row["checkpoint_interval"] is None
            else f"{1000.0 * row['checkpoint_interval']:.0f}ms"
        )
        print(
            f"  {label:>6s}  {row['events_per_sec']:>12,.0f} ev/s"
            f"  ({100.0 * row['events_per_sec'] / baseline:5.1f}%)"
            f"  ckpts {row['checkpoints_completed']:>3d}"
            f"  state {row['state_bytes']:>8,.0f} B"
            f"  rtt {1000.0 * row['checkpoint_duration_mean_s']:7.3f} ms"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
