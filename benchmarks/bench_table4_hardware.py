"""Table 4: CloudLab hardware configuration.

Renders the encoded node catalog and benchmarks building all four
experiment clusters plus placing an 80-subtask plan on each.
"""

from benchmarks.conftest import emit
from repro.cluster import HARDWARE_CATALOG
from repro.core.experiments.exp2 import default_clusters
from repro.report import render_table
from repro.sps.physical import PhysicalPlan
from repro.sps.placement import RoundRobinPlacement
from repro.workload import QueryStructure, WorkloadGenerator


def _build_and_place():
    clusters = default_clusters()
    generator = WorkloadGenerator(seed=3)
    placements = {}
    for name, cluster in clusters.items():
        query = generator.generate_one(
            cluster, QueryStructure.THREE_WAY_JOIN, event_rate=1000.0
        )
        query.plan.set_uniform_parallelism(8)
        physical = PhysicalPlan.from_logical(query.plan)
        placements[name] = RoundRobinPlacement().place(physical, cluster)
    return clusters, placements


def test_table4_hardware(benchmark):
    clusters, placements = benchmark(_build_and_place)
    rows = [
        [
            spec.name,
            spec.cores,
            spec.ram_gb,
            spec.disk_gb,
            spec.processor,
            spec.clock_ghz,
            spec.nic_gbps,
            f"{spec.speed_factor:.2f}",
        ]
        for spec in HARDWARE_CATALOG.values()
    ]
    emit(
        render_table(
            [
                "node", "cores", "RAM GB", "disk GB", "processor",
                "GHz", "NIC Gbps", "speed",
            ],
            rows,
            title="Table 4: hardware configuration (CloudLab)",
        )
    )
    cluster_rows = [
        [name, cluster.describe(), len(placements[name].nodes_used())]
        for name, cluster in clusters.items()
    ]
    emit(
        render_table(
            ["cluster", "composition", "nodes used by 8x plan"],
            cluster_rows,
            title="Experiment clusters",
        )
    )
    assert {"m510", "c6525_25g", "c6320"} <= set(HARDWARE_CATALOG)
