"""Ablation 2: selectivity-aware literal generation (Section 3.1).

The paper's motivation for selectivity estimation during query generation:
naive random literals "may result that data never passes the generated
filter". This bench draws filters both ways over randomized distributions
and measures how many queries are degenerate (selectivity ~0 or ~1).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.report import render_table
from repro.sps.predicates import FilterFunction
from repro.sps.types import DataType
from repro.workload.distributions import default_distribution
from repro.workload.selectivity import draw_predicate, estimate_selectivity

TRIALS = 400


def _naive_predicate(dist, rng):
    """Uniform-random function + literal, no selectivity check."""
    functions = [
        f for f in FilterFunction if f.applies_to(dist.dtype)
    ]
    function = functions[int(rng.integers(len(functions)))]
    if dist.dtype is DataType.STRING:
        literal = dist.sample(rng)
    else:
        # A naive generator guesses literals from a generic range,
        # oblivious to the field's actual distribution.
        literal = float(rng.uniform(-1e4, 1e4))
        if dist.dtype is DataType.INT:
            literal = int(literal)
    return function, literal


def _compare():
    rng = np.random.default_rng(59)
    degenerate = {"naive": 0, "selectivity-aware": 0}
    for _ in range(TRIALS):
        dtype = [DataType.INT, DataType.DOUBLE, DataType.STRING][
            int(rng.integers(3))
        ]
        dist = default_distribution(dtype, rng)
        function, literal = _naive_predicate(dist, rng)
        naive_sel = estimate_selectivity(function, literal, dist)
        if naive_sel <= 0.01 or naive_sel >= 0.99:
            degenerate["naive"] += 1
        aware = draw_predicate(dist, 0, rng)
        aware_sel = estimate_selectivity(
            aware.function, aware.literal, dist
        )
        if aware_sel <= 0.01 or aware_sel >= 0.99:
            degenerate["selectivity-aware"] += 1
    return degenerate


def test_ablation_selectivity_aware_generation(benchmark):
    degenerate = benchmark(_compare)
    rows = [
        [name, count, f"{100.0 * count / TRIALS:.1f}%"]
        for name, count in degenerate.items()
    ]
    emit(
        render_table(
            ["generator", "degenerate filters", "rate"],
            rows,
            title="Ablation: selectivity-aware literal generation "
            f"({TRIALS} trials)",
        )
    )
    # The naive generator produces many pass-nothing/pass-everything
    # filters; the selectivity-aware one essentially none.
    assert degenerate["naive"] > TRIALS * 0.2
    assert degenerate["selectivity-aware"] <= TRIALS * 0.02
