"""Table 3: evaluation parameter ranges.

Renders the configured parameter space and benchmarks the workload
generator sweeping it: 90 queries (10 per structure) with
selectivity-checked literals and rule-based parallelism.
"""

from benchmarks.conftest import emit
from repro.cluster import homogeneous_cluster
from repro.report import render_table
from repro.sps.logical import OperatorKind
from repro.workload import (
    ParameterSpace,
    QueryStructure,
    WorkloadGenerator,
)
from repro.workload.parameter_space import (
    EVENT_RATES,
    PARALLELISM_CATEGORIES,
    PARALLELISM_DEGREES,
    PARTITIONING_STRATEGIES,
    SLIDING_RATIOS,
    TUPLE_WIDTHS,
    WINDOW_DURATIONS_MS,
    WINDOW_LENGTHS,
)


def _render_space() -> str:
    space = ParameterSpace()
    rows = [
        ["query structures", ", ".join(s.value for s in QueryStructure)],
        ["parallelism degrees", str(list(PARALLELISM_DEGREES))],
        ["parallelism categories", str(PARALLELISM_CATEGORIES)],
        ["event rates (ev/s)", str([int(r) for r in EVENT_RATES])],
        ["window durations (ms)", str(list(WINDOW_DURATIONS_MS))],
        ["window lengths (tuples)", str(list(WINDOW_LENGTHS))],
        ["sliding ratios", str(list(SLIDING_RATIOS))],
        ["tuple widths", f"{min(TUPLE_WIDTHS)}-{max(TUPLE_WIDTHS)}"],
        ["data types", ", ".join(t.value for t in space.data_types)],
        [
            "aggregate functions",
            ", ".join(f.value for f in space.aggregate_functions),
        ],
        [
            "filter functions",
            ", ".join(f.value for f in space.filter_functions),
        ],
        ["partitioning strategies", ", ".join(PARTITIONING_STRATEGIES)],
        ["selectivity band", str(space.selectivity_band)],
    ]
    return render_table(
        ["parameter", "range"], rows,
        title="Table 3: evaluation parameter ranges",
    )


def _generate_sweep():
    cluster = homogeneous_cluster("m510", 10)
    generator = WorkloadGenerator(seed=31)
    queries = generator.generate(cluster, count=90)
    for query in queries:
        query.plan.validate()
        for op in query.plan.operators.values():
            if op.kind is OperatorKind.FILTER:
                assert 0.0 < op.selectivity < 1.0
    return queries


def test_table3_parameter_space(benchmark):
    queries = benchmark(_generate_sweep)
    emit(_render_space())
    structures = {q.structure for q in queries}
    assert structures == set(QueryStructure)
    emit(
        f"generated {len(queries)} valid PQPs covering "
        f"{len(structures)} structures; all filter selectivities in (0,1)"
    )
