"""Latency across the event-rate ladder (Table 3's event-rate row).

The paper evaluates rates from 10 to 4M events/s and presents results at
100k "as intuitively higher scale of events will benefit from
parallelism". This bench sweeps the ladder for a 2-way join at two
parallelism degrees, showing (i) the saturation onset moving right with
parallelism and (ii) why the paper's headline rate sits where parallelism
matters.
"""

from benchmarks.conftest import emit
from repro.cluster import homogeneous_cluster
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.report import FigureData, Series, render_figure
from repro.workload import (
    ParameterBasedEnumeration,
    QueryStructure,
    WorkloadGenerator,
)
from repro.workload.generator import scale_plan_costs

RATES = (1_000.0, 10_000.0, 50_000.0, 100_000.0, 200_000.0, 500_000.0)

DILATION = 25.0
#: Simulated stream length per configuration (seconds). The tuple budget
#: scales with the rate so high-rate runs keep enough stream time for
#: backlogs to develop — a fixed budget would shrink the stream as the
#: rate rises and mask saturation.
STREAM_SECONDS = 1.5


def _config_for(rate: float) -> RunnerConfig:
    sim_rate = rate / DILATION
    budget = int(max(3000, sim_rate * STREAM_SECONDS))
    return RunnerConfig(
        repeats=1,
        dilation=DILATION,
        max_tuples_per_source=budget,
        max_sim_time=150.0,
        seed=17,
    )


def _measure():
    cluster = homogeneous_cluster("m510", 10)
    series = []
    for parallelism in (2, 16):
        latencies = []
        for rate in RATES:
            config = _config_for(rate)
            runner = BenchmarkRunner(cluster, config)
            generator = WorkloadGenerator(seed=37)
            query = generator.generate_one(
                cluster,
                QueryStructure.TWO_WAY_JOIN,
                strategy=ParameterBasedEnumeration(1),
                event_rate=rate / config.dilation,
            )
            scale_plan_costs(query.plan, config.dilation)
            query.plan.set_uniform_parallelism(parallelism)
            latencies.append(
                runner.measure(query.plan)["mean_median_latency_ms"]
            )
        series.append(
            Series(f"p={parallelism}", [f"{r:g}" for r in RATES],
                   latencies)
        )
    return FigureData(
        figure_id="event-rates",
        title="2-way join latency across the Table 3 event-rate ladder",
        x_label="event rate (ev/s)",
        y_label="mean median e2e latency (ms)",
        series=series,
    )


def test_event_rate_ladder(benchmark):
    figure = benchmark.pedantic(_measure, rounds=1, iterations=1)
    emit(render_figure(figure))
    low_p = figure.series_by_label("p=2")
    high_p = figure.series_by_label("p=16")
    # At low rates parallelism buys nothing...
    assert high_p.value_at("1000") > 0.5 * low_p.value_at("1000")
    # ...at the paper's headline rate and beyond, it does.
    assert high_p.value_at("500000") < 0.5 * low_p.value_at("500000")
    # Saturation makes latency grow with rate for the low-parallelism
    # plan.
    assert low_p.value_at("500000") > 2.0 * low_p.value_at("10000")
