"""Placement strategies on heterogeneous hardware (O5's "careful

orchestration").

The paper concludes that "the theoretical benefits of hardware diversity
require careful orchestration for workload distribution and resource
management strategies" (O5). This bench quantifies that: the same
data-intensive application on the mixed c6525_25g+c6320 cluster under the
default round-robin placement, naive packing, and the speed-aware
heuristic that maps the heaviest operators to the fastest cores.
"""

from benchmarks.conftest import bench_runner_config, emit
from repro.cluster import heterogeneous_cluster
from repro.core.runner import BenchmarkRunner
from repro.report import render_table
from repro.sps.placement import (
    PackedPlacement,
    RoundRobinPlacement,
    SpeedAwarePlacement,
)


def _measure():
    cluster = heterogeneous_cluster(("c6525_25g", "c6320"), 10)
    config = bench_runner_config()
    results = {}
    for strategy in (
        RoundRobinPlacement(),
        PackedPlacement(),
        SpeedAwarePlacement(),
    ):
        runner = BenchmarkRunner(cluster, config, placement=strategy)
        latency = runner.measure_app("SD", parallelism=16)[
            "mean_median_latency_ms"
        ]
        results[strategy.name] = latency
    return results


def test_placement_strategies_on_heterogeneous_cluster(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    emit(
        render_table(
            ["placement", "median latency (ms)"],
            [[name, latency] for name, latency in results.items()],
            title="SD @ 100k ev/s, p=16 on the mixed cluster, by "
            "placement strategy",
        )
    )
    # Orchestration matters: the speed-aware heuristic beats naive
    # packing, and the spread strategies beat packing's contention.
    assert results["speed-aware"] <= results["round-robin"] * 1.1
    assert results["round-robin"] < results["packed"]
