#!/usr/bin/env python
"""Engine hot-path benchmark — standalone entry point.

Equivalent to ``python -m repro bench``; see :mod:`repro.core.perf` for
the workloads, the committed-baseline format and the regression gate.

    python benchmarks/bench_engine_hotpath.py [--quick] [--check] [--write]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.perf import run_bench  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--write", action="store_true")
    parser.add_argument("--report", default="BENCH_engine.json")
    parser.add_argument("--no-sweep", action="store_true")
    args = parser.parse_args(argv)
    return run_bench(
        quick=args.quick,
        check=args.check,
        write=args.write,
        report_path=args.report,
        with_sweep=not args.no_sweep,
    )


if __name__ == "__main__":
    sys.exit(main())
