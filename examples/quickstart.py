"""Quickstart: benchmark one application on the paper's default cluster.

Builds PDSP-Bench on the homogeneous 10 x m510 CloudLab cluster, runs the
Word Count application at a few parallelism degrees and prints the
measured end-to-end latencies — the smallest complete PDSP-Bench workflow.

Run:  python examples/quickstart.py
"""

from repro import PDSPBench, RunnerConfig
from repro.report import render_table


def main() -> None:
    bench = PDSPBench.homogeneous(
        # the paper's setup: 10 CloudLab m510 nodes, 8 cores each
        hardware="m510",
        num_nodes=10,
        runner_config=RunnerConfig(
            repeats=3,  # paper protocol: mean of 3 runs' medians
            dilation=25.0,  # time-dilated simulation (see DESIGN.md)
            max_tuples_per_source=2500,
        ),
    )

    print("Application suite:")
    for app in sorted(bench.list_applications(), key=lambda a: a["abbrev"]):
        print(
            f"  {app['abbrev']:5s} {app['name']:24s} "
            f"[{app['data_intensity']} intensity]"
        )

    rows = []
    for parallelism in (1, 2, 4, 8):
        record = bench.run_application(
            "WC", parallelism=parallelism, event_rate=100_000.0
        )
        rows.append(
            [
                parallelism,
                record.metrics["mean_median_latency_ms"],
                record.metrics["mean_throughput"],
            ]
        )
    print()
    print(
        render_table(
            ["parallelism", "median latency (ms)", "throughput (res/s)"],
            rows,
            title="Word Count @ 100k events/s on 10 x m510",
        )
    )
    print(f"\nstored runs: {bench.store['runs'].count()}")


if __name__ == "__main__":
    main()
