"""Extending the suite with a custom application.

PDSP-Bench "can be easily extended by integrating new jobs from other
benchmarks". This example builds a new application from scratch — a
Nexmark-style auction monitor with a custom winning-bid operator — runs it
through the engine, and compares placement strategies on a heterogeneous
cluster.

Run:  python examples/custom_application.py
"""

import numpy as np

from repro import RunnerConfig, heterogeneous_cluster
from repro.apps.base import make_generator
from repro.core.runner import BenchmarkRunner
from repro.report import render_table
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.placement import (
    PackedPlacement,
    RoundRobinPlacement,
    SpeedAwarePlacement,
)
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.workload.generator import scale_plan_costs

NUM_AUCTIONS = 1_000

BID_SCHEMA = Schema(
    [
        Field("auction", DataType.INT),
        Field("bidder", DataType.INT),
        Field("price", DataType.DOUBLE),
    ]
)


def sample_bid(rng: np.random.Generator) -> tuple:
    auction = int(rng.integers(NUM_AUCTIONS))
    return (
        auction,
        int(rng.integers(50_000)),
        float(rng.lognormal(3.0, 1.0)),
    )


class WinningBidLogic(OperatorLogic):
    """Tracks the highest bid per auction; emits on every new leader."""

    def __init__(self) -> None:
        self._best: dict[int, float] = {}

    def process(self, tup: StreamTuple, now: float, port: int = 0):
        auction, bidder, price = tup.values
        if price > self._best.get(auction, 0.0):
            self._best[auction] = price
            return [tup.with_values((auction, bidder, price))]
        return []


def build_auction_monitor(event_rate: float) -> LogicalPlan:
    plan = LogicalPlan("auction-monitor")
    plan.add_operator(
        builders.source(
            "bids",
            make_generator(BID_SCHEMA, sample_bid),
            BID_SCHEMA,
            event_rate,
        )
    )
    plan.add_operator(
        builders.filter_op(
            "serious_bids",
            Predicate(2, FilterFunction.GT, 5.0, selectivity_hint=0.85),
        )
    )
    leader = builders.udo(
        "winning_bid",
        WinningBidLogic,
        selectivity=0.3,
        cost_scale=2.0,
        name="winning-bid tracker",
    )
    leader.metadata["key_field"] = 0
    leader.metadata["key_cardinality"] = NUM_AUCTIONS
    plan.add_operator(leader)
    plan.add_operator(builders.sink("sink"))
    plan.connect("bids", "serious_bids")
    plan.connect("serious_bids", "winning_bid")
    plan.connect("winning_bid", "sink")
    return plan


def main() -> None:
    cluster = heterogeneous_cluster(("c6525_25g", "c6320"), 10)
    config = RunnerConfig(
        repeats=2, dilation=25.0, max_tuples_per_source=2500
    )
    plan = build_auction_monitor(100_000.0 / config.dilation)
    scale_plan_costs(plan, config.dilation)
    plan.set_uniform_parallelism(8)
    print(plan.describe())
    print()

    rows = []
    for strategy in (
        RoundRobinPlacement(),
        PackedPlacement(),
        SpeedAwarePlacement(),
    ):
        runner = BenchmarkRunner(cluster, config, placement=strategy)
        result = runner.measure(plan)
        rows.append(
            [strategy.name, result["mean_median_latency_ms"],
             result["mean_throughput"]]
        )
    print(
        render_table(
            ["placement", "median latency (ms)", "throughput (res/s)"],
            rows,
            title="Custom auction monitor @ 100k ev/s on "
            + cluster.describe(),
        )
    )


if __name__ == "__main__":
    main()
