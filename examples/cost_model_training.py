"""Training learned cost models (the Exp 3 workflow).

Generates a labelled corpus of parallel query plans with the workload
generator, trains all four cost models (LR, MLP, RF, GNN) under the fair
comparison protocol, reports q-error and training overhead, and finally
uses the GNN to predict the latency of a *new, unseen* query before it
ever runs — the paper's motivating use case for learned SPS models.

Run:  python examples/cost_model_training.py
"""


from repro import PDSPBench, QueryStructure
from repro.ml.dataset import Dataset, encode_query
from repro.report import render_table
from repro.sps.analytic import AnalyticEstimator


def main() -> None:
    bench = PDSPBench.homogeneous(num_nodes=10, seed=7)

    print("generating a labelled corpus of 400 parallel query plans...")
    corpus = bench.build_corpus(count=400)
    print(f"corpus: {len(corpus)} queries, stored in "
          f"{bench.store['corpus'].name!r}\n")

    reports = bench.train_models(corpus)
    rows = [
        [
            name,
            report.q_error["median"],
            report.q_error["p95"],
            report.training.train_time_s,
            report.training.epochs,
            report.training.num_parameters,
        ]
        for name, report in reports.items()
    ]
    print(
        render_table(
            [
                "model", "median q-error", "p95 q-error",
                "train time (s)", "epochs", "parameters",
            ],
            rows,
            title="Learned cost models, fair comparison (Exp 3)",
        )
    )

    # Zero-shot-style inference: predict an unseen query's latency.
    gnn = bench.ml_manager.model("GNN")
    unseen = bench.workload_generator.generate_one(
        bench.cluster, QueryStructure.FIVE_WAY_JOIN
    )
    record = encode_query(
        unseen.plan, bench.cluster, latency_s=1.0
    )  # placeholder label; prediction ignores it
    predicted = float(gnn.predict(Dataset([record]))[0])
    actual = AnalyticEstimator(bench.cluster).estimate(
        unseen.plan
    ).latency_s
    print(
        f"\nGNN prediction for an unseen 5-way join: "
        f"{predicted * 1e3:.1f} ms "
        f"(engine estimate {actual * 1e3:.1f} ms, "
        f"q-error {max(predicted / actual, actual / predicted):.2f})"
    )


if __name__ == "__main__":
    main()
