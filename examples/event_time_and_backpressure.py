"""Event-time windows and backpressure — production streaming semantics.

Two facilities real deployments rely on, both available in the simulated
SUT:

1. **Event-time windows with watermarks**: results are computed over
   source timestamps, tolerating the reorder introduced by queueing and
   the network. The example measures how the watermark bound trades
   completeness (late drops) against result latency.
2. **Backpressure**: bounded input queues throttle the sources under
   overload, converting unbounded latency growth into reduced throughput.

Run:  python examples/event_time_and_backpressure.py
"""

from repro import SimulationConfig, StreamEngine, homogeneous_cluster
from repro.apps.base import make_generator
from repro.common.rng import RngFactory
from repro.report import render_table
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.event_aggregate import (
    EventTimeWindowAggregateLogic,
)
from repro.sps.operators.udo import FunctionUDO
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows

SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def sample(rng):
    return (int(rng.integers(20)), float(rng.random()))


def event_time_demo() -> None:
    print("1. Event-time windows: watermark bound vs late drops\n")
    rows = []
    for bound_ms in (1.0, 5.0, 25.0):
        plan = LogicalPlan("event-time-demo")
        plan.add_operator(
            builders.source(
                "src", make_generator(SCHEMA, sample), SCHEMA, 4000.0
            )
        )
        # Disorder comes from parallelism: three loaded instances with
        # noisy service times reorder tuples at the merge into the
        # window operator (a single FIFO stage would preserve order).
        plan.add_operator(
            builders.udo(
                "work",
                lambda: FunctionUDO(lambda state, t, now: [t]),
                parallelism=3,
                cost_scale=16.5,
            )
        )
        plan.add_operator(
            builders.event_window_agg(
                "agg",
                TumblingTimeWindows(0.1),
                AggregateFunction.COUNT,
                value_field=1,
                key_field=0,
                max_out_of_orderness=bound_ms * 1e-3,
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "work")
        plan.connect("work", "agg")
        plan.connect("agg", "sink")
        engine = StreamEngine(
            plan,
            homogeneous_cluster(num_nodes=4),
            config=SimulationConfig(
                max_tuples_per_source=6000, max_sim_time=4.0
            ),
            rng_factory=RngFactory(11),
        )
        metrics = engine.run()
        late = sum(
            rt.logic.late_dropped
            for rt in engine._runtimes
            if isinstance(rt.logic, EventTimeWindowAggregateLogic)
        )
        rows.append(
            [bound_ms, metrics.median_latency_ms, late, metrics.results]
        )
    print(
        render_table(
            ["watermark bound (ms)", "median latency (ms)",
             "late drops", "results"],
            rows,
            title="tighter watermark = fresher results, more late drops",
        )
    )


def backpressure_demo() -> None:
    print("\n2. Backpressure: bounded queues under overload\n")
    rows = []
    for limit in (None, 128, 32):
        plan = LogicalPlan("backpressure-demo")
        plan.add_operator(
            builders.source(
                "src", make_generator(SCHEMA, sample), SCHEMA, 20_000.0
            )
        )
        plan.add_operator(
            builders.udo(
                "slow",
                lambda: FunctionUDO(lambda state, t, now: [t]),
                cost_scale=10.0,  # far under the offered rate
            )
        )
        plan.add_operator(builders.sink("sink"))
        plan.connect("src", "slow")
        plan.connect("slow", "sink")
        engine = StreamEngine(
            plan,
            homogeneous_cluster(num_nodes=2),
            config=SimulationConfig(
                max_tuples_per_source=6000,
                max_sim_time=2.0,
                backpressure_queue_limit=limit,
            ),
            rng_factory=RngFactory(12),
        )
        metrics = engine.run()
        rows.append(
            [
                "off" if limit is None else limit,
                metrics.median_latency_ms,
                metrics.operator_queue_peak["slow"],
                metrics.source_events,
                metrics.extras["throttled_arrivals"],
            ]
        )
    print(
        render_table(
            ["queue limit", "median latency (ms)", "peak queue",
             "tuples emitted", "throttled arrivals"],
            rows,
            title="overload: unbounded latency vs throttled sources",
        )
    )


if __name__ == "__main__":
    event_time_demo()
    backpressure_demo()
