"""Parallelism tuning: the paradox and the enumeration strategies.

Sweeps parallelism for a 3-way join PQP to expose the paper's parallelism
paradox (O2: beyond a threshold, coordination overhead outweighs the
gains), then shows what degrees each enumeration strategy would pick —
including the rule-based heuristic that lands near the sweet spot without
sweeping.

Run:  python examples/parallelism_tuning.py
"""

import numpy as np

from repro import BenchmarkRunner, RunnerConfig, homogeneous_cluster
from repro.report import render_table
from repro.workload import (
    MinAvgMaxEnumeration,
    ParameterBasedEnumeration,
    QueryStructure,
    RandomEnumeration,
    RuleBasedEnumeration,
    WorkloadGenerator,
)
from repro.workload.generator import scale_plan_costs

EVENT_RATE = 100_000.0
DEGREES = (1, 2, 4, 8, 16, 32, 64)


def main() -> None:
    cluster = homogeneous_cluster("m510", 10)
    config = RunnerConfig(
        repeats=2, dilation=25.0, max_tuples_per_source=2500
    )
    runner = BenchmarkRunner(cluster, config)
    generator = WorkloadGenerator(seed=8)
    query = generator.generate_one(
        cluster,
        QueryStructure.THREE_WAY_JOIN,
        strategy=ParameterBasedEnumeration(1),
        event_rate=EVENT_RATE / config.dilation,
    )
    scale_plan_costs(query.plan, config.dilation)
    print(query.plan.describe())
    print()

    rows = []
    latencies = []
    for degree in DEGREES:
        query.plan.set_uniform_parallelism(degree)
        latency = runner.measure(query.plan)["mean_median_latency_ms"]
        latencies.append(latency)
        rows.append([degree, latency])
    print(
        render_table(
            ["parallelism", "median latency (ms)"],
            rows,
            title=f"3-way join @ {EVENT_RATE:g} ev/s (10 x m510)",
        )
    )
    best = DEGREES[int(np.argmin(latencies))]
    print(
        f"\nsweet spot: p={best}; beyond it coordination overhead wins "
        "(the paper's parallelism paradox, O2)\n"
    )

    # What would each enumeration strategy have picked?
    strategy_rows = []
    for strategy in (
        RuleBasedEnumeration(exploration=0.0),
        RandomEnumeration(),
        MinAvgMaxEnumeration(),
    ):
        rng = np.random.default_rng(1)
        assignment = next(
            strategy.assignments(query.plan, cluster, rng)
        )
        strategy_rows.append([strategy.name, str(assignment)])
    print(
        render_table(
            ["strategy", "first assignment {operator: degree}"],
            strategy_rows,
            title="Parallelism enumeration strategies (Section 3.1)",
        )
    )


if __name__ == "__main__":
    main()
