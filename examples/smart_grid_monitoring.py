"""Smart-grid monitoring across cluster types (the Exp 2 story).

The DEBS 2014 smart-grid outlier query (SG) maintains per-plug and
per-house sliding medians — one of the paper's most data-intensive
applications. This example deploys it on the homogeneous m510 cluster and
on the powerful c6320 cluster and sweeps parallelism, reproducing the
observation that data-intensive UDO apps benefit hugely from both
parallelism and stronger hardware (O1, O5).

Run:  python examples/smart_grid_monitoring.py
"""

from repro import BenchmarkRunner, RunnerConfig, homogeneous_cluster
from repro.apps import app_info
from repro.report import render_table

DEGREES = (1, 4, 16, 64)
RUNNER = RunnerConfig(
    repeats=2, dilation=25.0, max_tuples_per_source=2500
)


def main() -> None:
    info = app_info("SG")
    print(f"{info.name} ({info.abbrev}): {info.description}")
    print(f"origin: {info.origin}; intensity: {info.data_intensity}\n")

    clusters = {
        "Ho 10 x m510 (8 cores/node)": homogeneous_cluster("m510", 10),
        "He 10 x c6320 (28 cores/node)": homogeneous_cluster("c6320", 10),
    }
    rows = []
    for label, cluster in clusters.items():
        runner = BenchmarkRunner(cluster, RUNNER)
        latencies = [
            runner.measure_app("SG", degree, event_rate=100_000.0)[
                "mean_median_latency_ms"
            ]
            for degree in DEGREES
        ]
        rows.append([label, *latencies])
    print(
        render_table(
            ["cluster"] + [f"p={d}" for d in DEGREES],
            rows,
            title="SG median end-to-end latency (ms) @ 100k events/s",
        )
    )
    print(
        "\nNote how latency collapses with parallelism (saturated median "
        "operators) and how the 28-core nodes help — the paper's O1/O5."
    )


if __name__ == "__main__":
    main()
