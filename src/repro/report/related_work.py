"""Table 1: the benchmark-system feature comparison.

The paper positions PDSP-Bench against ten prior systems along: query type
(sequential/parallel), hardware (homogeneous/heterogeneous), deployment
(centralized/distributed), infrastructure, learned-model support, and
application counts. The matrix below reproduces the published rows;
:func:`pdsp_bench_claims` states the PDSP-Bench row as checkable claims the
``bench_table1_features`` benchmark verifies against this codebase.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Table1Row", "TABLE1_ROWS", "pdsp_bench_claims", "render_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    system: str
    query_type: str  # S, P or S/P
    hardware: str  # Ho, He or He/Ho
    deployment: str  # C, D or C/D
    infrastructure: str
    learned_models: bool
    real_world_apps: int
    synthetic_apps: int
    scalability: str  # No, Partially, Fully


TABLE1_ROWS: tuple[Table1Row, ...] = (
    Table1Row("Linear Road", "S", "Ho", "C", "single node", False, 1, 0,
              "No"),
    Table1Row("YSB", "S", "Ho", "C", "single node / VMs", False, 1, 0,
              "No"),
    Table1Row("StreamBench", "S", "Ho", "D", "VMs", False, 0, 7,
              "Partially"),
    Table1Row("RIoTBench", "S", "Ho", "D", "VMs", False, 4, 0, "No"),
    Table1Row("OSPBench", "S", "Ho", "D", "cloud VMs", False, 0, 1, "No"),
    Table1Row("HiBench", "S", "Ho", "D", "cluster", False, 0, 4, "No"),
    Table1Row("BigDataBench", "S", "Ho", "D", "cluster", False, 0, 1,
              "Partially"),
    Table1Row("ESPBench", "S", "Ho", "D", "VMs", False, 5, 0, "No"),
    Table1Row("SPBench", "P", "Ho", "C", "VMs", False, 4, 0, "Partially"),
    Table1Row("DSPBench", "P", "Ho", "D", "cluster", False, 13, 2,
              "Partially"),
    Table1Row(
        "PDSP-Bench",
        "S/P",
        "He/Ho",
        "C/D",
        "CloudLab, Geni Cluster, On-premise",
        True,
        14,
        9,
        "Fully",
    ),
)


def pdsp_bench_claims() -> dict[str, object]:
    """The PDSP-Bench row as claims this codebase must satisfy."""
    return {
        "supports_sequential_and_parallel_queries": True,
        "supports_heterogeneous_and_homogeneous_hardware": True,
        "supports_centralized_and_distributed_deployment": True,
        "integrates_learned_models": True,
        "real_world_apps": 14,
        "synthetic_apps": 9,
        "scalability": "Fully",
    }


def render_table1() -> str:
    """The comparison matrix as an ASCII table."""
    from repro.report.tables import render_table

    headers = [
        "Benchmark",
        "P/S",
        "He/Ho",
        "D/C",
        "Infrastructure",
        "Learned",
        "Real-world",
        "Synthetic",
        "Scalability",
    ]
    rows = [
        [
            row.system,
            row.query_type,
            row.hardware,
            row.deployment,
            row.infrastructure,
            "Yes" if row.learned_models else "No",
            row.real_world_apps or "-",
            row.synthetic_apps or "-",
            row.scalability,
        ]
        for row in TABLE1_ROWS
    ]
    return render_table(
        headers, rows, title="Table 1: benchmark system comparison"
    )
