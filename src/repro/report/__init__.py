"""Reporting: the WUI stand-in.

Renders benchmark tables and figure series as ASCII/markdown — the
presentation layer of the reproduction (the paper uses a Vue.js WUI; the
data is the same).
"""

from repro.report.figures import (
    FigureData,
    Series,
    figure_to_markdown,
    render_figure,
)
from repro.report.related_work import TABLE1_ROWS, pdsp_bench_claims
from repro.report.tables import render_table

__all__ = [
    "render_table",
    "Series",
    "FigureData",
    "render_figure",
    "figure_to_markdown",
    "TABLE1_ROWS",
    "pdsp_bench_claims",
]
