"""ASCII table rendering."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.common.errors import ConfigurationError

__all__ = ["render_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as a boxed ASCII table."""
    if not headers:
        raise ConfigurationError("table needs headers")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"

    def line(cells: Sequence[str]) -> str:
        return (
            "| "
            + " | ".join(c.ljust(w) for c, w in zip(cells, widths))
            + " |"
        )

    parts = []
    if title:
        parts.append(title)
    parts.append(sep)
    parts.append(line([str(h) for h in headers]))
    parts.append(sep)
    for row in str_rows:
        parts.append(line(row))
    parts.append(sep)
    return "\n".join(parts)
