"""Figure series: the data structure every experiment emits.

A :class:`FigureData` is one paper figure: named series over a shared
x-axis. :func:`render_figure` prints the series as a table (rows = x
values, columns = series) — the textual equivalent of the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.report.tables import render_table

__all__ = ["Series", "FigureData", "render_figure", "figure_to_markdown"]


@dataclass
class Series:
    """One line of a figure."""

    label: str
    x: list
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.label!r}: x and y lengths differ "
                f"({len(self.x)} vs {len(self.y)})"
            )

    def value_at(self, x_value) -> float:
        """The y value at one x point."""
        try:
            return self.y[self.x.index(x_value)]
        except ValueError:
            raise ConfigurationError(
                f"series {self.label!r} has no point at {x_value!r}"
            ) from None


@dataclass
class FigureData:
    """One reproduced figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def series_by_label(self, label: str) -> Series:
        """Look up one series."""
        for entry in self.series:
            if entry.label == label:
                return entry
        known = ", ".join(s.label for s in self.series)
        raise ConfigurationError(
            f"{self.figure_id}: no series {label!r}; have: {known}"
        )

    def shared_x(self) -> list:
        """The x-axis, validated to be common across series."""
        if not self.series:
            raise ConfigurationError(f"{self.figure_id}: no series")
        x = self.series[0].x
        for entry in self.series[1:]:
            if entry.x != x:
                raise ConfigurationError(
                    f"{self.figure_id}: series have mismatched x axes"
                )
        return x

    def to_document(self) -> dict:
        """JSON-serialisable form."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [
                {"label": s.label, "x": list(s.x), "y": list(s.y)}
                for s in self.series
            ],
            "notes": self.notes,
        }


def figure_to_markdown(figure: FigureData) -> str:
    """Render a figure as a GitHub-flavoured markdown table."""
    x = figure.shared_x()
    headers = [figure.x_label] + [s.label for s in figure.series]
    lines = [
        f"### {figure.figure_id}: {figure.title}",
        "",
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for i, x_value in enumerate(x):
        cells = [str(x_value)] + [
            f"{s.y[i]:.3g}" for s in figure.series
        ]
        lines.append("| " + " | ".join(cells) + " |")
    if figure.notes:
        lines += ["", f"*{figure.notes}*"]
    return "\n".join(lines)


def render_figure(figure: FigureData) -> str:
    """Render a figure as a table: rows = x values, columns = series."""
    x = figure.shared_x()
    headers = [figure.x_label] + [s.label for s in figure.series]
    rows = []
    for i, x_value in enumerate(x):
        rows.append([x_value] + [s.y[i] for s in figure.series])
    title = (
        f"{figure.figure_id}: {figure.title} "
        f"(y = {figure.y_label})"
    )
    table = render_table(headers, rows, title=title)
    if figure.notes:
        table += f"\nnote: {figure.notes}"
    return table
