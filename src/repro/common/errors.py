"""Exception hierarchy for the PDSP-Bench reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base type. Subclasses mark which subsystem rejected the input, mirroring the
components of the paper (workload generation, placement, simulation, ML
training, storage).
"""


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``code`` optionally carries the stable diagnostic rule code
    (``PLAN003``, ``COST501``, ...) of the static-analysis rule the input
    violated, so ad-hoc validation in constructors and the whole-plan
    analyzer (:mod:`repro.analysis`) speak the same vocabulary.
    """

    def __init__(self, *args, code: str | None = None) -> None:
        super().__init__(*args)
        self.code = code


class ConfigurationError(ReproError):
    """An invalid user-supplied configuration value."""


class PlanError(ReproError):
    """A logical or physical query plan is malformed (cycle, dangling edge,

    missing source/sink, invalid parallelism degree, ...).
    """


class PlacementError(ReproError):
    """The scheduler could not place all subtasks on the cluster."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistency while running."""


class DeterminismError(SimulationError):
    """The determinism sanitizer found a reproducibility hazard.

    Raised by ``run_plan(sanitize=True)`` when the static pass or the
    runtime race detector (:mod:`repro.analysis.racecheck`) reports an
    ERROR-severity DET finding; ``code`` carries the DET rule code.
    """


class TrainingError(ReproError):
    """An ML model could not be trained on the provided corpus."""


class StorageError(ReproError):
    """The embedded document store rejected an operation."""
