"""Unit helpers.

The simulator's base time unit is the **second** (floats); helpers here keep
conversions explicit at call sites instead of scattering magic constants.
"""

from __future__ import annotations

__all__ = [
    "MS",
    "SECONDS",
    "GBPS",
    "bytes_per_second",
    "format_duration",
    "format_rate",
]

#: One millisecond expressed in seconds.
MS = 1e-3

#: One second (the base unit), for symmetry at call sites.
SECONDS = 1.0

#: One gigabit per second expressed in bytes per second.
GBPS = 1e9 / 8.0


def bytes_per_second(gbps: float) -> float:
    """Convert a link speed in Gbit/s to bytes/s."""
    if gbps < 0:
        raise ValueError(f"link speed must be non-negative, got {gbps}")
    return gbps * GBPS


def format_duration(seconds: float) -> str:
    """Render a duration with a sensible unit (us / ms / s / min)."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 60.0:.1f}min"


def format_rate(events_per_second: float) -> str:
    """Render an event rate ('10', '5k', '1mn' per the paper's notation)."""
    if events_per_second < 0:
        raise ValueError("event rate must be non-negative")
    if events_per_second >= 1e6:
        value = events_per_second / 1e6
        return f"{value:g}mn ev/s"
    if events_per_second >= 1e3:
        value = events_per_second / 1e3
        return f"{value:g}k ev/s"
    return f"{events_per_second:g} ev/s"
