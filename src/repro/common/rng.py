"""Deterministic random-number management.

Every stochastic component (data generator, query enumerator, simulator,
model initialisation) draws from its own named child generator derived from
one root seed. Runs are therefore reproducible end-to-end while components
stay statistically independent: reordering calls inside one component never
perturbs another component's stream.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

__all__ = ["derive_seed", "state_fingerprint", "RngFactory"]


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a stable 63-bit seed from a root seed and a path of names.

    The derivation hashes ``root_seed`` together with the names so that
    ``derive_seed(1, "datagen")`` and ``derive_seed(1, "engine")`` are
    unrelated, and the same path always yields the same seed.
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        digest.update(b"\x1f")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> 1


def state_fingerprint(gen: np.random.Generator) -> str:
    """A stable digest of a generator's current internal state.

    Reads ``gen.bit_generator.state`` — a pure inspection, no draw, so
    fingerprinting never perturbs the stream it measures. Two generators
    have equal fingerprints iff they are at the same point of the same
    stream: the determinism sanitizer's RNG-draw ledger
    (:mod:`repro.analysis.racecheck`) compares fingerprints taken after
    a serial and a parallel run to prove the runs drew identically.
    """
    state = gen.bit_generator.state
    payload = json.dumps(state, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class RngFactory:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    >>> rngs = RngFactory(seed=42)
    >>> a = rngs.get("datagen")
    >>> b = rngs.get("engine")
    >>> a is rngs.get("datagen")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def get(self, *names: str) -> np.random.Generator:
        """Return the generator for the given name path, creating it once."""
        key = "/".join(names)
        if key not in self._streams:
            self._streams[key] = np.random.default_rng(
                derive_seed(self._seed, *names)
            )
        return self._streams[key]

    def fresh(self, *names: str) -> np.random.Generator:
        """Return a new generator for the path without caching it.

        Useful for repeated runs that must each start from the same state.
        """
        return np.random.default_rng(derive_seed(self._seed, *names))

    def child(self, *names: str) -> "RngFactory":
        """Return a new factory whose root seed is derived from this one."""
        return RngFactory(derive_seed(self._seed, *names))
