"""Shared utilities: errors, random-number management, units, validation."""

from repro.common.errors import (
    ConfigurationError,
    PlacementError,
    PlanError,
    ReproError,
    SimulationError,
    StorageError,
    TrainingError,
)
from repro.common.rng import RngFactory, derive_seed
from repro.common.units import (
    GBPS,
    MS,
    SECONDS,
    bytes_per_second,
    format_duration,
    format_rate,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "PlanError",
    "PlacementError",
    "SimulationError",
    "StorageError",
    "TrainingError",
    "RngFactory",
    "derive_seed",
    "MS",
    "SECONDS",
    "GBPS",
    "bytes_per_second",
    "format_duration",
    "format_rate",
]
