"""The benchmark runner.

Executes plans on the discrete-event engine with the paper's measurement
protocol: each configuration runs ``repeats`` times (paper: three), each
run's *median* latency is taken, and the mean of those medians is reported.

**Time dilation.** The paper streams 100k events/s for minutes; simulating
every one of those tuples in Python is wasteful when the quantities of
interest are utilisation-driven. The runner therefore builds dilated plans:
sources emit at ``rate / dilation`` while every operator's per-tuple cost is
multiplied by ``dilation``. Per-instance utilisation — hence saturation
behaviour, speedups and the parallelism paradox — is *exactly* preserved;
simulated wall-clock stretches so Table 3 window durations still span many
arrivals. DESIGN.md discusses the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import build_app
from repro.apps.base import AppQuery
from repro.cluster.cluster import Cluster
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.core.parallel import ParallelRunner
from repro.ft.store import validate_delivery
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.metrics import RunMetrics, aggregate_runs
from repro.sps.placement import PlacementStrategy
from repro.workload.generator import scale_plan_costs

__all__ = ["RunnerConfig", "BenchmarkRunner"]


@dataclass(frozen=True)
class RunnerConfig:
    """Measurement protocol knobs.

    ``workers`` fans the independent repeats of each configuration out to
    a process pool (see :mod:`repro.core.parallel`); 1 keeps the serial
    in-process loop. Results are identical either way — each repeat's
    seed is derived from (seed, repeat) alone.

    ``observe`` attaches a registry-only
    :class:`~repro.obs.EngineObserver` to every run: each repeat's
    :class:`RunMetrics` then carries a per-operator observability
    summary in ``extras["obs"]`` (sampled every ``obs_sample_interval``
    simulated seconds), and :meth:`BenchmarkRunner.measure` adds the
    repeat-merged summary under the ``"obs"`` key. Observation never
    changes simulated results (DESIGN.md §8).

    ``batch_size`` switches every run onto the columnar micro-batch
    executor (:mod:`repro.sps.batch`) with that many tuples per
    micro-batch; ``None`` (the default) keeps the scalar event loop,
    bit-identical to runs made before batch mode existed.

    ``sanitize`` runs the determinism sanitizer around every repeat:
    the static AST pass over the plan's operator source modules before
    anything executes, a :class:`~repro.analysis.racecheck.RaceDetector`
    inside every engine, a fork-capture check on the fan-out closure,
    and — when ``workers > 1`` — a serial reference run whose RNG-draw
    ledger must match the pooled first repeat (DET609). ERROR findings
    raise :class:`~repro.common.errors.DeterminismError`; findings and
    ledgers ride along in ``extras["race"]``. ``sanitize=False`` runs
    are bit-identical to runs made before the sanitizer existed
    (DESIGN.md §10).
    """

    repeats: int = 3
    dilation: float = 20.0
    max_tuples_per_source: int = 6000
    max_sim_time: float = 6.0
    warmup_fraction: float = 0.1
    seed: int = 0
    workers: int = 1
    observe: bool = False
    obs_sample_interval: float = 0.25
    sanitize: bool = False
    batch_size: int | None = None
    #: elastic runtime (DESIGN.md §12): autoscale policy spec string
    #: (``"reactive:high=16"``), scenario spec string
    #: (``"spike:at=0.5+failure:at=1.0"``), explicit rescale events, the
    #: control cadence, and the latency SLO the violation metric uses.
    #: Specs stay strings so a frozen config crosses process pools.
    autoscale: str | None = None
    autoscale_interval: float = 0.5
    scenario: str | None = None
    rescales: tuple = ()
    slo_latency: float | None = None
    #: fault tolerance (DESIGN.md §13): aligned-barrier checkpoint
    #: interval in milliseconds (``None`` keeps checkpointing off and
    #: the engine bit-identical to pre-FT runs) and the delivery
    #: guarantee applied on recovery (``"exactly_once"`` dedupes
    #: replayed results at the sink, ``"at_least_once"`` lets the
    #: duplicates through and accounts them).
    checkpoint_ms: float | None = None
    delivery: str = "exactly_once"
    #: sharded execution (DESIGN.md §14): partition the simulated
    #: cluster by placement node onto this many kernel shards and run
    #: them as forked processes under the conservative epoch protocol.
    #: ``None`` (the default) keeps the single-kernel event loop and is
    #: bit-identical to runs made before sharding existed; any ``K``
    #: (including 1) selects the shard universe, whose results are
    #: invariant in ``K`` and in the transport. With ``sanitize`` the
    #: forked run's RNG ledger is cross-checked against an in-process
    #: reference run (DET609).
    shards: int | None = None

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        if self.checkpoint_ms is not None and self.checkpoint_ms <= 0:
            raise ConfigurationError("checkpoint_ms must be positive")
        validate_delivery(self.delivery)
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.dilation <= 0:
            raise ConfigurationError("dilation must be positive")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.obs_sample_interval <= 0:
            raise ConfigurationError(
                "obs_sample_interval must be positive"
            )
        if self.shards is not None:
            if self.shards < 1:
                raise ConfigurationError("shards must be >= 1")
            if self.workers > 1:
                raise ConfigurationError(
                    "shards and workers > 1 both fork processes; "
                    "pick repeat-level or intra-run parallelism"
                )
            incompatible = {
                "observe": self.observe,
                "batch_size": self.batch_size,
                "autoscale": self.autoscale,
                "scenario": self.scenario,
                "rescales": self.rescales or None,
                "checkpoint_ms": self.checkpoint_ms,
            }
            for knob, value in incompatible.items():
                if value:
                    raise ConfigurationError(
                        f"shards is incompatible with {knob} "
                        "(DESIGN.md §14 lists the sharded subset)"
                    )


class BenchmarkRunner:
    """Runs plans on a cluster and aggregates metrics per the paper."""

    def __init__(
        self,
        cluster: Cluster,
        config: RunnerConfig | None = None,
        placement: PlacementStrategy | None = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or RunnerConfig()
        self.placement = placement

    # ------------------------------------------------------------ building

    def prepare_app(
        self,
        abbrev: str,
        parallelism: int,
        event_rate: float = 100_000.0,
    ) -> AppQuery:
        """Build an application plan, dilated, at one parallelism degree."""
        dilation = self.config.dilation
        query = build_app(abbrev, event_rate=event_rate / dilation)
        if dilation != 1.0:
            scale_plan_costs(query.plan, dilation)
        query.plan.set_uniform_parallelism(parallelism)
        query.params["parallelism"] = parallelism
        query.params["nominal_event_rate"] = event_rate
        query.params["dilation"] = dilation
        return query

    # ------------------------------------------------------------- running

    def run_plan(self, plan: LogicalPlan) -> list[RunMetrics]:
        """Run one plan ``repeats`` times with independent randomness.

        Repeats are independent simulations whose seeds depend only on
        ``(config.seed, repeat)``, so with ``config.workers > 1`` they
        fan out to a process pool with bit-identical results.
        """
        sim_config = SimulationConfig(
            max_tuples_per_source=self.config.max_tuples_per_source,
            max_sim_time=self.config.max_sim_time,
            warmup_fraction=self.config.warmup_fraction,
            batch_size=self.config.batch_size,
            autoscale=self.config.autoscale,
            autoscale_interval=self.config.autoscale_interval,
            scenario=self.config.scenario,
            rescales=tuple(self.config.rescales),
            slo_latency=self.config.slo_latency,
            checkpoint_interval=(
                None
                if self.config.checkpoint_ms is None
                else self.config.checkpoint_ms / 1000.0
            ),
            delivery=self.config.delivery,
            shards=self.config.shards,
        )

        observe = self.config.observe
        sanitize = self.config.sanitize
        if sanitize:
            self._static_sanitize(plan)

        def one_repeat(repeat: int, force_inline: bool = False) -> RunMetrics:
            observer = None
            if observe:
                from repro.obs import EngineObserver

                observer = EngineObserver(
                    sample_interval=self.config.obs_sample_interval,
                    serve_spans=False,
                )
            engine = StreamEngine(
                plan,
                self.cluster,
                placement=self.placement,
                config=sim_config,
                rng_factory=RngFactory(
                    self.config.seed * 1000 + repeat
                ),
                observer=observer,
                sanitize=sanitize,
            )
            if force_inline:
                engine.shard_force_inline = True
            metrics = engine.run()
            if observer is not None:
                metrics.extras["obs"] = observer.summary()
            detector = engine.race_detector
            if detector is not None:
                metrics.extras["race"] = {
                    "findings": [
                        d.to_dict() for d in detector.findings
                    ],
                    "rng_ledger": detector.rng_ledger,
                }
            return metrics

        runs = ParallelRunner(
            workers=self.config.workers, check_captures=sanitize
        ).map(one_repeat, range(self.config.repeats))
        if sanitize:
            self._check_race_findings(plan, runs, one_repeat)
        return runs

    # ---------------------------------------------------------- sanitizing

    def _static_sanitize(self, plan: LogicalPlan) -> None:
        """Layer 1: the AST pass over the plan's operator sources."""
        from repro.analysis.sanitizer import sanitize_plan_sources
        from repro.common.errors import DeterminismError

        report = sanitize_plan_sources(plan)
        if report.has_errors:
            errors = report.errors()
            raise DeterminismError(
                f"static sanitizer rejected plan {plan.name!r}: "
                + "; ".join(
                    f"{d.code} [{d.location}] {d.message}"
                    for d in errors[:5]
                ),
                code=errors[0].code,
            )

    def _check_race_findings(
        self, plan: LogicalPlan, runs: list[RunMetrics], one_repeat
    ) -> None:
        """Layer 2 verdicts: raise on races; cross-check parallel runs.

        With ``workers > 1`` the pooled first repeat is re-run serially
        in-process and its RNG-draw ledger compared against the pooled
        one — equal ledgers prove the fork changed no draw (DET609).
        """
        from repro.analysis.racecheck import compare_ledgers
        from repro.common.errors import DeterminismError

        errors: list[tuple[str, str]] = []
        for repeat, metrics in enumerate(runs):
            race = metrics.extras.get("race") or {}
            for finding in race.get("findings", ()):
                if finding["severity"] == "error":
                    errors.append(
                        (
                            finding["code"],
                            f"repeat {repeat}: {finding['code']} "
                            f"[{finding['op_id']}] {finding['message']}",
                        )
                    )
        if not errors and self.config.workers > 1 and runs:
            pooled = runs[0].extras.get("race", {}).get("rng_ledger", {})
            reference = (
                one_repeat(0).extras.get("race", {}).get("rng_ledger", {})
            )
            for diag in compare_ledgers(reference, pooled):
                errors.append(
                    (
                        diag.code,
                        f"{diag.code} [{diag.location}] {diag.message}",
                    )
                )
        if (
            not errors
            and self.config.shards is not None
            and self.config.shards > 1
            and runs
        ):
            # Same DET609 cross-check for intra-run sharding: the
            # forked shard processes' merged RNG-draw ledger must match
            # an in-process reference of the identical shard universe.
            forked = runs[0].extras.get("race", {}).get("rng_ledger", {})
            reference = (
                one_repeat(0, force_inline=True)
                .extras.get("race", {})
                .get("rng_ledger", {})
            )
            for diag in compare_ledgers(reference, forked):
                errors.append(
                    (
                        diag.code,
                        f"{diag.code} [{diag.location}] {diag.message}",
                    )
                )
        if errors:
            raise DeterminismError(
                f"race detector rejected plan {plan.name!r}: "
                + "; ".join(message for _, message in errors[:5]),
                code=errors[0][0],
            )

    def measure(self, plan: LogicalPlan) -> dict[str, float]:
        """Mean-of-medians aggregate over the repeats.

        With ``config.observe`` the merged per-operator observability
        summary rides along under the (non-scalar) ``"obs"`` key.
        """
        runs = self.run_plan(plan)
        result = aggregate_runs(runs)
        if self.config.observe:
            from repro.obs import merge_summaries

            result["obs"] = merge_summaries(
                [run.extras.get("obs", {}) for run in runs]
            )
        return result

    def measure_app(
        self,
        abbrev: str,
        parallelism: int,
        event_rate: float = 100_000.0,
    ) -> dict[str, float]:
        """Build, dilate and measure one application configuration."""
        query = self.prepare_app(abbrev, parallelism, event_rate)
        result = self.measure(query.plan)
        result["parallelism"] = float(parallelism)
        return result
