"""The PDSP-Bench controller: the system's public facade.

Mirrors the paper's controller component (Section 2): it takes the user's
cluster configuration and workload selection, orchestrates deployment on
the simulated SUT, persists run records and generated corpora in the
document store, and hands corpora to the ML Manager for training — the
full PDSP-Bench workflow of Figure 1, minus the Vue.js front-end.

>>> bench = PDSPBench.homogeneous()
>>> record = bench.run_application("WC", parallelism=4)
>>> record.metrics["mean_median_latency_ms"] > 0
True
"""

from __future__ import annotations

from repro.apps import APP_INFOS
from repro.cluster.cluster import (
    Cluster,
    heterogeneous_cluster,
    homogeneous_cluster,
)
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.core.records import RunRecord
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.ml.dataset import Dataset, encode_query
from repro.ml.manager import MLManager, ModelReport
from repro.sps.analytic import AnalyticEstimator
from repro.storage.docstore import DocumentStore
from repro.workload.enumeration import EnumerationStrategy
from repro.workload.generator import WorkloadGenerator
from repro.workload.parameter_space import ParameterSpace
from repro.workload.querygen import QueryStructure

__all__ = ["PDSPBench"]


class PDSPBench:
    """Benchmarking system facade: cluster + workloads + SUT + ML."""

    def __init__(
        self,
        cluster: Cluster,
        storage_dir: str | None = None,
        runner_config: RunnerConfig | None = None,
        space: ParameterSpace | None = None,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.space = space or ParameterSpace()
        self.runner = BenchmarkRunner(cluster, runner_config)
        self.store = DocumentStore(storage_dir)
        self.workload_generator = WorkloadGenerator(self.space, seed=seed)
        self.ml_manager = MLManager(seed=seed)
        self.seed = seed
        self._rngs = RngFactory(seed)

    # ------------------------------------------------------------- builders

    @classmethod
    def homogeneous(
        cls, hardware: str = "m510", num_nodes: int = 10, **kwargs
    ) -> "PDSPBench":
        """The paper's homogeneous setup: 10 x m510."""
        return cls(homogeneous_cluster(hardware, num_nodes), **kwargs)

    @classmethod
    def heterogeneous(
        cls,
        hardware: tuple[str, ...] = ("c6525_25g", "c6320"),
        num_nodes: int = 10,
        **kwargs,
    ) -> "PDSPBench":
        """The paper's heterogeneous setup."""
        return cls(heterogeneous_cluster(hardware, num_nodes), **kwargs)

    # ----------------------------------------------------------- app runs

    def list_applications(self) -> list[dict]:
        """The Table 2 suite as metadata dicts."""
        return [
            {
                "abbrev": info.abbrev,
                "name": info.name,
                "area": info.area,
                "uses_udo": info.uses_udo,
                "data_intensity": info.data_intensity,
            }
            for info in APP_INFOS.values()
        ]

    def run_application(
        self,
        abbrev: str,
        parallelism: int,
        event_rate: float = 100_000.0,
    ) -> RunRecord:
        """Run one real-world application configuration and persist it."""
        query = self.runner.prepare_app(abbrev, parallelism, event_rate)
        metrics = self.runner.measure(query.plan)
        record = RunRecord.from_run(
            plan=query.plan,
            cluster=self.cluster,
            metrics=metrics,
            workload_kind="real-world",
            event_rate=event_rate,
            params=query.params,
        )
        self.store["runs"].insert_one(record.to_document())
        return record

    def run_suite(
        self,
        parallelism: int,
        apps: list[str] | None = None,
        event_rate: float = 100_000.0,
    ) -> list[RunRecord]:
        """Run the whole (or a selected) application suite at one degree.

        The bulk operation behind the WUI's "run suite" button; every run
        is persisted like :meth:`run_application`.
        """
        selected = apps if apps is not None else sorted(APP_INFOS)
        return [
            self.run_application(abbrev, parallelism, event_rate)
            for abbrev in selected
        ]

    def run_synthetic(
        self,
        structure: QueryStructure,
        parallelism: int,
        event_rate: float = 100_000.0,
    ) -> RunRecord:
        """Run one synthetic PQP configuration and persist it."""
        dilation = self.runner.config.dilation
        query = self.workload_generator.generate_one(
            self.cluster,
            structure,
            event_rate=event_rate / dilation,
        )
        if dilation != 1.0:
            from repro.workload.generator import scale_plan_costs

            scale_plan_costs(query.plan, dilation)
        query.plan.set_uniform_parallelism(parallelism)
        metrics = self.runner.measure(query.plan)
        record = RunRecord.from_run(
            plan=query.plan,
            cluster=self.cluster,
            metrics=metrics,
            workload_kind="synthetic",
            event_rate=event_rate,
            params={**query.params, "parallelism": parallelism},
        )
        self.store["runs"].insert_one(record.to_document())
        return record

    # --------------------------------------------------------- ML workflow

    def build_corpus(
        self,
        count: int,
        structures: list[QueryStructure] | None = None,
        strategy: EnumerationStrategy | None = None,
        event_rate: float | None = None,
        collection: str = "corpus",
        label_noise_cv: float = 0.08,
    ) -> Dataset:
        """Generate a labelled training corpus and persist it.

        Labels come from the analytic evaluator (the engine's fast mode,
        validated against the DES by the ablation bench), with lognormal
        measurement noise — thousands of labelled queries in seconds, the
        scale Exp 3 needs.
        """
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        queries = self.workload_generator.generate(
            self.cluster,
            count=count,
            structures=structures,
            strategy=strategy,
            event_rate=event_rate,
        )
        estimator = AnalyticEstimator(self.cluster)
        rng = self._rngs.get("corpus-labels")
        records = []
        for query in queries:
            latency = estimator.noisy_latency(
                query.plan, rng, cv=label_noise_cv
            )
            records.append(
                encode_query(
                    query.plan,
                    self.cluster,
                    latency,
                    structure=query.structure.value,
                    meta={"strategy": query.params.get("strategy", "")},
                )
            )
        dataset = Dataset(records)
        dataset.save(self.store[collection])
        return dataset

    def load_corpus(self, collection: str = "corpus") -> Dataset:
        """Load a previously persisted corpus."""
        return Dataset.load(self.store[collection])

    def train_models(
        self, dataset: Dataset, test: Dataset | None = None
    ) -> dict[str, ModelReport]:
        """Train and fairly compare all registered cost models."""
        reports = self.ml_manager.train_and_evaluate(dataset, test=test)
        self.store["model_reports"].insert_many(
            report.to_dict() for report in reports.values()
        )
        return reports

    # ------------------------------------------------------------- queries

    def stored_runs(self, query: dict | None = None) -> list[RunRecord]:
        """Fetch persisted run records."""
        return [
            RunRecord.from_document(doc)
            for doc in self.store["runs"].find(query)
        ]

    def save_figure(self, figure, collection: str = "figures") -> int:
        """Persist an experiment figure (series + metadata) for the WUI."""
        return self.store[collection].insert_one(figure.to_document())

    def stored_figures(self, collection: str = "figures") -> list[dict]:
        """All persisted figures, newest last."""
        return self.store[collection].find(sort_by="_id")
