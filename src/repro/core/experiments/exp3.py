"""Exp. 3: integration of ML models in PDSP-Bench (Figures 5 and 6).

- **Figure 5** — q-error of the four learned cost models (LR, MLP, RF,
  GNN) across synthetic query structures of increasing complexity.
  Expected shape (O8): the GNN's graph encoding wins consistently.
- **Figure 6a** — GNN q-error vs number of training queries for the
  rule-based and random parallelism enumeration strategies, evaluated on
  *seen* structures (linear, 2-way, 3-way join — the training
  distribution) and *unseen* ones (the remaining structures).
- **Figure 6b** — total training cost (data collection + model training)
  for each strategy to reach a target accuracy. Expected shape (O9):
  rule-based reaches the target with roughly 3x less total time.

Corpus labels come from the analytic evaluator with measurement noise;
collection cost is accounted at the paper's protocol of three 5-minute
runs per query configuration.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster, homogeneous_cluster
from repro.common.errors import TrainingError
from repro.common.rng import RngFactory
from repro.core.parallel import ParallelRunner
from repro.ml.dataset import Dataset, encode_query
from repro.ml.manager import MLManager
from repro.ml.models import GNNCostModel
from repro.report.figures import FigureData, Series
from repro.sps.analytic import AnalyticEstimator
from repro.workload.enumeration import (
    EnumerationStrategy,
    RandomEnumeration,
    RuleBasedEnumeration,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.querygen import QueryStructure

__all__ = [
    "build_labelled_corpus",
    "corpus_from_run_records",
    "figure5",
    "figure6",
    "COLLECTION_SECONDS_PER_QUERY",
]

#: The paper's measurement protocol: 3 runs x 5 minutes per query config.
COLLECTION_SECONDS_PER_QUERY = 3 * 5 * 60.0

_SEEN = {s.value for s in QueryStructure if s.is_seen}
_UNSEEN = {s.value for s in QueryStructure if not s.is_seen}


def build_labelled_corpus(
    cluster: Cluster,
    count: int,
    structures: list[QueryStructure],
    strategy: EnumerationStrategy,
    seed: int,
    label_noise_cv: float = 0.08,
) -> Dataset:
    """Generate `count` queries and label them with noisy latencies."""
    generator = WorkloadGenerator(seed=seed)
    estimator = AnalyticEstimator(cluster)
    rng = RngFactory(seed).get("labels")
    records = []
    for query in generator.generate(
        cluster, count=count, structures=structures, strategy=strategy
    ):
        latency = estimator.noisy_latency(query.plan, rng, cv=label_noise_cv)
        records.append(
            encode_query(
                query.plan,
                cluster,
                latency,
                structure=query.structure.value,
            )
        )
    return Dataset(records)


def corpus_from_run_records(
    records,
    cluster: Cluster,
    plan_builder=None,
) -> Dataset:
    """Build a labelled dataset from persisted sweep records.

    This closes the loop the paper's ML Manager implements: exp1/exp2
    sweeps persist one :class:`~repro.core.records.RunRecord` per cell
    (``store=...``), and this function turns those measured cells —
    latency label plus observability summary — into training examples.

    ``plan_builder(record)`` must rebuild the record's logical plan;
    the default handles application records (``workload_name`` is the
    Table 2 abbreviation) by rebuilding the app and re-applying the
    persisted parallelism degrees. Records whose plan cannot be rebuilt
    raise :class:`~repro.common.errors.TrainingError`.
    """
    from repro.apps import REGISTRY, build_app

    def default_builder(record):
        if record.workload_name not in REGISTRY:
            raise TrainingError(
                f"cannot rebuild plan for {record.workload_name!r}; "
                "pass plan_builder= for non-application records"
            )
        query = build_app(
            record.workload_name, event_rate=record.event_rate
        )
        query.plan.set_parallelism(record.degrees)
        return query.plan

    builder = plan_builder or default_builder
    examples = []
    for record in records:
        latency_s = record.metrics.get("mean_median_latency_s")
        if not latency_s or latency_s <= 0:
            raise TrainingError(
                f"record {record.workload_name!r} has no positive "
                "'mean_median_latency_s' label"
            )
        examples.append(
            encode_query(
                builder(record),
                cluster,
                latency_s,
                structure=record.params.get(
                    "structure", record.workload_name
                ),
                observability=record.observability,
            )
        )
    return Dataset(examples)


def figure5(
    cluster: Cluster | None = None,
    corpus_size: int = 450,
    seed: int = 5,
) -> FigureData:
    """Per-structure median q-error of all four cost models."""
    cluster = cluster or homogeneous_cluster("m510", 10)
    corpus = build_labelled_corpus(
        cluster,
        corpus_size,
        structures=list(QueryStructure),
        strategy=RuleBasedEnumeration(),
        seed=seed,
    )
    manager = MLManager(seed=seed)
    reports = manager.train_and_evaluate(corpus)
    structures = sorted(
        (s for s in QueryStructure),
        key=lambda s: s.complexity_rank,
    )
    labels = [s.value for s in structures]
    series = []
    for name, report in reports.items():
        values = []
        for label in labels:
            entry = report.per_structure.get(label)
            values.append(entry["median"] if entry else float("nan"))
        series.append(Series(name, list(labels), values))
    return FigureData(
        figure_id="fig5",
        title="Exp 3(1): learned cost model accuracy across synthetic "
        f"query structures ({corpus_size} queries)",
        x_label="query structure (complexity increasing)",
        y_label="median q-error (lower is better, 1 = perfect)",
        series=series,
        notes="test split of a shared corpus; uniform early stopping",
    )


def _gnn_qerror(
    train_corpus: Dataset,
    test_seen: Dataset,
    test_unseen: Dataset,
    seed: int,
) -> tuple[float, float, float]:
    """(median q seen, median q unseen, train wall seconds)."""
    rng = np.random.default_rng(seed)
    train, val, _ = train_corpus.split(rng, test_fraction=0.02)
    model = GNNCostModel()
    result = model.fit(train, val, seed=seed)
    seen_q = model.evaluate(test_seen)["median"]
    unseen_q = model.evaluate(test_unseen)["median"]
    return seen_q, unseen_q, result.train_time_s


def figure6(
    cluster: Cluster | None = None,
    training_sizes: tuple[int, ...] = (25, 50, 100, 200, 400),
    test_size: int = 180,
    target_q: float = 1.6,
    seed: int = 9,
    workers: int = 1,
) -> tuple[FigureData, FigureData]:
    """(Figure 6a: q-error vs training size, Figure 6b: time to target).

    ``workers > 1`` fans the (strategy, size) training cells out to a
    process pool; every cell builds its corpus from its own seeded
    generator, so results are independent of how the grid is executed.
    """
    cluster = cluster or homogeneous_cluster("m510", 10)
    seen_structures = [s for s in QueryStructure if s.is_seen]
    test_corpus = build_labelled_corpus(
        cluster,
        test_size,
        structures=list(QueryStructure),
        strategy=RuleBasedEnumeration(),
        seed=seed + 1000,
    )
    test_seen = test_corpus.filter_structure(_SEEN)
    test_unseen = test_corpus.filter_structure(_UNSEEN)
    strategies: dict[str, EnumerationStrategy] = {
        "rule-based": RuleBasedEnumeration(),
        "random": RandomEnumeration(),
    }
    sizes = list(training_sizes)
    cells = [
        (strategy_name, size)
        for strategy_name in strategies
        for size in sizes
    ]

    def cell(pair):
        strategy_name, size = pair
        corpus = build_labelled_corpus(
            cluster,
            size,
            structures=seen_structures,
            strategy=strategies[strategy_name],
            seed=seed,
        )
        return _gnn_qerror(corpus, test_seen, test_unseen, seed)

    results = ParallelRunner(workers=workers).map(cell, cells)
    curves: dict[str, list[float]] = {}
    train_times: dict[str, list[float]] = {}
    for i, strategy_name in enumerate(strategies):
        chunk = results[i * len(sizes) : (i + 1) * len(sizes)]
        curves[f"{strategy_name} (seen)"] = [q for q, _, _ in chunk]
        curves[f"{strategy_name} (unseen)"] = [q for _, q, _ in chunk]
        train_times[strategy_name] = [w for _, _, w in chunk]
    fig6a = FigureData(
        figure_id="fig6a",
        title="Exp 3(2): GNN accuracy vs number of training queries per "
        "enumeration strategy",
        x_label="training queries",
        y_label="median q-error",
        series=[
            Series(label, list(sizes), values)
            for label, values in curves.items()
        ],
    )
    # Figure 6b: total time (collection at the paper's 3 x 5 min protocol
    # + training) to reach the target accuracy on seen structures.
    time_series = []
    for strategy_name in strategies:
        curve = curves[f"{strategy_name} (seen)"]
        queries_needed = None
        train_time = train_times[strategy_name][-1]
        for size, q, wall in zip(
            sizes, curve, train_times[strategy_name]
        ):
            if q <= target_q:
                queries_needed = size
                train_time = wall
                break
        if queries_needed is None:
            queries_needed = sizes[-1] * 2  # did not converge in budget
        total_hours = (
            queries_needed * COLLECTION_SECONDS_PER_QUERY + train_time
        ) / 3600.0
        time_series.append(
            Series(
                strategy_name,
                ["queries to target", "total hours"],
                [float(queries_needed), total_hours],
            )
        )
    fig6b = FigureData(
        figure_id="fig6b",
        title="Exp 3(2): training cost to reach target accuracy "
        f"(median q <= {target_q})",
        x_label="metric",
        y_label="value",
        series=time_series,
        notes="collection accounted at 3 runs x 5 min per query (paper "
        "protocol); training wall time added",
    )
    if not fig6a.series:
        raise TrainingError("figure 6a produced no series")
    return fig6a, fig6b
