"""The paper's evaluation experiments (Section 4).

- :mod:`repro.core.experiments.exp1` — impact of PQP complexity
  (Figure 3 top and bottom; observations O1-O4);
- :mod:`repro.core.experiments.exp2` — impact of heterogeneous hardware
  (Figure 4 top and bottom; observations O5-O7);
- :mod:`repro.core.experiments.exp3` — learned cost models in PDSP-Bench
  (Figure 5 and Figure 6; observations O8-O9);
- :mod:`repro.core.experiments.exp4` — elastic runtime: autoscaling
  policies crossed with chaos scenarios, scored on SLO-violation-seconds
  against resource-hours (DESIGN.md §12).

Figure experiments return :class:`~repro.report.figures.FigureData` so
the benchmark harness can both print the paper-style series and assert
the observations' shapes; exp4 returns a JSON-ready grid report the CI
chaos lane asserts over.
"""

from repro.core.experiments.exp1 import figure3_bottom, figure3_top
from repro.core.experiments.exp2 import figure4_bottom, figure4_top
from repro.core.experiments.exp3 import figure5, figure6
from repro.core.experiments.exp4 import policy_comparison

__all__ = [
    "figure3_top",
    "figure3_bottom",
    "figure4_top",
    "figure4_bottom",
    "figure5",
    "figure6",
    "policy_comparison",
]
