"""Exp. 4: elastic runtime — autoscaling policies under chaos scenarios.

The demonstration paper positions PDSP-Bench as a harness for studying
parallel and distributed stream processing under *operational* variance,
not just static parallelism sweeps (Figures 3-6). This experiment grid
crosses autoscaling policies (:mod:`repro.elastic.policy`) with
reproducible disturbance scenarios (:mod:`repro.elastic.scenarios`) on a
keyed windowed workload and scores each cell on the two axes an operator
of an elastic deployment actually trades off:

- **SLO-violation-seconds** — steady-state time spent above the latency
  SLO (``extras["slo_violation_s"]``, see DESIGN.md §12);
- **resource-hours** — the integral of total subtask count over
  simulated time (``extras["elastic"]["resource_seconds"]`` / 3600),
  which a static over-provisioned baseline pays in full and a reactive
  policy tries to shrink.

Every cell is a full :class:`~repro.core.runner.BenchmarkRunner`
measurement: seeded, repeatable, bit-identical run-to-run, and safe to
fan out to a process pool (policies and scenarios travel as spec
strings). Determinism failures are *reported per cell* rather than
aborting the grid, so the CI chaos lane can assert "zero determinism
errors" over the whole report.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.cluster import Cluster, homogeneous_cluster
from repro.core.parallel import ParallelRunner
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows

__all__ = [
    "DEFAULT_POLICIES",
    "DEFAULT_SCENARIOS",
    "elastic_workload_plan",
    "policy_comparison",
]

#: Policy specs compared by default: the static baseline (which still
#: reports resource-hours, giving the grid its cost reference), queue
#: hysteresis, and cost-model sizing. Tuned to the workload below: the
#: load spike drives per-subtask backlog well past ``high`` within one
#: control interval.
DEFAULT_POLICIES = (
    "none",
    "reactive:high=4,low=0.5,cooldown=0.3,max=6",
    "predictive:util=0.6,cooldown=0.3,max=6",
)

#: Scenario specs crossed with every policy. ``baseline`` (no injection)
#: measures pure policy overhead; the rest disturb load, compute and the
#: network in reproducible, seed-independent ways.
DEFAULT_SCENARIOS = (
    ("baseline", "none"),
    ("spike", "spike:at=0.5,factor=3,duration=1.0"),
    ("straggler", "straggler:at=0.5,factor=12,duration=1.2"),
    ("failure", "failure:at=0.5,duration=0.4"),
)

_SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def _kv_generator(num_keys: int = 16):
    """Keyed tuple generator for the elastic workload source."""
    from repro.sps.tuples import StreamTuple

    def generate(rng, now: float) -> StreamTuple:
        return StreamTuple(
            values=(
                int(rng.integers(num_keys)),
                float(rng.random()),
            ),
            event_time=now,
            size_bytes=24.0,
        )

    return generate


def elastic_workload_plan(
    event_rate: float = 3000.0,
    parallelism: int = 2,
    agg_cost_scale: float = 25.0,
    num_keys: int = 16,
) -> LogicalPlan:
    """The grid's workload: source -> keyed tumbling COUNT -> sink.

    The aggregation is hash-partitioned on the key field and its logic
    supports state migration, so it is exactly the shape the rescale
    validation admits; ``agg_cost_scale`` sizes its service time so the
    initial parallelism saturates under the spike scenario (backlog
    forms, the reactive and predictive policies have something to do).
    """
    plan = LogicalPlan("elastic-workload")
    plan.add_operator(
        builders.source(
            "src", _kv_generator(num_keys), _SCHEMA, event_rate=event_rate
        )
    )
    plan.add_operator(
        builders.window_agg(
            "agg",
            TumblingTimeWindows(0.1),
            AggregateFunction.COUNT,
            value_field=1,
            key_field=0,
            parallelism=parallelism,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "agg")
    plan.connect("agg", "sink")
    if agg_cost_scale != 1.0:
        agg = plan.operator("agg")
        agg.cost = agg.cost.scaled(agg_cost_scale)
    return plan


def _run_cell(
    cluster: Cluster,
    base_config: RunnerConfig,
    policy: str,
    scenario_spec: str,
    plan_kwargs: dict,
) -> dict:
    """One (policy, scenario) measurement; never raises on determinism.

    Builds the plan *inside* the cell so pooled cells share nothing
    mutable; a :class:`~repro.common.errors.DeterminismError` becomes a
    field of the cell instead of killing the grid.
    """
    from repro.common.errors import DeterminismError

    config = replace(
        base_config,
        autoscale=policy,
        scenario=scenario_spec if scenario_spec != "none" else None,
    )
    runner = BenchmarkRunner(cluster, config)
    plan = elastic_workload_plan(**plan_kwargs)
    try:
        runs = runner.run_plan(plan)
    except DeterminismError as exc:
        return {"determinism_error": f"{exc}"}
    n = len(runs)
    elastic = [run.extras.get("elastic", {}) for run in runs]
    return {
        "determinism_error": None,
        "slo_violation_s": sum(
            run.extras.get("slo_violation_s", 0.0) for run in runs
        )
        / n,
        "resource_hours": sum(
            e.get("resource_seconds", 0.0) for e in elastic
        )
        / n
        / 3600.0,
        "rescales": sum(e.get("rescales", 0) for e in elastic) / n,
        "migrated_keys": sum(e.get("migrated_keys", 0) for e in elastic)
        / n,
        "p50_latency_ms": sum(run.latency.p50 for run in runs) / n * 1e3,
        "results": sum(run.results for run in runs) / n,
    }


def policy_comparison(
    cluster: Cluster | None = None,
    runner_config: RunnerConfig | None = None,
    policies=DEFAULT_POLICIES,
    scenarios=DEFAULT_SCENARIOS,
    slo_latency: float = 0.15,
    quick: bool = False,
    seed: int = 0,
    workers: int = 1,
) -> dict:
    """The exp4 grid: every policy under every scenario, scored.

    Returns a JSON-ready report::

        {"experiment": "exp4", "slo_latency_s": ..., "cells": [
            {"policy": "reactive", "scenario": "spike",
             "slo_violation_s": ..., "resource_hours": ...,
             "rescales": ..., "migrated_keys": ...,
             "p50_latency_ms": ..., "results": ...,
             "determinism_error": None},
            ...]}

    ``quick=True`` shrinks each cell to one short repeat — the CI
    chaos-smoke shape. The report is bit-identical across invocations
    with the same arguments (cells derive all randomness from the
    runner seed; nothing reads the wall clock).
    """
    cluster = cluster or homogeneous_cluster(num_nodes=4)
    base = runner_config or RunnerConfig(
        repeats=1 if quick else 3,
        max_tuples_per_source=6000 if quick else 12000,
        max_sim_time=2.5 if quick else 4.0,
        warmup_fraction=0.0,
        autoscale_interval=0.2,
        sanitize=True,
        seed=seed,
        workers=workers,
    )
    base = replace(base, slo_latency=slo_latency)
    plan_kwargs = {"event_rate": 3000.0, "parallelism": 2}
    cells = [
        (policy, name, spec)
        for policy in policies
        for name, spec in scenarios
    ]

    def cell(item):
        policy, name, spec = item
        row = _run_cell(cluster, base, policy, spec, plan_kwargs)
        row["policy"] = policy.partition(":")[0]
        row["policy_spec"] = policy
        row["scenario"] = name
        row["scenario_spec"] = spec
        return row

    rows = ParallelRunner(workers=base.workers).map(cell, cells)
    return {
        "experiment": "exp4",
        "slo_latency_s": slo_latency,
        "quick": quick,
        "seed": base.seed,
        "policies": list(policies),
        "scenarios": [list(pair) for pair in scenarios],
        "cells": rows,
    }
