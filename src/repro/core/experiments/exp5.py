"""Exp. 5: fault tolerance — checkpoint/recovery under node failures.

PDSP-Bench's operational axis is not just elasticity (exp4) but
*robustness*: what a failure costs under a given checkpointing cadence
and delivery guarantee. This grid crosses aligned-barrier checkpoint
intervals (:mod:`repro.ft`) with reproducible node-failure scenarios and
both delivery modes, and scores every cell on the axes an operator of a
fault-tolerant deployment actually trades off:

- **recovery time** — the simulated pause a failure causes
  (``extras["ft"]["recovery_time_s"]``), which grows with the state
  restored and shrinks with tighter checkpoint intervals;
- **replay volume** — source tuples re-read from the durable log
  (``replayed_events``), the work a stale checkpoint re-buys;
- **result correctness** — the sink multiset compared against a
  failure-free oracle run: ``exactly_once`` must match it exactly,
  ``at_least_once`` may only *add* duplicates, never lose results.

Every cell is a single seeded engine run with the race detector
attached (``sanitize=True``); determinism findings are reported per
cell rather than aborting the grid, so the CI recovery-smoke lane can
assert "zero errors, zero exactly-once divergence" over the whole
report. The report is bit-identical across invocations with the same
arguments.

The workload is deliberately shaped so the correctness comparison is
exact (DESIGN.md §13): the source is single-instance (every stateful
subtask then has one input channel, so replayed input arrives in the
original order), windows are count-based (results depend on values and
order, never on timing), and the source budget is small enough that
generation completes *before* the failure fires (replay then re-reads
logged tuples instead of re-drawing arrival randomness).
"""

from __future__ import annotations

from collections import Counter

from repro.cluster.cluster import Cluster, homogeneous_cluster
from repro.common.rng import RngFactory
from repro.core.parallel import ParallelRunner
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.operators.sink import SinkLogic
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingCountWindows

__all__ = [
    "DEFAULT_INTERVALS_MS",
    "DEFAULT_SCENARIOS",
    "DEFAULT_DELIVERIES",
    "ft_workload_plan",
    "run_ft_cell",
    "recovery_grid",
]

#: Checkpoint cadences compared by default, in milliseconds. 50 ms
#: keeps a fresh checkpoint available ahead of either failure; 200 ms
#: usually leaves the first aligned checkpoint still in flight when the
#: early failure hits, forcing a replay-from-zero recovery — the grid's
#: cost contrast.
DEFAULT_INTERVALS_MS = (50.0, 100.0, 200.0)

#: Failure cells crossed with every interval. Both fire after source
#: generation has completed (~0.1 s simulated) and while the keyed
#: aggregation still holds a backlog, so recovery has state to lose.
DEFAULT_SCENARIOS = (
    ("early-failure", "failure:at=0.3,duration=0.1"),
    ("late-failure", "failure:at=0.45,duration=0.1"),
)

DEFAULT_DELIVERIES = ("exactly_once", "at_least_once")

_SCHEMA = Schema([Field("k", DataType.INT), Field("v", DataType.DOUBLE)])


def _kv_generator(num_keys: int):
    """Keyed tuple generator for the FT workload source."""
    from repro.sps.tuples import StreamTuple

    def generate(rng, now: float):
        return StreamTuple(
            values=(
                int(rng.integers(num_keys)),
                float(rng.random()),
            ),
            event_time=now,
            size_bytes=24.0,
        )

    return generate


def ft_workload_plan(
    event_rate: float = 3000.0,
    parallelism: int = 2,
    num_keys: int = 8,
    window_length: int = 10,
    agg_cost_scale: float = 600.0,
) -> LogicalPlan:
    """The grid's workload: 1 source -> keyed count-window SUM -> sink.

    ``agg_cost_scale`` sizes the aggregation's service time so its
    backlog outlives the failure injections (the run spans ~0.55 s
    simulated while arrivals finish by ~0.1 s); the single source
    instance and count windows make recovered results comparable to the
    oracle as exact multisets (see the module docstring).
    """
    plan = LogicalPlan("ft-workload")
    plan.add_operator(
        builders.source(
            "src",
            _kv_generator(num_keys),
            _SCHEMA,
            event_rate=event_rate,
            parallelism=1,
        )
    )
    plan.add_operator(
        builders.window_agg(
            "agg",
            TumblingCountWindows(window_length),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
            parallelism=parallelism,
        )
    )
    plan.add_operator(builders.sink("sink", keep_values=True))
    plan.connect("src", "agg")
    plan.connect("agg", "sink")
    if agg_cost_scale != 1.0:
        agg = plan.operator("agg")
        agg.cost = agg.cost.scaled(agg_cost_scale)
    return plan


def _sink_values(engine: StreamEngine) -> list:
    return sorted(
        v
        for rt in engine._runtimes
        if isinstance(rt.logic, SinkLogic)
        for v in rt.logic.results
    )


def run_ft_cell(
    cluster: Cluster,
    scenario: str | None,
    checkpoint_interval: float | None,
    delivery: str,
    seed: int,
    max_tuples: int = 300,
    plan_kwargs: dict | None = None,
) -> tuple[dict, list]:
    """One seeded, race-detected engine run; returns (ft stats, sink values).

    Builds the plan inside the cell so pooled cells share nothing
    mutable. The first element is ``extras["ft"]`` without its per-
    checkpoint log plus the determinism verdict; the second is the
    sorted sink-value multiset the grid compares against the oracle.
    """
    plan = ft_workload_plan(**(plan_kwargs or {}))
    config = SimulationConfig(
        max_tuples_per_source=max_tuples,
        max_sim_time=3.0,
        warmup_fraction=0.0,
        keep_sink_values=True,
        scenario=scenario,
        checkpoint_interval=checkpoint_interval,
        delivery=delivery,
    )
    engine = StreamEngine(
        plan,
        cluster,
        config=config,
        rng_factory=RngFactory(seed),
        sanitize=True,
    )
    metrics = engine.run()
    ft = dict(metrics.extras.get("ft", {}))
    ft.pop("log", None)
    from repro.analysis.diagnostics import Severity

    detector = engine.race_detector
    ft["determinism_errors"] = sum(
        1 for d in detector.findings if d.severity is Severity.ERROR
    )
    return ft, _sink_values(engine)


def recovery_grid(
    cluster: Cluster | None = None,
    intervals_ms=DEFAULT_INTERVALS_MS,
    scenarios=DEFAULT_SCENARIOS,
    deliveries=DEFAULT_DELIVERIES,
    quick: bool = False,
    seed: int = 0,
    workers: int = 1,
) -> dict:
    """The exp5 grid: checkpoint interval x failure x delivery, scored.

    Returns a JSON-ready report::

        {"experiment": "exp5", "quick": ..., "seed": ..., "cells": [
            {"interval_ms": 50.0, "scenario": "early-failure",
             "delivery": "exactly_once", "checkpoints": ...,
             "recoveries": ..., "recovery_time_s": ...,
             "replayed_events": ..., "duplicate_results": ...,
             "duplicates_dropped": ..., "lost_results": ...,
             "missing_vs_oracle": 0, "extra_vs_oracle": 0,
             "determinism_errors": 0},
            ...]}

    ``missing_vs_oracle`` / ``extra_vs_oracle`` compare each cell's
    sink multiset against a failure-free, checkpoint-free oracle run of
    the same seed: exactly-once cells must report 0/0, at-least-once
    cells 0/duplicates. ``quick=True`` shrinks the grid to one interval
    and one failure per delivery mode — the CI recovery-smoke shape.
    """
    cluster = cluster or homogeneous_cluster(num_nodes=4)
    if quick:
        intervals_ms = intervals_ms[:1]
        scenarios = scenarios[-1:]
    # The oracle: same seed and workload, no checkpointing, no failure.
    # Checkpoint barriers never change results, so one oracle serves
    # every interval.
    _, oracle_values = run_ft_cell(cluster, None, None, "exactly_once", seed)
    oracle_counts = Counter(oracle_values)

    cells = [
        (interval_ms, name, spec, delivery)
        for interval_ms in intervals_ms
        for name, spec in scenarios
        for delivery in deliveries
    ]

    def cell(item):
        interval_ms, name, spec, delivery = item
        ft, values = run_ft_cell(
            cluster, spec, interval_ms / 1000.0, delivery, seed
        )
        counts = Counter(values)
        row = {
            "interval_ms": interval_ms,
            "scenario": name,
            "scenario_spec": spec,
            "delivery": delivery,
            "checkpoints": ft.get("checkpoints_completed", 0),
            "recoveries": ft.get("recoveries", 0),
            "recovery_time_s": ft.get("recovery_time_s", 0.0),
            "replayed_events": ft.get("replayed_events", 0),
            "duplicates_dropped": ft.get("duplicates_dropped", 0),
            "duplicate_results": ft.get("duplicate_results", 0),
            "lost_results": ft.get("lost_results", 0),
            "missing_vs_oracle": sum((oracle_counts - counts).values()),
            "extra_vs_oracle": sum((counts - oracle_counts).values()),
            "determinism_errors": ft.get("determinism_errors", 0),
        }
        return row

    rows = ParallelRunner(workers=workers).map(cell, cells)
    return {
        "experiment": "exp5",
        "quick": quick,
        "seed": seed,
        "intervals_ms": list(intervals_ms),
        "scenarios": [list(pair) for pair in scenarios],
        "deliveries": list(deliveries),
        "oracle_results": len(oracle_values),
        "cells": rows,
    }
