"""Exp. 2: impact of heterogeneous hardware on performance (Figure 4).

The paper compares the homogeneous m510 cluster against the two
"heterogeneous" CloudLab clusters (c6525_25g, c6320 — heterogeneous
relative to the baseline hardware), 10 nodes each:

- **Figure 4 (top)** — real-world applications per cluster, with each
  cluster's parallelism set to its node core count (m510 -> 8,
  c6525_25g -> 16, c6320 -> 28);
- **Figure 4 (bottom)** — synthetic PQPs: mean latency per parallelism
  category per cluster type, plus a genuinely mixed c6525_25g+c6320
  cluster.

Expected shapes: SA/CA/SD gain strongly on the powerful clusters while AD
does not (O5); no single optimal parallelism exists across cluster types
(O6); synthetic PQPs favour the homogeneous cluster while real-world apps
favour heterogeneous capability (O7).
"""

from __future__ import annotations

from repro.cluster.cluster import (
    Cluster,
    heterogeneous_cluster,
    homogeneous_cluster,
)
from repro.core.experiments.persist import persist_cell
from repro.core.parallel import ParallelRunner
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.report.figures import FigureData, Series
from repro.workload.enumeration import ParameterBasedEnumeration
from repro.workload.generator import WorkloadGenerator, scale_plan_costs
from repro.workload.parameter_space import PARALLELISM_CATEGORIES
from repro.workload.querygen import QueryStructure

__all__ = [
    "DEFAULT_EXP2_APPS",
    "default_clusters",
    "figure4_top",
    "figure4_bottom",
]

#: Apps highlighted in the paper's Figure 4 discussion.
DEFAULT_EXP2_APPS = ("WC", "LR", "SA", "CA", "SD", "SG", "AD")

#: Synthetic structures averaged in Figure 4 (bottom).
_EXP2_STRUCTURES = (
    QueryStructure.LINEAR,
    QueryStructure.TWO_WAY_JOIN,
    QueryStructure.THREE_WAY_JOIN,
)


def default_clusters(num_nodes: int = 10) -> dict[str, Cluster]:
    """The three Table 4 clusters, plus a genuinely mixed one."""
    return {
        "Ho-m510": homogeneous_cluster("m510", num_nodes),
        "He-c6525_25g": homogeneous_cluster("c6525_25g", num_nodes),
        "He-c6320": homogeneous_cluster("c6320", num_nodes),
        "He-mixed": heterogeneous_cluster(
            ("c6525_25g", "c6320"), num_nodes
        ),
    }


def figure4_top(
    clusters: dict[str, Cluster] | None = None,
    runner_config: RunnerConfig | None = None,
    apps=DEFAULT_EXP2_APPS,
    event_rate: float = 100_000.0,
    store=None,
) -> FigureData:
    """Real-world apps across clusters, parallelism = node core count.

    ``store`` persists one :class:`~repro.core.records.RunRecord` per
    (cluster, app) cell, observability summary included when observing.
    """
    clusters = clusters or {
        name: cluster
        for name, cluster in default_clusters().items()
        if name != "He-mixed"
    }
    runners = {
        name: BenchmarkRunner(cluster, runner_config)
        for name, cluster in clusters.items()
    }
    workers = next(iter(runners.values())).config.workers if runners else 1
    # (cluster, app) cells are independent — fan out the whole grid.
    cells = [
        (name, abbrev) for name in runners for abbrev in apps
    ]

    def cell(pair):
        name, abbrev = pair
        runner = runners[name]
        parallelism = runner.cluster.max_cores_per_node
        return runner.measure_app(abbrev, parallelism, event_rate)

    values = ParallelRunner(workers=workers).map(cell, cells)
    if store is not None:
        for (name, abbrev), metrics in zip(cells, values):
            runner = runners[name]
            query = runner.prepare_app(
                abbrev, runner.cluster.max_cores_per_node, event_rate
            )
            persist_cell(
                store,
                query.plan,
                runner.cluster,
                metrics,
                workload_kind="real-world",
                event_rate=event_rate,
                figure="fig4-top",
                app=abbrev,
                cluster=name,
            )
    series = []
    for i, (cluster_name, cluster) in enumerate(clusters.items()):
        parallelism = cluster.max_cores_per_node
        chunk = values[i * len(apps) : (i + 1) * len(apps)]
        latencies = [m["mean_median_latency_ms"] for m in chunk]
        series.append(
            Series(
                f"{cluster_name} (p={parallelism})",
                list(apps),
                latencies,
            )
        )
    return FigureData(
        figure_id="fig4-top",
        title="Exp 2: real-world apps across cluster types "
        f"({event_rate:g} ev/s, parallelism = cores per node)",
        x_label="application",
        y_label="mean median e2e latency (ms)",
        series=series,
    )


def figure4_bottom(
    clusters: dict[str, Cluster] | None = None,
    runner_config: RunnerConfig | None = None,
    categories: dict[str, int] | None = None,
    structures=_EXP2_STRUCTURES,
    event_rate: float = 100_000.0,
    seed: int = 13,
) -> FigureData:
    """Synthetic PQPs: mean latency per parallelism category per cluster."""
    clusters = clusters or default_clusters()
    categories = categories or PARALLELISM_CATEGORIES
    labels = list(categories)
    # Queries are generated serially per cluster (a fresh seeded
    # generator each, so results never depend on iteration order); the
    # (cluster, category) measurement cells then fan out. Forked workers
    # mutate copy-on-write plan copies, so per-cell parallelism settings
    # cannot interfere.
    runners = {}
    cluster_queries = {}
    for cluster_name, cluster in clusters.items():
        runner = BenchmarkRunner(cluster, runner_config)
        runners[cluster_name] = runner
        dilation = runner.config.dilation
        generator = WorkloadGenerator(seed=seed)
        queries = []
        for structure in structures:
            query = generator.generate_one(
                cluster,
                structure,
                strategy=ParameterBasedEnumeration(1),
                event_rate=event_rate / dilation,
            )
            if dilation != 1.0:
                scale_plan_costs(query.plan, dilation)
            queries.append(query)
        cluster_queries[cluster_name] = queries
    workers = next(iter(runners.values())).config.workers if runners else 1
    cells = [(name, label) for name in clusters for label in labels]

    def cell(pair):
        name, label = pair
        runner = runners[name]
        total = 0.0
        for query in cluster_queries[name]:
            query.plan.set_uniform_parallelism(categories[label])
            total += runner.measure(query.plan)["mean_median_latency_ms"]
        return total / len(cluster_queries[name])

    values = ParallelRunner(workers=workers).map(cell, cells)
    series = []
    for i, cluster_name in enumerate(clusters):
        latencies = values[i * len(labels) : (i + 1) * len(labels)]
        series.append(Series(cluster_name, list(labels), latencies))
    return FigureData(
        figure_id="fig4-bottom",
        title="Exp 2: synthetic PQPs across parallelism categories and "
        f"cluster types ({event_rate:g} ev/s)",
        x_label="parallelism category",
        y_label="mean median e2e latency (ms)",
        series=series,
    )
