"""Per-cell persistence for experiment sweeps.

The paper's PDSP-Bench stores every benchmark execution in MongoDB so
the ML Manager can later assemble training corpora. The sweep drivers
in exp1/exp2 mirror that: handed a ``store``, they persist one
:class:`~repro.core.records.RunRecord` per measured sweep cell —
including the cell's observability summary when the runner observes —
which :func:`repro.core.experiments.exp3.corpus_from_run_records` can
turn into a labelled dataset.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.core.records import RunRecord
from repro.sps.logical import LogicalPlan
from repro.storage.docstore import Collection, DocumentStore

__all__ = ["runs_collection", "persist_cell"]


def runs_collection(store) -> Collection:
    """Resolve a store argument to a writable collection.

    Accepts a :class:`Collection` directly or a :class:`DocumentStore`
    (whose ``"runs"`` collection is used, matching the controller).
    """
    if isinstance(store, Collection):
        return store
    if isinstance(store, DocumentStore):
        return store["runs"]
    raise TypeError(
        f"store must be a Collection or DocumentStore, got {type(store)!r}"
    )


def persist_cell(
    store,
    plan: LogicalPlan,
    cluster: Cluster,
    metrics: dict,
    workload_kind: str,
    event_rate: float,
    **params,
) -> RunRecord:
    """Build and insert one sweep-cell record; returns the record."""
    record = RunRecord.from_run(
        plan,
        cluster,
        metrics,
        workload_kind=workload_kind,
        event_rate=event_rate,
        params=params,
    )
    runs_collection(store).insert_one(record.to_document())
    return record
