"""Exp. 1: impact of PQP complexity on performance (Figure 3).

Both figures sweep parallelism-degree categories on the homogeneous
10 x m510 cluster at the paper's headline event rate of 100k events/s:

- **Figure 3 (top)** — synthetic query structures from a linear filter
  query up to 5-way joins;
- **Figure 3 (bottom)** — real-world applications, standard-operator apps
  (WC, LR) against data-intensive UDO apps (SA, SG, SD) and the
  coordination-heavy AD.

Expected shapes (paper observations): filters-only queries stay flat while
multi-way joins first gain from parallelism then hit the parallelism
paradox (O1, O2); UDO apps gain hugely at high degrees while AD stalls
(O2, O3); the overall relationship is non-linear (O4).
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster, homogeneous_cluster
from repro.core.experiments.persist import persist_cell
from repro.core.parallel import ParallelRunner
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.report.figures import FigureData, Series
from repro.workload.enumeration import ParameterBasedEnumeration
from repro.workload.generator import WorkloadGenerator, scale_plan_costs
from repro.workload.parameter_space import (
    PARALLELISM_CATEGORIES,
    ParameterSpace,
)
from repro.workload.querygen import QueryStructure

__all__ = [
    "DEFAULT_SYNTHETIC_STRUCTURES",
    "DEFAULT_APPS",
    "EXTENDED_CATEGORIES",
    "figure3_top",
    "figure3_bottom",
]

#: Structures of Figure 3 (top), ordered by complexity.
DEFAULT_SYNTHETIC_STRUCTURES = (
    QueryStructure.LINEAR,
    QueryStructure.TWO_FILTER_CHAIN,
    QueryStructure.THREE_FILTER_CHAIN,
    QueryStructure.TWO_WAY_JOIN,
    QueryStructure.THREE_WAY_JOIN,
    QueryStructure.FOUR_WAY_JOIN,
)

#: Applications of Figure 3 (bottom).
DEFAULT_APPS = ("WC", "LR", "MO", "SA", "SG", "SD", "CA", "AD")

#: Figure 3 (bottom) extends the categories to the degrees where the
#: paper reports data-intensive apps still improving (64, 128).
EXTENDED_CATEGORIES: dict[str, int] = {
    **PARALLELISM_CATEGORIES,
    "3XL": 64,
    "4XL": 128,
}


def _fixed_space() -> ParameterSpace:
    """A parameter space with one window setting, reducing run variance so

    the parallelism effect is isolated (the paper fixes workload parameters
    per figure as well)."""
    return ParameterSpace(
        window_durations_ms=(500,),
        sliding_ratios=(0.5,),
        window_lengths=(100,),
    )


def figure3_top(
    cluster: Cluster | None = None,
    runner_config: RunnerConfig | None = None,
    structures=DEFAULT_SYNTHETIC_STRUCTURES,
    categories: dict[str, int] | None = None,
    event_rate: float = 100_000.0,
    seed: int = 7,
    store=None,
) -> FigureData:
    """Median end-to-end latency vs parallelism category, synthetic PQPs.

    With a ``store`` (a document store or collection), every sweep cell
    persists a :class:`~repro.core.records.RunRecord` — including the
    per-operator observability summary when the runner config sets
    ``observe=True`` — for the ML dataset builder.
    """
    cluster = cluster or homogeneous_cluster("m510", 10)
    runner = BenchmarkRunner(cluster, runner_config)
    categories = categories or PARALLELISM_CATEGORIES
    dilation = runner.config.dilation
    generator = WorkloadGenerator(_fixed_space(), seed=seed)
    labels = list(categories)
    # Queries come from one sequential generator (its RNG stream must not
    # be reordered); the measurement cells are independent and fan out.
    # Each forked worker mutates its copy-on-write plan copy, so setting
    # parallelism per cell cannot race.
    pool = ParallelRunner(workers=runner.config.workers)
    series = []
    for structure in structures:
        query = generator.generate_one(
            cluster,
            structure,
            strategy=ParameterBasedEnumeration(1, _fixed_space()),
            event_rate=event_rate / dilation,
        )
        if dilation != 1.0:
            scale_plan_costs(query.plan, dilation)

        def cell(label, query=query):
            query.plan.set_uniform_parallelism(categories[label])
            return runner.measure(query.plan)

        measured = pool.map(cell, labels)
        if store is not None:
            for label, metrics in zip(labels, measured):
                query.plan.set_uniform_parallelism(categories[label])
                persist_cell(
                    store,
                    query.plan,
                    cluster,
                    metrics,
                    workload_kind="synthetic",
                    event_rate=event_rate,
                    figure="fig3-top",
                    structure=structure.value,
                    category=label,
                )
        latencies = [m["mean_median_latency_ms"] for m in measured]
        series.append(Series(structure.value, list(labels), latencies))
    return FigureData(
        figure_id="fig3-top",
        title="Exp 1: synthetic PQP complexity vs parallelism "
        f"({cluster.describe()}, {event_rate:g} ev/s)",
        x_label="parallelism category",
        y_label="mean median e2e latency (ms)",
        series=series,
    )


def figure3_bottom(
    cluster: Cluster | None = None,
    runner_config: RunnerConfig | None = None,
    apps=DEFAULT_APPS,
    categories: dict[str, int] | None = None,
    event_rate: float = 100_000.0,
    store=None,
) -> FigureData:
    """Median end-to-end latency vs parallelism, real-world applications.

    ``store`` persists one :class:`~repro.core.records.RunRecord` per
    (app, category) cell, observability summary included when observing.
    """
    cluster = cluster or homogeneous_cluster("m510", 10)
    runner = BenchmarkRunner(cluster, runner_config)
    categories = categories or EXTENDED_CATEGORIES
    labels = list(categories)
    # Every (app, category) cell builds its own plan: the full grid fans
    # out at once, keeping the pool busy even when one app is slow.
    cells = [(abbrev, label) for abbrev in apps for label in labels]

    def cell(pair):
        abbrev, label = pair
        return runner.measure_app(abbrev, categories[label], event_rate)

    values = ParallelRunner(workers=runner.config.workers).map(cell, cells)
    if store is not None:
        for (abbrev, label), metrics in zip(cells, values):
            query = runner.prepare_app(
                abbrev, categories[label], event_rate
            )
            persist_cell(
                store,
                query.plan,
                cluster,
                metrics,
                workload_kind="real-world",
                event_rate=event_rate,
                figure="fig3-bottom",
                app=abbrev,
                category=label,
            )
    series = []
    for i, abbrev in enumerate(apps):
        chunk = values[i * len(labels) : (i + 1) * len(labels)]
        latencies = [m["mean_median_latency_ms"] for m in chunk]
        series.append(Series(abbrev, list(labels), latencies))
    return FigureData(
        figure_id="fig3-bottom",
        title="Exp 1: real-world apps vs parallelism "
        f"({cluster.describe()}, {event_rate:g} ev/s)",
        x_label="parallelism category",
        y_label="mean median e2e latency (ms)",
        series=series,
    )
