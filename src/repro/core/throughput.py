"""Sustainable-throughput measurement.

Table 1 claims PDSP-Bench is "fully" scalable: it can scale workload
generation until the SUT saturates. This module measures an application's
*sustainable throughput* — the highest event rate at which the measured
median latency stays within a bound of the unloaded baseline — by scanning
the paper's event-rate ladder (Table 3) with a geometric refinement step,
the standard methodology of the Karimov et al. benchmark the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.core.runner import BenchmarkRunner

__all__ = ["ThroughputResult", "sustainable_throughput"]


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a sustainable-throughput search."""

    sustainable_rate: float
    baseline_latency_ms: float
    latency_at_limit_ms: float
    probed: tuple[tuple[float, float], ...]  # (rate, latency_ms)

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"sustainable ~{self.sustainable_rate:,.0f} ev/s "
            f"(baseline {self.baseline_latency_ms:.1f} ms, "
            f"at limit {self.latency_at_limit_ms:.1f} ms)"
        )


def sustainable_throughput(
    runner: BenchmarkRunner,
    app: str,
    parallelism: int,
    rates: tuple[float, ...] = (
        1_000.0,
        5_000.0,
        10_000.0,
        50_000.0,
        100_000.0,
        200_000.0,
        500_000.0,
        1_000_000.0,
    ),
    latency_factor: float = 3.0,
    refine_steps: int = 2,
) -> ThroughputResult:
    """Find the highest sustainable event rate for an application.

    A rate is *sustainable* when the measured median latency is within
    ``latency_factor`` of the latency at the lowest (unloaded) rate.
    After the ladder scan, the boundary interval is refined
    geometrically ``refine_steps`` times.
    """
    if len(rates) < 2 or sorted(rates) != list(rates):
        raise ConfigurationError("rates must be an increasing ladder")
    if latency_factor <= 1.0:
        raise ConfigurationError("latency_factor must exceed 1.0")

    probed: list[tuple[float, float]] = []

    def latency_at(rate: float) -> float:
        result = runner.measure_app(app, parallelism, event_rate=rate)
        latency = result["mean_median_latency_ms"]
        probed.append((rate, latency))
        return latency

    baseline = latency_at(rates[0])
    bound = baseline * latency_factor
    last_good = rates[0]
    last_good_latency = baseline
    first_bad: float | None = None
    for rate in rates[1:]:
        latency = latency_at(rate)
        if latency <= bound:
            last_good = rate
            last_good_latency = latency
        else:
            first_bad = rate
            break
    if first_bad is not None:
        low, high = last_good, first_bad
        for _ in range(refine_steps):
            middle = (low * high) ** 0.5
            latency = latency_at(middle)
            if latency <= bound:
                low = middle
                last_good = middle
                last_good_latency = latency
            else:
                high = middle
    return ThroughputResult(
        sustainable_rate=last_good,
        baseline_latency_ms=baseline,
        latency_at_limit_ms=last_good_latency,
        probed=tuple(probed),
    )
