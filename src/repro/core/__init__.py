"""PDSP-Bench core: controller, benchmark runner and experiment suite."""

from repro.core.controller import PDSPBench
from repro.core.parallel import ParallelRunner, parallel_map
from repro.core.records import RunRecord
from repro.core.runner import BenchmarkRunner, RunnerConfig

__all__ = [
    "PDSPBench",
    "BenchmarkRunner",
    "RunnerConfig",
    "RunRecord",
    "ParallelRunner",
    "parallel_map",
]
