"""Parallel fan-out of independent simulation runs.

The discrete-event engine is single-threaded by design (one run = one
deterministic event sequence), but a benchmark campaign is embarrassingly
parallel across *runs*: the repeats of one configuration and the cells of
a sweep grid share nothing. :class:`ParallelRunner` fans such work out to
a ``fork``-based multiprocessing pool.

**Determinism.** Parallelism must never change a simulated result, so the
contract is strict: the caller enumerates work items up front, every item
carries its own seed derivation (identical to the serial path — e.g.
``RngFactory(seed * 1000 + repeat)``), and results come back in submission
order. Workers never share RNG state; ``workers=1`` (the default) runs
the exact serial loop in-process. ``tests/test_parallel.py`` pins
serial/parallel equality down.

**Why fork + a module global.** Benchmark closures capture plans, logics
and clusters that are expensive (or impossible) to pickle. With the
``fork`` start method children inherit the parent's address space, so the
pool only ships an integer index per task and a picklable result back.
Platforms without ``fork`` (Windows, some macOS configurations) fall back
to the serial loop rather than risking pickling failures — correctness
first, speed second.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

from repro.common.errors import ConfigurationError, DeterminismError

__all__ = [
    "ParallelRunner",
    "parallel_map",
    "default_workers",
    "fork_unsafe_captures",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

# The current fan-out, inherited by forked children. A list so the worker
# reads the parent's value at fork time without any pickling.
_TASK: list = [None, None]

# Set in pool children: nested ParallelRunner.map calls (an experiment
# driver fanning out a runner that itself has workers > 1) degrade to the
# serial loop instead of forking grandchildren.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _invoke(index: int) -> Any:
    fn, items = _TASK
    return fn(items[index])


def default_workers() -> int:
    """A sensible worker count: the machine's cores, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def _is_fork_unsafe(value: Any) -> str | None:
    """Why a captured value is hazardous under fork, or None if fine.

    A live RNG generator captured by a work closure means every forked
    child inherits an identical copy and the parent keeps drawing too —
    the classic shared-stream divergence (DET608/DET606 territory). Open
    files, locks and sockets are duplicated with their buffers/holders.
    """
    import io
    import socket
    import threading

    if isinstance(value, io.IOBase):
        return "an open file handle"
    if isinstance(value, socket.socket):
        return "a socket"
    lock_types = (
        type(threading.Lock()),
        type(threading.RLock()),
        threading.Condition,
        threading.Semaphore,
        threading.Event,
    )
    if isinstance(value, lock_types):
        return "a synchronisation primitive"
    np = __import__("numpy")
    if isinstance(value, np.random.Generator):
        return "a live numpy Generator"
    return None


def fork_unsafe_captures(fn: Callable) -> list[str]:
    """Fork-unsafe values captured by ``fn``'s closure, as descriptions.

    Scans the function's closure cells (and one level of dict values
    inside them) for resources that must not be silently duplicated by
    ``fork``. This is the DET606 runtime complement of the static
    sanitizer: the AST pass sees module-level constructions, this sees
    what the *actual* work closure carries into the pool.
    """
    hazards: list[str] = []
    closure = getattr(fn, "__closure__", None) or ()
    names = getattr(fn.__code__, "co_freevars", ()) if closure else ()
    for name, cell in zip(names, closure):
        try:
            value = cell.cell_contents
        except ValueError:  # pragma: no cover - empty cell
            continue
        why = _is_fork_unsafe(value)
        if why is not None:
            hazards.append(f"closure variable {name!r} holds {why}")
            continue
        if isinstance(value, dict):
            for key, item in value.items():
                why = _is_fork_unsafe(item)
                if why is not None:
                    hazards.append(
                        f"closure variable {name!r}[{key!r}] holds {why}"
                    )
    return hazards


class ParallelRunner:
    """Maps a function over independent work items, possibly in parallel.

    ``workers=1`` is an exact in-process loop; ``workers>1`` forks a pool
    and dispatches indices in chunks. Worker exceptions propagate to the
    caller (the pool is torn down, nothing hangs). Result order always
    matches item order.

    ``check_captures=True`` refuses (with
    :class:`~repro.common.errors.DeterminismError`, code DET606) to fork
    when the work closure captures fork-unsafe resources — open files,
    locks, sockets or live RNG generators. The serial path never checks:
    without fork there is nothing to duplicate.
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: int | None = None,
        check_captures: bool = False,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        self.workers = workers
        self.chunk_size = chunk_size
        self.check_captures = check_captures

    # ------------------------------------------------------------------ map

    def map(
        self, fn: Callable[[_T], _R], items: Iterable[_T]
    ) -> list[_R]:
        """``[fn(item) for item in items]``, fanned out when possible."""
        if self.workers <= 1:
            # The serial path is the exact list-comprehension loop and
            # must never consult fork machinery: a workers=1 runner is
            # the in-process reference that sharded / pooled runs are
            # compared against, and probing start methods (or touching
            # the module-global task slot) from inside engine code or
            # pool children is what the no-fork pin test forbids.
            return [fn(item) for item in items]
        work: Sequence[_T] = (
            items if isinstance(items, (list, tuple)) else list(items)
        )
        workers = min(self.workers, len(work))
        if workers <= 1 or _IN_WORKER or not self._fork_available():
            return [fn(item) for item in work]
        if self.check_captures:
            hazards = fork_unsafe_captures(fn)
            if hazards:
                raise DeterminismError(
                    "refusing to fork a closure with fork-unsafe "
                    "captures: " + "; ".join(hazards),
                    code="DET606",
                )
        chunk = self.chunk_size or max(1, len(work) // (workers * 4))
        ctx = multiprocessing.get_context("fork")
        previous = list(_TASK)
        _TASK[0] = fn
        _TASK[1] = work
        try:
            with ctx.Pool(workers, initializer=_mark_worker) as pool:
                return pool.map(_invoke, range(len(work)), chunksize=chunk)
        finally:
            _TASK[0], _TASK[1] = previous

    @staticmethod
    def _fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int = 1,
    chunk_size: int | None = None,
) -> list[_R]:
    """One-shot :meth:`ParallelRunner.map`."""
    return ParallelRunner(workers=workers, chunk_size=chunk_size).map(
        fn, items
    )
