"""Run records: what one benchmark execution persists.

A :class:`RunRecord` couples the workload description (structure or app,
parameters, parallelism degrees), the resource description (cluster), and
the measured metrics — the document PDSP-Bench stores in MongoDB so the ML
Manager can later assemble training corpora from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster.cluster import Cluster
from repro.sps.logical import LogicalPlan

__all__ = ["RunRecord"]


@dataclass
class RunRecord:
    """One persisted benchmark run.

    ``observability`` carries the per-operator metric summary of an
    observed run (tuples in/out, busy time, shuffle bytes, stall time —
    see :mod:`repro.obs`); empty for unobserved runs. It persists with
    the record so the ML dataset builder can attach run-time features
    to training examples.
    """

    workload_name: str
    workload_kind: str  # "synthetic" | "real-world"
    cluster_name: str
    degrees: dict[str, int]
    event_rate: float
    metrics: dict[str, float]
    params: dict[str, Any] = field(default_factory=dict)
    observability: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_run(
        cls,
        plan: LogicalPlan,
        cluster: Cluster,
        metrics: dict[str, float],
        workload_kind: str,
        event_rate: float,
        params: dict[str, Any] | None = None,
    ) -> "RunRecord":
        """Assemble a record from a measured plan.

        A non-scalar ``"obs"`` entry in ``metrics`` (attached by an
        observing runner) moves into the ``observability`` field so the
        metrics dict stays purely numeric.
        """
        metrics = dict(metrics)
        observability = metrics.pop("obs", None) or {}
        return cls(
            workload_name=plan.name,
            workload_kind=workload_kind,
            cluster_name=cluster.name,
            degrees=plan.parallelism_degrees(),
            event_rate=event_rate,
            metrics=metrics,
            params=dict(params or {}),
            observability=dict(observability),
        )

    def to_document(self) -> dict:
        """JSON-serialisable form for the document store."""
        document = {
            "workload_name": self.workload_name,
            "workload_kind": self.workload_kind,
            "cluster_name": self.cluster_name,
            "degrees": dict(self.degrees),
            "event_rate": self.event_rate,
            "metrics": dict(self.metrics),
            "params": dict(self.params),
        }
        if self.observability:
            document["observability"] = dict(self.observability)
        return document

    @classmethod
    def from_document(cls, document: dict) -> "RunRecord":
        """Inverse of :meth:`to_document`."""
        return cls(
            workload_name=document["workload_name"],
            workload_kind=document["workload_kind"],
            cluster_name=document["cluster_name"],
            degrees={
                k: int(v) for k, v in document["degrees"].items()
            },
            event_rate=float(document["event_rate"]),
            metrics=dict(document["metrics"]),
            params=dict(document.get("params", {})),
            observability=dict(document.get("observability", {})),
        )
