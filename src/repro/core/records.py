"""Run records: what one benchmark execution persists.

A :class:`RunRecord` couples the workload description (structure or app,
parameters, parallelism degrees), the resource description (cluster), and
the measured metrics — the document PDSP-Bench stores in MongoDB so the ML
Manager can later assemble training corpora from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster.cluster import Cluster
from repro.sps.logical import LogicalPlan

__all__ = ["RunRecord"]


@dataclass
class RunRecord:
    """One persisted benchmark run."""

    workload_name: str
    workload_kind: str  # "synthetic" | "real-world"
    cluster_name: str
    degrees: dict[str, int]
    event_rate: float
    metrics: dict[str, float]
    params: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_run(
        cls,
        plan: LogicalPlan,
        cluster: Cluster,
        metrics: dict[str, float],
        workload_kind: str,
        event_rate: float,
        params: dict[str, Any] | None = None,
    ) -> "RunRecord":
        """Assemble a record from a measured plan."""
        return cls(
            workload_name=plan.name,
            workload_kind=workload_kind,
            cluster_name=cluster.name,
            degrees=plan.parallelism_degrees(),
            event_rate=event_rate,
            metrics=dict(metrics),
            params=dict(params or {}),
        )

    def to_document(self) -> dict:
        """JSON-serialisable form for the document store."""
        return {
            "workload_name": self.workload_name,
            "workload_kind": self.workload_kind,
            "cluster_name": self.cluster_name,
            "degrees": dict(self.degrees),
            "event_rate": self.event_rate,
            "metrics": dict(self.metrics),
            "params": dict(self.params),
        }

    @classmethod
    def from_document(cls, document: dict) -> "RunRecord":
        """Inverse of :meth:`to_document`."""
        return cls(
            workload_name=document["workload_name"],
            workload_kind=document["workload_kind"],
            cluster_name=document["cluster_name"],
            degrees={
                k: int(v) for k, v in document["degrees"].items()
            },
            event_rate=float(document["event_rate"]),
            metrics=dict(document["metrics"]),
            params=dict(document.get("params", {})),
        )
