"""Tracked performance harness for the simulation engine.

The discrete-event engine is the hot path of every benchmark campaign, so
its throughput (simulator events per wall-clock second) is tracked like
any other regression surface:

- ``repro bench`` (or ``benchmarks/bench_engine_hotpath.py``) measures a
  fixed set of workloads on fixed seeds and prints events/sec;
- ``--write`` records the numbers in ``BENCH_engine.json`` at the repo
  root (the file also keeps the pre-optimization baseline for context);
- ``--check`` compares a fresh measurement against the committed numbers
  and fails when throughput drops more than ``TOLERANCE`` below them —
  the CI perf smoke job runs ``repro bench --quick --check``.

**Cross-machine scaling.** Absolute events/sec depends on the host, so
the committed file stores a *calibration score* — the throughput of a
fixed pure-Python heap workload measured on the machine that wrote the
file. At check time the score is re-measured and the committed reference
is scaled by the ratio, which keeps the 30% gate meaningful on hosts
slower or faster than the one that produced the baseline.

Workloads: ``hotpath`` is a synthetic engine-dominated plan (cheap
operator logic, keyed shuffle, windowed aggregation) that isolates the
event loop itself; ``slide8`` stresses sliding-window aggregation with
an 8x overlap (every tuple belongs to 8 windows — the case slice-based
aggregation turns from O(overlap) into O(1) per tuple); ``join8`` is a
match-heavy sliding-window join (4x overlap on both probe sides);
``WC``/``SG``/``AD`` exercise the real applications (word count, smart
grid, ad analytics) whose operator logic shares the budget with the
engine; ``hotpath-b256``/``WC-b256`` run the first and fourth of those
under the columnar micro-batch executor (``SimulationConfig.batch_size``,
see :mod:`repro.sps.batch`) — the ≥1M events/sec fast path, gated by the
same tolerance.  :func:`run_batch_sweep` additionally captures the batch
size × throughput/latency trade-off
(``benchmarks/bench_batch_sweep.py``).
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager
from heapq import heappop, heappush
from pathlib import Path

import numpy as np

from repro.cluster.cluster import homogeneous_cluster
from repro.common.rng import RngFactory
from repro.core.parallel import default_workers
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.sps import builders
from repro.sps.engine import SimulationConfig, StreamEngine
from repro.sps.logical import LogicalPlan
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import (
    AggregateFunction,
    SlidingTimeWindows,
    TumblingTimeWindows,
)

__all__ = [
    "ENGINE_WORKLOADS",
    "TOLERANCE",
    "WorkloadTimeout",
    "hotpath_plan",
    "slide8_plan",
    "join8_plan",
    "run_engine_bench",
    "run_batch_sweep",
    "run_sweep_bench",
    "calibration_score",
    "calibration_details",
    "run_shard_identity",
    "run_bench",
]

#: Default location of the committed numbers, relative to the repo root.
DEFAULT_REPORT = "BENCH_engine.json"

#: Relative throughput drop that fails ``--check``.
TOLERANCE = 0.30

#: Workloads of the engine benchmark, in report order.  The ``-b<N>``
#: suffixed entries run the same plan under the columnar micro-batch
#: executor with that batch size (the ≥1M ev/s tentpole targets); the
#: ``-ckpt`` suffix runs the plan with aligned-barrier checkpointing on
#: (interval ``_CKPT_INTERVAL``), so the gate also covers the
#: fault-tolerance control plane's simulator overhead.
ENGINE_WORKLOADS = (
    "hotpath",
    "slide8",
    "join8",
    "WC",
    "SG",
    "AD",
    "hotpath-b256",
    "WC-b256",
    "hotpath-ckpt",
    "hotpath-s4",
    "WC-s4",
)

_BENCH_SEED = 17
_BENCH_PARALLELISM = 4
_BENCH_DILATION = 25.0

#: Sharded ``-s<K>`` workload shape (DESIGN.md §14): a cloud-style
#: network whose base latency is the conservative lookahead — wide
#: enough that each epoch holds thousands of events — a source rate
#: that saturates those epochs, and a larger tuple budget so the run
#: spans enough epochs to amortise per-epoch synchronisation.
_SHARD_RATE = 800_000.0
_SHARD_LATENCY_S = 2e-3
_SHARD_TUPLES_SCALE = 4

#: Checkpoint cadence of the ``-ckpt`` workloads: short enough that a
#: quick run completes several checkpoints, long enough that barriers
#: finish aligning between triggers on the trivial-cost hotpath plan.
_CKPT_INTERVAL = 0.05

_KV_SCHEMA = Schema(
    [Field("k", DataType.INT), Field("v", DataType.DOUBLE)]
)


def _kv_generate(rng: np.random.Generator, now: float) -> StreamTuple:
    """64-key (int, double) tuples shared by the synthetic workloads."""
    return StreamTuple(
        values=(int(rng.integers(64)), float(rng.random())),
        event_time=now,
        size_bytes=24.0,
    )


def _kv_generate_vec(rng: np.random.Generator, nows: np.ndarray) -> tuple:
    """Columnar micro-batch form of :func:`_kv_generate`.

    Draws one ``(n, 2)`` uniform block — row ``i`` holds tuple ``i``'s
    draws contiguously, so splitting the stream at any micro-batch
    boundary consumes the RNG identically (batch-size invariance).
    """
    draws = rng.random((len(nows), 2))
    keys = (draws[:, 0] * 64.0).astype(np.int64)
    return (keys, np.ascontiguousarray(draws[:, 1])), 24.0


def hotpath_plan(
    parallelism: int = _BENCH_PARALLELISM,
    event_rate: float = 4000.0,
) -> LogicalPlan:
    """A synthetic engine-stress plan: source -> filter -> keyed agg -> sink.

    Operator logic is deliberately trivial, so nearly all wall-clock goes
    to the engine itself — arrival scheduling, queueing, routing (one
    forward and one hash exchange) and window bookkeeping.  The sharded
    ``-s<K>`` workloads raise ``event_rate`` so conservative epochs (one
    network base latency wide) each contain thousands of events.
    """
    plan = LogicalPlan("bench-hotpath")
    plan.add_operator(
        builders.source(
            "src", _kv_generate, _KV_SCHEMA, event_rate=event_rate,
            parallelism=parallelism,
            vector_generator=_kv_generate_vec,
        )
    )
    plan.add_operator(
        builders.filter_op(
            "flt",
            Predicate(1, FilterFunction.GT, 0.5, selectivity_hint=0.5),
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.window_agg(
            "agg",
            TumblingTimeWindows(0.05),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
            parallelism=parallelism,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "flt")
    plan.connect("flt", "agg")
    plan.connect("agg", "sink")
    return plan


def slide8_plan(parallelism: int = _BENCH_PARALLELISM) -> LogicalPlan:
    """Sliding-window-heavy plan: every tuple lands in 8 windows.

    400ms windows sliding by 50ms — the overlap the slice-based
    aggregate collapses to one accumulator update per tuple.
    """
    plan = LogicalPlan("bench-sliding")
    plan.add_operator(
        builders.source(
            "src", _kv_generate, _KV_SCHEMA, event_rate=4000.0,
            parallelism=parallelism,
            vector_generator=_kv_generate_vec,
        )
    )
    plan.add_operator(
        builders.window_agg(
            "agg",
            SlidingTimeWindows(0.4, 0.05),
            AggregateFunction.SUM,
            value_field=1,
            key_field=0,
            parallelism=parallelism,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("src", "agg")
    plan.connect("agg", "sink")
    return plan


def join8_plan(parallelism: int = _BENCH_PARALLELISM) -> LogicalPlan:
    """Join-heavy plan: sliding windows overlap 4x on both probe sides."""
    plan = LogicalPlan("bench-join")
    plan.add_operator(
        builders.source(
            "lhs", _kv_generate, _KV_SCHEMA, event_rate=2000.0,
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.source(
            "rhs", _kv_generate, _KV_SCHEMA, event_rate=2000.0,
            parallelism=parallelism,
        )
    )
    plan.add_operator(
        builders.window_join(
            "join",
            SlidingTimeWindows(0.2, 0.05),
            left_key_field=0,
            right_key_field=0,
            parallelism=parallelism,
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("lhs", "join", port=0)
    plan.connect("rhs", "join", port=1)
    plan.connect("join", "sink")
    return plan


class WorkloadTimeout(RuntimeError):
    """A benchmark workload exceeded its wall-clock budget.

    Raised by :func:`_deadline`; the message names the workload so a CI
    log shows *which* plan hung rather than just a job-level timeout.
    """


@contextmanager
def _deadline(name: str, seconds: float | None):
    """Per-workload wall-clock guard; fails with the workload's name.

    Implemented with ``SIGALRM`` (main thread, POSIX); where the signal
    is unavailable — or ``seconds`` is ``None`` — the guard is a no-op,
    so the bench still runs everywhere the engine does.
    """
    if not seconds or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise WorkloadTimeout(
            f"workload {name!r} exceeded {seconds:g}s wall-clock"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _measure(
    plan,
    cluster,
    tuples: int,
    rounds: int,
    batch_size: int | None = None,
    checkpoint_interval: float | None = None,
    shards: int | None = None,
) -> dict:
    """Best-of-``rounds`` events/sec of one plan on fixed seeds."""
    sim = SimulationConfig(
        max_tuples_per_source=tuples,
        max_sim_time=8.0,
        batch_size=batch_size,
        checkpoint_interval=checkpoint_interval,
        shards=shards,
    )
    best = 0.0
    events = 0
    for _ in range(rounds):
        engine = StreamEngine(
            plan, cluster, config=sim,
            rng_factory=RngFactory(_BENCH_SEED),
        )
        start = time.perf_counter()
        metrics = engine.run()
        elapsed = time.perf_counter() - start
        events = metrics.extras["events_processed"]
        best = max(best, events / elapsed)
    return {"events_per_sec": round(best, 1), "events": int(events)}


def _parse_workload(
    name: str,
) -> tuple[str, int | None, float | None, int | None]:
    """Split a workload name into (base, batch, checkpoint, shards).

    ``"WC-b256"`` becomes ``("WC", 256, None, None)``,
    ``"hotpath-ckpt"`` becomes ``("hotpath", None, _CKPT_INTERVAL,
    None)``, ``"hotpath-s4"`` becomes ``("hotpath", None, None, 4)``;
    plain names pass through unchanged.
    """
    checkpoint = None
    if name.endswith("-ckpt"):
        name = name[: -len("-ckpt")]
        checkpoint = _CKPT_INTERVAL
    base, sep, suffix = name.rpartition("-s")
    if sep and suffix.isdigit():
        return base, None, checkpoint, int(suffix)
    base, sep, suffix = name.rpartition("-b")
    if sep and suffix.isdigit():
        return base, int(suffix), checkpoint, None
    return name, None, checkpoint, None


def _shard_cluster():
    """The cluster of the ``-s<K>`` workloads: cloud-style latency."""
    from repro.cluster.network import NetworkSpec

    return homogeneous_cluster(
        "m510",
        _BENCH_PARALLELISM,
        network_spec=NetworkSpec(base_latency_s=_SHARD_LATENCY_S),
    )


def _build_workload(
    name: str,
    cluster,
    tuples: int,
    event_rate: float | None = None,
    dilation: float = _BENCH_DILATION,
):
    if name == "hotpath":
        if event_rate is not None:
            return hotpath_plan(event_rate=event_rate)
        return hotpath_plan()
    if name == "slide8":
        return slide8_plan()
    if name == "join8":
        return join8_plan()
    runner = BenchmarkRunner(
        cluster,
        RunnerConfig(
            repeats=1,
            dilation=dilation,
            max_tuples_per_source=tuples,
            max_sim_time=8.0,
            seed=_BENCH_SEED,
        ),
    )
    return runner.prepare_app(
        name, _BENCH_PARALLELISM, event_rate=event_rate or 100_000.0
    ).plan


def _available_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def run_engine_bench(
    quick: bool = False,
    workloads=ENGINE_WORKLOADS,
    timeout: float | None = None,
) -> dict[str, dict]:
    """events/sec per workload; quick mode shrinks budgets for CI.

    ``timeout`` bounds each workload's wall-clock; exceeding it raises
    :class:`WorkloadTimeout` naming the offender.

    Sharded ``-s<K>`` workloads run the plan on the cloud-latency
    :func:`_shard_cluster` under ``SimulationConfig(shards=K)`` with
    forked shard processes, and additionally measure the identical
    plan/cluster serially, recording ``speedup_vs_serial`` and the
    host's usable core count — on a host with fewer than ``K`` cores
    the fork buys nothing by construction, so only the events/sec
    number (relative to this machine's committed baseline) gates.
    """
    tuples = 1500 if quick else 5000
    rounds = 2 if quick else 3
    cluster = homogeneous_cluster("m510", 4)
    results: dict[str, dict] = {}
    for name in workloads:
        with _deadline(name, timeout):
            base, batch_size, checkpoint, shards = _parse_workload(name)
            if shards is not None:
                w_cluster = _shard_cluster()
                w_tuples = tuples * _SHARD_TUPLES_SCALE
                plan = _build_workload(
                    base,
                    w_cluster,
                    w_tuples,
                    event_rate=_SHARD_RATE,
                    dilation=1.0,
                )
                result = _measure(
                    plan, w_cluster, w_tuples, rounds, shards=shards
                )
                serial = _measure(plan, w_cluster, w_tuples, rounds)
                result["speedup_vs_serial"] = round(
                    result["events_per_sec"] / serial["events_per_sec"],
                    2,
                )
                result["cores"] = _available_cores()
                results[name] = result
                continue
            plan = _build_workload(base, cluster, tuples)
            results[name] = _measure(
                plan,
                cluster,
                tuples,
                rounds,
                batch_size=batch_size,
                checkpoint_interval=checkpoint,
            )
    return results


def run_batch_sweep(
    quick: bool = False,
    workloads: tuple[str, ...] = ("hotpath", "WC"),
    batch_sizes: tuple[int, ...] = (1, 16, 64, 256, 1024),
    timeout: float | None = None,
) -> dict[str, list[dict]]:
    """The batch-size × throughput/latency trade-off, per workload.

    For each workload the scalar engine (``batch=None``) and each batch
    size are measured on the same plan and seeds; rows report simulator
    events/sec (wall-clock cost) and the simulated mean end-to-end
    latency (batching adds simulated latency — tuples wait for their
    micro-batch — which is exactly the trade-off this sweep captures).
    """
    tuples = 1500 if quick else 5000
    rounds = 1 if quick else 2
    cluster = homogeneous_cluster("m510", 4)
    sweep: dict[str, list[dict]] = {}
    for name in workloads:
        with _deadline(f"batch-sweep:{name}", timeout):
            plan = _build_workload(name, cluster, tuples)
            rows: list[dict] = []
            for batch_size in (None, *batch_sizes):
                sim = SimulationConfig(
                    max_tuples_per_source=tuples,
                    max_sim_time=8.0,
                    batch_size=batch_size,
                )
                best = 0.0
                latency = 0.0
                for _ in range(rounds):
                    engine = StreamEngine(
                        plan, cluster, config=sim,
                        rng_factory=RngFactory(_BENCH_SEED),
                    )
                    start = time.perf_counter()
                    metrics = engine.run()
                    elapsed = time.perf_counter() - start
                    events = metrics.extras["events_processed"]
                    best = max(best, events / elapsed)
                    latency = metrics.latency.mean
                rows.append(
                    {
                        "batch_size": batch_size,
                        "events_per_sec": round(best, 1),
                        "latency_mean_ms": round(latency * 1000.0, 3),
                    }
                )
            sweep[name] = rows
    return sweep


def run_sweep_bench(
    quick: bool = False,
    workers: int | None = None,
    timeout: float | None = None,
) -> dict:
    """Wall-clock of a small app sweep, serial vs. fanned out.

    ``timeout`` bounds each of the two sweeps (serial, fanned-out)
    separately, like the per-workload guard in
    :func:`run_engine_bench`.
    """
    workers = workers or default_workers()
    apps = ("WC",) if quick else ("WC", "SG")
    categories = (1, 2, 4)
    tuples = 600 if quick else 1500

    def sweep(num_workers: int) -> float:
        runner = BenchmarkRunner(
            homogeneous_cluster("m510", 4),
            RunnerConfig(
                repeats=2,
                dilation=_BENCH_DILATION,
                max_tuples_per_source=tuples,
                max_sim_time=6.0,
                seed=_BENCH_SEED,
                workers=num_workers,
            ),
        )
        start = time.perf_counter()
        for abbrev in apps:
            for parallelism in categories:
                runner.measure_app(abbrev, parallelism)
        return time.perf_counter() - start

    with _deadline("sweep-serial", timeout):
        serial_s = sweep(1)
    with _deadline("sweep-parallel", timeout):
        parallel_s = sweep(workers)
    return {
        "cells": len(apps) * len(categories),
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / max(parallel_s, 1e-9), 2),
    }


def _calibration_probe(iterations: int) -> float:
    """One kops/s sample of the fixed heap workload."""
    heap: list = []
    start = time.perf_counter()
    for i in range(iterations):
        heappush(heap, ((i * 2654435761) & 1023, i))
        if i & 1:
            heappop(heap)
    elapsed = time.perf_counter() - start
    return round(iterations / elapsed / 1000.0, 1)


def calibration_score(
    iterations: int = 300_000, probes: int = 3
) -> float:
    """Median kops/s of ``probes`` heap-workload runs — host speed proxy.

    Used to scale the committed reference before comparing, so the
    regression gate transfers across machines of different speeds. The
    median of three probes (rather than a single one) keeps a scheduler
    hiccup during the probe from shifting every workload's floor.
    """
    return calibration_details(iterations, probes)["kops"]


def calibration_details(
    iterations: int = 300_000, probes: int = 3
) -> dict:
    """Median and spread of the calibration probes.

    The spread (max - min across probes) is recorded next to the score
    in the bench report; a wide spread flags a noisy host whose check
    results deserve suspicion.
    """
    scores = sorted(_calibration_probe(iterations) for _ in range(probes))
    return {
        "kops": scores[len(scores) // 2],
        "spread_kops": round(scores[-1] - scores[0], 1),
        "probes": scores,
    }


def run_shard_identity(
    shards: int = 2, quick: bool = True
) -> list[str]:
    """Bit-identity failure messages for sharded vs. serial execution.

    Runs the shard-shaped hotpath plan three ways — the shard universe
    in a single in-process kernel (``shards=1``, the serial reference),
    in-process with ``shards=K``, and with ``K`` forked shard processes
    — and compares results, throughput, latency quantiles, event counts
    and the merged per-stream RNG ledgers. Any difference is a protocol
    or codec bug; CI runs this as part of the perf smoke lane.
    """
    cluster = _shard_cluster()
    plan = hotpath_plan(event_rate=_SHARD_RATE)
    tuples = 2000 if quick else 8000

    def signature(shard_count: int, force_inline: bool):
        sim = SimulationConfig(
            max_tuples_per_source=tuples,
            max_sim_time=8.0,
            shards=shard_count,
        )
        engine = StreamEngine(
            plan, cluster, config=sim,
            rng_factory=RngFactory(_BENCH_SEED),
        )
        engine.shard_force_inline = force_inline
        metrics = engine.run()
        return {
            "results": metrics.results,
            "source_events": metrics.source_events,
            "throughput": metrics.throughput,
            "latency_mean": metrics.latency.mean,
            "latency_p99": metrics.latency.p99,
            "sim_duration": metrics.sim_duration,
            "events": metrics.extras["events_processed"],
            "epochs": metrics.extras["shards"]["epochs"],
            "ledger": tuple(sorted(engine._shard_ledger.items())),
        }

    reference = signature(1, True)
    failures: list[str] = []
    for label, candidate in (
        (f"inline shards={shards}", signature(shards, True)),
        (f"forked shards={shards}", signature(shards, False)),
    ):
        for key, expected in reference.items():
            got = candidate[key]
            if got != expected:
                failures.append(
                    f"{label}: {key} diverged from the serial "
                    f"reference ({got!r} != {expected!r})"
                )
    return failures


def check_report(
    report: dict,
    results: dict[str, dict],
    mode: str,
    tolerance: float = TOLERANCE,
) -> list[str]:
    """Regression messages (empty = pass) vs. the committed numbers."""
    committed = report.get(mode, {}).get("current")
    if not committed:
        return [f"no committed '{mode}' numbers to check against"]
    scale = 1.0
    recorded = report.get("calibration_kops")
    if recorded:
        scale = calibration_score() / float(recorded)
    failures = []
    for name, result in results.items():
        reference = committed.get(name)
        if reference is None:
            continue
        expected = reference["events_per_sec"] * scale
        floor = expected * (1.0 - tolerance)
        if result["events_per_sec"] < floor:
            failures.append(
                f"{name}: {result['events_per_sec']:,.0f} ev/s is "
                f"{100 * (1 - result['events_per_sec'] / expected):.0f}% "
                f"below the committed {reference['events_per_sec']:,.0f} "
                f"(scaled to {expected:,.0f} for this host; "
                f"floor {floor:,.0f})"
            )
    return failures


def run_bench(
    quick: bool = False,
    check: bool = False,
    write: bool = False,
    report_path: str | Path = DEFAULT_REPORT,
    with_sweep: bool = True,
    timeout: float | None = None,
) -> int:
    """Measure, print, and optionally check or record. Returns exit code.

    ``timeout`` (seconds) arms a per-workload wall-clock guard; a
    workload exceeding it fails the bench, naming the workload.
    """
    mode = "quick" if quick else "full"
    try:
        results = run_engine_bench(quick=quick, timeout=timeout)
        print(f"engine benchmark ({mode}, seed {_BENCH_SEED}):")
        for name, result in results.items():
            extra = ""
            if "speedup_vs_serial" in result:
                extra = (
                    f"  [{result['speedup_vs_serial']}x vs serial, "
                    f"{result['cores']} core(s)]"
                )
            print(
                f"  {name:8s} {result['events_per_sec']:>12,.0f} ev/s"
                f"  ({result['events']} events){extra}"
            )
        sweep = None
        if with_sweep:
            sweep = run_sweep_bench(quick=quick, timeout=timeout)
            print(
                f"sweep: {sweep['cells']} cells, "
                f"serial {sweep['serial_s']}s, "
                f"{sweep['workers']} workers {sweep['parallel_s']}s "
                f"({sweep['speedup']}x)"
            )
    except WorkloadTimeout as exc:
        print(f"PERF CHECK FAILED: {exc}")
        return 1
    path = Path(report_path)
    report = {}
    report_error = None
    if path.exists():
        try:
            report = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            report_error = (
                f"benchmark report {path} is not valid JSON ({exc}); "
                "restore it from git or regenerate it with "
                "'repro bench --write'"
            )
        if not isinstance(report, dict):
            report_error = (
                f"benchmark report {path} must contain a JSON object, "
                f"got {type(report).__name__}; regenerate it with "
                "'repro bench --write'"
            )
            report = {}
    else:
        report_error = (
            f"benchmark report {path} does not exist; run "
            "'repro bench --write' to create it"
        )
    if check:
        if report_error is not None:
            print(f"PERF CHECK FAILED: {report_error}")
            return 1
        failures = check_report(report, results, mode)
        if failures:
            for message in failures:
                print(f"PERF REGRESSION: {message}")
            return 1
        print(f"perf check passed (tolerance {TOLERANCE:.0%})")
    if write:
        section = report.setdefault(mode, {})
        section["current"] = results
        calibration = calibration_details()
        report["calibration_kops"] = calibration["kops"]
        report["calibration_spread_kops"] = calibration["spread_kops"]
        if sweep is not None:
            report["sweep"] = sweep
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0
