"""``repro.obs`` — the observability layer.

Structured visibility into the simulated engine: a run-time metrics
registry (counters, gauges, HDR-style histograms, sampled per-operator
time series), a span tracer (JSONL trace events with parent/child span
ids), exporters (Chrome ``trace_event`` JSON for Perfetto, metrics
JSONL), and the :class:`EngineObserver` that threads them through
:class:`~repro.sps.engine.StreamEngine` without perturbing any
simulated result. See DESIGN.md §8.
"""

from repro.obs.export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_jsonl,
)
from repro.obs.observer import EngineObserver, merge_summaries
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.tracer import SpanTracer, TraceEvent

__all__ = [
    "EngineObserver",
    "Histogram",
    "MetricsRegistry",
    "SpanTracer",
    "TraceEvent",
    "merge_summaries",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_jsonl",
]
