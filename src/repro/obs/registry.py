"""Run-time metrics registry.

The registry is the numeric half of the observability layer (the tracer
in :mod:`repro.obs.tracer` is the event half). It holds three metric
kinds, all keyed by ``(metric name, operator id)``:

- **counters** — monotonically increasing totals (tuples in/out, shuffle
  bytes, stall seconds);
- **gauges** — last-written values (queue depth at the latest sample);
- **histograms** — fixed-bucket, HDR-style geometric bins for values
  spanning orders of magnitude (service times, queueing delays,
  watermark lag).

On top of the instantaneous state the registry records **time series**:
the engine observer samples every registered operator on a configurable
*simulated-clock* interval and appends one row per operator per tick.
Rows are plain dictionaries so they serialise to JSONL without any
schema machinery (:func:`repro.obs.export.write_metrics_jsonl`).

Everything is guarded by a single ``enabled`` flag so a registry can be
handed to instrumented code and switched off without touching call
sites; when disabled every mutator is a cheap early return.

Determinism: the registry only stores what the caller hands it, in call
order, and never consults wall-clock time or randomness — two runs of
the same seeded simulation produce byte-identical exports.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["Histogram", "MetricsRegistry"]


class Histogram:
    """Fixed-bucket histogram with geometrically growing bounds.

    HDR-histogram style: bucket *i* covers values in
    ``[lowest * growth**i, lowest * growth**(i + 1))``, so relative
    (not absolute) precision is constant across the range — the right
    trade-off for latencies and delays that span microseconds to
    minutes. Values below ``lowest`` land in bucket 0; values beyond
    the top bound land in the overflow bucket.
    """

    __slots__ = ("lowest", "growth", "counts", "total", "sum", "maximum")

    def __init__(
        self,
        lowest: float = 1e-6,
        growth: float = 2.0,
        num_buckets: int = 40,
    ) -> None:
        if lowest <= 0 or growth <= 1.0 or num_buckets < 1:
            raise ValueError(
                "histogram needs lowest > 0, growth > 1, num_buckets >= 1"
            )
        self.lowest = lowest
        self.growth = growth
        # One extra slot catches overflow beyond the top bound.
        self.counts = [0] * (num_buckets + 1)
        self.total = 0
        self.sum = 0.0
        self.maximum = 0.0

    def record(self, value: float) -> None:
        """Count one observation."""
        if value <= self.lowest:
            index = 0
        else:
            index = int(math.log(value / self.lowest, self.growth)) + 1
            if index >= len(self.counts):
                index = len(self.counts) - 1
        self.counts[index] += 1
        self.total += 1
        self.sum += value
        if value > self.maximum:
            self.maximum = value

    def bucket_bound(self, index: int) -> float:
        """Upper bound of bucket ``index`` (inf for the overflow slot)."""
        if index >= len(self.counts) - 1:
            return float("inf")
        return self.lowest * self.growth**index

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index >= len(self.counts) - 1:
                    return self.maximum
                return self.bucket_bound(index)
        return self.maximum

    @property
    def mean(self) -> float:
        """Mean of all recorded values (0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary including non-empty buckets."""
        return {
            "total": self.total,
            "mean": self.mean,
            "max": self.maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {
                f"{self.bucket_bound(i):.9g}": count
                for i, count in enumerate(self.counts)
                if count
            },
        }


class MetricsRegistry:
    """Counters, gauges, histograms and sampled time series."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counters: dict[tuple[str, str], float] = {}
        self.gauges: dict[tuple[str, str], float] = {}
        self.histograms: dict[tuple[str, str], Histogram] = {}
        #: time-series rows appended by the sampler, in sample order
        self.series: list[dict[str, Any]] = []

    # ------------------------------------------------------------ mutators

    def inc(self, name: str, op: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``(name, op)``."""
        if not self.enabled:
            return
        key = (name, op)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def set_gauge(self, name: str, op: str, value: float) -> None:
        """Set the gauge ``(name, op)`` to ``value``."""
        if not self.enabled:
            return
        self.gauges[(name, op)] = value

    def observe(self, name: str, op: str, value: float) -> None:
        """Record ``value`` into the histogram ``(name, op)``."""
        if not self.enabled:
            return
        key = (name, op)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram()
        histogram.record(value)

    def record_sample(self, t: float, op: str, **values: float) -> None:
        """Append one time-series row for operator ``op`` at sim time ``t``."""
        if not self.enabled:
            return
        row: dict[str, Any] = {"t": t, "op": op}
        row.update(values)
        self.series.append(row)

    # ------------------------------------------------------------ readers

    def counter(self, name: str, op: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self.counters.get((name, op), 0.0)

    def gauge(self, name: str, op: str) -> float:
        """Current value of a gauge (0 when never set)."""
        return self.gauges.get((name, op), 0.0)

    def histogram(self, name: str, op: str) -> Histogram | None:
        """The histogram for ``(name, op)``, if any values were observed."""
        return self.histograms.get((name, op))

    def summary(self) -> dict[str, Any]:
        """JSON-serialisable snapshot of all non-series state.

        Keys are sorted so the same run always serialises to the same
        bytes (the byte-stability half of the determinism contract).
        """
        return {
            "counters": {
                f"{name}:{op}": value
                for (name, op), value in sorted(self.counters.items())
            },
            "gauges": {
                f"{name}:{op}": value
                for (name, op), value in sorted(self.gauges.items())
            },
            "histograms": {
                f"{name}:{op}": histogram.to_dict()
                for (name, op), histogram in sorted(self.histograms.items())
            },
        }
