"""Span tracer: structured trace events from the simulated engine.

The tracer is the event half of the observability layer. It records a
flat list of :class:`TraceEvent` rows — span begin/end pairs, complete
spans (begin + known duration) and instant markers — each carrying a
span id and an optional parent span id, so tooling can rebuild the
span tree. Event kinds emitted by the engine observer:

- ``run`` — the root span covering the whole simulation;
- ``operator`` — one span per subtask, open for the subtask's lifetime;
- ``serve`` — one complete span per served tuple (service time);
- ``stall`` — one complete span per injected stall;
- ``window.fire`` — instant: a window operator's timer emitted results;
- ``join.match`` — instant: a join emitted a batch of matches;
- ``backpressure`` — instant: a subtask engaged or released flow
  control.

Timestamps are **simulated seconds**. Events append in simulation
order and carry no wall-clock state, so traces of the same seeded run
are byte-identical. :mod:`repro.obs.export` serialises the list to
JSONL or to Chrome ``trace_event`` JSON for ``chrome://tracing`` /
Perfetto.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceEvent", "SpanTracer"]

#: Phase markers, mirroring Chrome trace_event semantics.
PH_BEGIN = "B"
PH_END = "E"
PH_COMPLETE = "X"
PH_INSTANT = "i"


@dataclass
class TraceEvent:
    """One trace record.

    ``ts`` is the simulated time in seconds; ``dur`` is only set for
    complete spans. ``pid``/``tid`` follow the Chrome convention the
    exporter keeps: process = cluster node, thread = subtask.
    """

    ph: str
    name: str
    cat: str
    ts: float
    span_id: int
    parent_id: int | None = None
    pid: int = 0
    tid: int = 0
    dur: float | None = None
    args: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (one JSONL line)."""
        row: dict[str, Any] = {
            "ph": self.ph,
            "name": self.name,
            "cat": self.cat,
            "ts": self.ts,
            "span_id": self.span_id,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.parent_id is not None:
            row["parent_id"] = self.parent_id
        if self.dur is not None:
            row["dur"] = self.dur
        if self.args:
            row["args"] = self.args
        return row


class SpanTracer:
    """Collects trace events with parent/child span ids.

    Span ids are sequential integers assigned in emission order, which
    keeps them deterministic for a deterministic event stream. The
    tracer never mutates anything outside its own buffers, so tracing a
    simulation cannot perturb it.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        self._next_span = 0
        self._open: dict[int, TraceEvent] = {}

    def _new_span(self) -> int:
        self._next_span += 1
        return self._next_span

    # ------------------------------------------------------------ emitters

    def begin(
        self,
        name: str,
        cat: str,
        ts: float,
        parent_id: int | None = None,
        pid: int = 0,
        tid: int = 0,
        **args: Any,
    ) -> int:
        """Open a span; returns its id (0 when disabled)."""
        if not self.enabled:
            return 0
        span_id = self._new_span()
        event = TraceEvent(
            ph=PH_BEGIN,
            name=name,
            cat=cat,
            ts=ts,
            span_id=span_id,
            parent_id=parent_id,
            pid=pid,
            tid=tid,
            args=dict(args),
        )
        self.events.append(event)
        self._open[span_id] = event
        return span_id

    def end(self, span_id: int, ts: float, **args: Any) -> None:
        """Close a span previously opened with :meth:`begin`."""
        if not self.enabled or span_id == 0:
            return
        opened = self._open.pop(span_id, None)
        if opened is None:
            return
        self.events.append(
            TraceEvent(
                ph=PH_END,
                name=opened.name,
                cat=opened.cat,
                ts=ts,
                span_id=span_id,
                parent_id=opened.parent_id,
                pid=opened.pid,
                tid=opened.tid,
                args=dict(args),
            )
        )

    def complete(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        parent_id: int | None = None,
        pid: int = 0,
        tid: int = 0,
        **args: Any,
    ) -> int:
        """Record a span whose duration is already known."""
        if not self.enabled:
            return 0
        span_id = self._new_span()
        self.events.append(
            TraceEvent(
                ph=PH_COMPLETE,
                name=name,
                cat=cat,
                ts=ts,
                span_id=span_id,
                parent_id=parent_id,
                pid=pid,
                tid=tid,
                dur=dur,
                args=dict(args),
            )
        )
        return span_id

    def instant(
        self,
        name: str,
        cat: str,
        ts: float,
        parent_id: int | None = None,
        pid: int = 0,
        tid: int = 0,
        **args: Any,
    ) -> int:
        """Record a zero-duration marker."""
        if not self.enabled:
            return 0
        span_id = self._new_span()
        self.events.append(
            TraceEvent(
                ph=PH_INSTANT,
                name=name,
                cat=cat,
                ts=ts,
                span_id=span_id,
                parent_id=parent_id,
                pid=pid,
                tid=tid,
                args=dict(args),
            )
        )
        return span_id

    # ------------------------------------------------------------- readers

    def __len__(self) -> int:
        return len(self.events)

    def open_spans(self) -> list[int]:
        """Ids of spans begun but not yet ended (should be empty at exit)."""
        return sorted(self._open)
