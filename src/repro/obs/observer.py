"""The engine observer: glue between the engine and registry/tracer.

:class:`EngineObserver` is the single object the engine knows about.
It owns per-subtask counter arrays the hot-path hooks bump directly,
performs the **lazy simulated-clock sampling** that turns those
counters into per-operator time series, and emits span/instant trace
events for the structural moments of a run (operator lifetime, tuple
service, window fires, join batches, stalls, backpressure
transitions).

**Zero-perturbation invariant.** The observer only *reads* the
simulation: it never draws from any RNG, never pushes events into the
engine's heap, and never mutates engine state. Sampling is lazy — the
engine checks ``now >= next_sample`` on its existing event loop instead
of scheduling sampler events — so the heap contents, sequence numbers
and every simulated result are bit-identical with observation on or
off (pinned by ``tests/test_obs.py``).
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import SpanTracer

__all__ = ["EngineObserver", "merge_summaries"]

_INF = float("inf")


class EngineObserver:
    """Observes one :class:`~repro.sps.engine.StreamEngine` run.

    ``sample_interval`` is in *simulated* seconds. ``serve_spans``
    controls whether every served tuple becomes a trace span — the
    full story for ``repro trace``, too verbose for sweeps, which pass
    a registry only.
    """

    #: The observer protocol the engine drives. Anything standing in
    #: for an observer (e.g. the determinism sanitizer's
    #: :class:`~repro.analysis.racecheck.RaceDetector`, which wraps one)
    #: must implement these callables, expose ``next_sample``, and own
    #: the ``tuples_in``/``tuples_out``/``shuffle_bytes``/``stall_s``
    #: per-gid arrays the hot path bumps directly.
    HOOKS = (
        "on_run_start",
        "on_run_end",
        "sample",
        "on_serve",
        "on_done",
        "on_window_fire",
        "on_flush",
        "on_stall",
        "on_backpressure",
        "on_rescale",
        "on_checkpoint",
        "on_recovery",
    )

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        sample_interval: float = 0.25,
        serve_spans: bool = True,
    ) -> None:
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.sample_interval = sample_interval
        self.serve_spans = serve_spans and tracer is not None
        self.next_sample = _INF
        # Per-gid arrays, allocated at bind time.
        self.tuples_in: list[int] = []
        self.tuples_out: list[int] = []
        self.shuffle_bytes: list[float] = []
        self.stall_s: list[float] = []
        self._runtimes: list = []
        self._ops: dict[str, list[int]] = {}
        self._is_join: list[bool] = []
        self._op_spans: list[int] = []
        self._closed_spans: set[int] = set()
        self._run_span = 0
        self._lag_max: dict[str, float] = {}
        self._end_time = 0.0
        # Fault-tolerance counters (DESIGN.md §13); stay zero unless
        # the engine runs with checkpointing on.
        self.checkpoints = 0
        self.checkpoint_duration_s = 0.0
        self.checkpoint_state_bytes = 0.0
        self.recoveries = 0
        self.recovery_time_s = 0.0
        self.replayed_events = 0

    # ---------------------------------------------------------- lifecycle

    def on_run_start(self, engine) -> None:
        """Bind to the engine's runtimes and open the lifetime spans."""
        from repro.sps.logical_kinds import OperatorKind

        runtimes = engine._runtimes
        self._runtimes = runtimes
        n = len(runtimes)
        self.tuples_in = [0] * n
        self.tuples_out = [0] * n
        self.shuffle_bytes = [0.0] * n
        self.stall_s = [0.0] * n
        self._ops = {}
        self._is_join = [False] * n
        self._op_spans = [0] * n
        self._closed_spans = set()
        for runtime in runtimes:
            self._ops.setdefault(runtime.op_id, []).append(runtime.gid)
            kind = engine.logical.operator(runtime.op_id).kind
            self._is_join[runtime.gid] = kind is OperatorKind.WINDOW_JOIN
        self._lag_max = {op: 0.0 for op in self._ops}
        self.next_sample = self.sample_interval
        tracer = self.tracer
        if tracer is not None:
            self._run_span = tracer.begin(
                "run", "engine", 0.0, plan=engine.logical.name
            )
            for runtime in runtimes:
                self._op_spans[runtime.gid] = tracer.begin(
                    f"{runtime.op_id}[{runtime.index}]",
                    "operator",
                    0.0,
                    parent_id=self._run_span,
                    pid=runtime.node_id,
                    tid=runtime.gid,
                )

    def on_run_end(self, now: float) -> None:
        """Final sample, close lifetime spans, freeze the end time."""
        self._end_time = now
        self._flush_sample(now)
        tracer = self.tracer
        if tracer is not None:
            for runtime in self._runtimes:
                if runtime.gid not in self._closed_spans:
                    tracer.end(self._op_spans[runtime.gid], now)
            tracer.end(self._run_span, now)

    # ------------------------------------------------------------ sampling

    def sample(self, now: float) -> float:
        """Record one time-series row per operator; returns next deadline.

        Rows are stamped at the crossed boundary (a multiple of the
        sampling interval), not at ``now``, so tick times are stable
        regardless of which event crossed the boundary.
        """
        boundary = self.next_sample
        interval = self.sample_interval
        # Skip boundaries the simulation jumped over entirely.
        while boundary + interval <= now:
            boundary += interval
        self._flush_sample(boundary)
        self.next_sample = boundary + interval
        return self.next_sample

    def _flush_sample(self, t: float) -> None:
        registry = self.registry
        runtimes = self._runtimes
        tuples_in = self.tuples_in
        tuples_out = self.tuples_out
        shuffle_bytes = self.shuffle_bytes
        stall_s = self.stall_s
        for op, gids in self._ops.items():
            depth = 0
            busy = 0.0
            t_in = 0
            t_out = 0
            sh_bytes = 0.0
            stalled = 0.0
            for gid in gids:
                runtime = runtimes[gid]
                depth += len(runtime.queue) - runtime.queue_head
                busy += runtime.busy_time
                t_in += tuples_in[gid]
                t_out += tuples_out[gid]
                sh_bytes += shuffle_bytes[gid]
                stalled += stall_s[gid]
            lag = self._lag_max[op]
            self._lag_max[op] = 0.0
            registry.record_sample(
                t,
                op,
                queue_depth=depth,
                busy_s=busy,
                tuples_in=t_in,
                tuples_out=t_out,
                shuffle_bytes=sh_bytes,
                stall_s=stalled,
                watermark_lag_s=lag,
            )
            registry.set_gauge("queue_depth", op, depth)

    # ---------------------------------------------------- hot-path hooks

    def on_serve(
        self, runtime, now: float, service: float, wait: float
    ) -> None:
        """A subtask started serving a tuple (service time is known)."""
        op = runtime.op_id
        registry = self.registry
        registry.observe("service_s", op, service)
        registry.observe("wait_s", op, wait)
        if self.serve_spans:
            self.tracer.complete(
                op,
                "serve",
                now,
                service,
                parent_id=self._op_spans[runtime.gid],
                pid=runtime.node_id,
                tid=runtime.gid,
            )

    def on_done(self, runtime, now: float, tup, outputs: list) -> None:
        """A tuple finished processing and produced ``outputs``."""
        gid = runtime.gid
        self.tuples_out[gid] += len(outputs)
        lag = now - tup.event_time
        if lag > 0:
            op = runtime.op_id
            self.registry.observe("watermark_lag_s", op, lag)
            if lag > self._lag_max[op]:
                self._lag_max[op] = lag
        if outputs and self._is_join[gid] and self.tracer is not None:
            self.tracer.instant(
                "join.match",
                "window",
                now,
                parent_id=self._op_spans[gid],
                pid=runtime.node_id,
                tid=gid,
                batch=len(outputs),
            )

    def on_window_fire(self, runtime, now: float, count: int) -> None:
        """A window operator's timer emitted ``count`` results."""
        self.tuples_out[runtime.gid] += count
        self.registry.inc("window_fires", runtime.op_id)
        if self.tracer is not None:
            self.tracer.instant(
                "window.fire",
                "window",
                now,
                parent_id=self._op_spans[runtime.gid],
                pid=runtime.node_id,
                tid=runtime.gid,
                results=count,
            )

    def on_flush(self, runtime, now: float, count: int) -> None:
        """End-of-stream flush forced ``count`` buffered results out."""
        self.tuples_out[runtime.gid] += count
        self.registry.inc("flush_emits", runtime.op_id, count)

    def on_stall(self, runtime, now: float, duration: float) -> None:
        """An injected stall froze a subtask for ``duration`` seconds."""
        self.stall_s[runtime.gid] += duration
        self.registry.inc("stall_s", runtime.op_id, duration)
        if self.tracer is not None:
            self.tracer.complete(
                "stall",
                "stall",
                now,
                duration,
                parent_id=self._op_spans[runtime.gid],
                pid=runtime.node_id,
                tid=runtime.gid,
            )

    def on_rescale(
        self,
        engine,
        now: float,
        op_id: str,
        old_gids: list[int],
        new_gids: list[int],
        migrated_keys: int,
        pause_s: float,
    ) -> None:
        """A rescale swapped ``op_id``'s subtask generation.

        Grows the per-gid arrays **in place** (``extend``, never
        reassignment): a wrapping :class:`RaceDetector` shares the same
        list objects, so both views stay coherent. Retired gids keep
        their counters — the summary's totals span the whole run.
        """
        from repro.sps.logical_kinds import OperatorKind

        runtimes = engine._runtimes
        grow = len(runtimes) - len(self.tuples_in)
        if grow > 0:
            self.tuples_in.extend([0] * grow)
            self.tuples_out.extend([0] * grow)
            self.shuffle_bytes.extend([0.0] * grow)
            self.stall_s.extend([0.0] * grow)
            self._op_spans.extend([0] * grow)
            is_join = (
                engine.logical.operator(op_id).kind
                is OperatorKind.WINDOW_JOIN
            )
            self._is_join.extend([is_join] * grow)
        gids = self._ops.setdefault(op_id, [])
        for gid in new_gids:
            if gid not in gids:
                gids.append(gid)
        registry = self.registry
        registry.inc("rescales", op_id)
        registry.inc("migrated_keys", op_id, migrated_keys)
        registry.set_gauge("parallelism", op_id, len(new_gids))
        tracer = self.tracer
        if tracer is not None:
            for gid in old_gids:
                if gid not in self._closed_spans:
                    tracer.end(self._op_spans[gid], now)
                    self._closed_spans.add(gid)
            for gid in new_gids:
                runtime = runtimes[gid]
                self._op_spans[gid] = tracer.begin(
                    f"{runtime.op_id}[{runtime.index}]@e{runtime.epoch}",
                    "operator",
                    now,
                    parent_id=self._run_span,
                    pid=runtime.node_id,
                    tid=gid,
                )
            tracer.complete(
                f"rescale {op_id} "
                f"{len(old_gids)}->{len(new_gids)}",
                "rescale",
                now,
                pause_s,
                parent_id=self._run_span,
                keys=migrated_keys,
            )

    def on_checkpoint(self, engine, record) -> None:
        """An aligned checkpoint completed (DESIGN.md §13)."""
        self.checkpoints += 1
        self.checkpoint_duration_s += record.duration_s
        self.checkpoint_state_bytes = record.state_bytes
        registry = self.registry
        registry.inc("checkpoints", "engine")
        registry.observe("checkpoint_duration_s", "engine", record.duration_s)
        if self.tracer is not None:
            self.tracer.complete(
                f"checkpoint #{record.ckpt_id}",
                "ft",
                record.triggered_at,
                record.duration_s,
                parent_id=self._run_span,
                state_items=record.state_items,
                state_bytes=record.state_bytes,
            )

    def on_recovery(
        self, engine, node_id: int, pause_s: float, replayed: int, ckpt_id
    ) -> None:
        """A node failure triggered checkpoint recovery."""
        self.recoveries += 1
        self.recovery_time_s += pause_s
        self.replayed_events += replayed
        registry = self.registry
        registry.inc("recoveries", "engine")
        registry.observe("recovery_time_s", "engine", pause_s)
        if self.tracer is not None:
            self.tracer.complete(
                f"recovery node={node_id} ckpt={ckpt_id}",
                "ft",
                engine._now,
                pause_s,
                parent_id=self._run_span,
                replayed=replayed,
            )

    def on_backpressure(self, runtime, now: float, engaged: bool) -> None:
        """A subtask engaged (True) or released (False) flow control."""
        name = "backpressure.engage" if engaged else "backpressure.release"
        self.registry.inc(name, runtime.op_id)
        if self.tracer is not None:
            self.tracer.instant(
                name,
                "flow",
                now,
                parent_id=self._op_spans[runtime.gid],
                pid=runtime.node_id,
                tid=runtime.gid,
            )

    # ------------------------------------------------------------ readers

    def op_ids(self) -> list[str]:
        """Operator ids in plan order of first subtask."""
        return list(self._ops)

    def process_names(self) -> dict[int, str]:
        """Chrome-export process labels: cluster nodes."""
        return {
            runtime.node_id: f"node {runtime.node_id}"
            for runtime in self._runtimes
        }

    def thread_names(self) -> dict[tuple[int, int], str]:
        """Chrome-export thread labels: subtasks."""
        return {
            (runtime.node_id, runtime.gid): (
                f"{runtime.op_id}[{runtime.index}]"
            )
            for runtime in self._runtimes
        }

    def summary(self) -> dict[str, Any]:
        """Per-operator totals plus run-wide aggregates.

        Plain floats/ints only, so the summary travels through
        ``RunMetrics.extras`` and the document store unchanged.
        """
        ops: dict[str, dict[str, Any]] = {}
        totals = {
            "tuples_in": 0,
            "tuples_out": 0,
            "busy_s": 0.0,
            "shuffle_bytes": 0.0,
            "stall_s": 0.0,
        }
        registry = self.registry
        for op, gids in self._ops.items():
            runtimes = [self._runtimes[gid] for gid in gids]
            entry: dict[str, Any] = {
                "subtasks": len(gids),
                "tuples_in": sum(self.tuples_in[gid] for gid in gids),
                "tuples_out": sum(self.tuples_out[gid] for gid in gids),
                "busy_s": sum(r.busy_time for r in runtimes),
                "shuffle_bytes": sum(self.shuffle_bytes[gid] for gid in gids),
                "stall_s": sum(self.stall_s[gid] for gid in gids),
                "queue_peak": max(r.queue_peak for r in runtimes),
            }
            service = registry.histogram("service_s", op)
            if service is not None:
                entry["service_mean_s"] = service.mean
                entry["service_p95_s"] = service.quantile(0.95)
            lag = registry.histogram("watermark_lag_s", op)
            if lag is not None:
                entry["watermark_lag_max_s"] = lag.maximum
            window = _window_counters(runtimes)
            if window:
                entry.update(window)
            ops[op] = entry
            totals["tuples_in"] += entry["tuples_in"]
            totals["tuples_out"] += entry["tuples_out"]
            totals["busy_s"] += entry["busy_s"]
            totals["shuffle_bytes"] += entry["shuffle_bytes"]
            totals["stall_s"] += entry["stall_s"]
        out: dict[str, Any] = {
            "sample_interval": self.sample_interval,
            "duration_s": self._end_time,
            "samples": len(registry.series),
            "ops": ops,
            "totals": totals,
        }
        if self.checkpoints or self.recoveries:
            out["ft"] = {
                "checkpoints": self.checkpoints,
                "checkpoint_duration_mean_s": (
                    self.checkpoint_duration_s / self.checkpoints
                    if self.checkpoints
                    else 0.0
                ),
                "state_bytes": self.checkpoint_state_bytes,
                "recoveries": self.recoveries,
                "recovery_time_s": self.recovery_time_s,
                "replayed_events": self.replayed_events,
            }
        return out


#: Window-operator counters surfaced per op when any subtask's logic
#: (or chained member) exposes them: fire/match totals plus the live
#: slice-state footprint of the slice-based window operators.
_WINDOW_COUNTERS = (
    "windows_fired",
    "matches_emitted",
    "late_dropped",
    "live_slices",
    "pending_windows",
)


def _window_counters(runtimes: list) -> dict[str, int]:
    """Sum window counters over subtask logics (incl. chained members)."""
    out: dict[str, int] = {}
    for runtime in runtimes:
        logic = runtime.logic
        members = getattr(logic, "logics", None) or (logic,)
        for member in members:
            for name in _WINDOW_COUNTERS:
                value = getattr(member, name, None)
                if value is not None:
                    out[name] = out.get(name, 0) + int(value)
    return out


def merge_summaries(summaries: list[dict[str, Any]]) -> dict[str, Any]:
    """Mean per-operator summary over repeated runs of one configuration.

    Numeric fields average across the repeats that report the operator;
    ``subtasks`` (structural, identical across repeats) passes through.
    """
    if not summaries:
        return {}
    merged_ops: dict[str, dict[str, Any]] = {}
    for summary in summaries:
        for op, entry in summary.get("ops", {}).items():
            bucket = merged_ops.setdefault(op, {"_n": 0})
            bucket["_n"] += 1
            for key, value in entry.items():
                if key == "subtasks":
                    bucket[key] = value
                else:
                    bucket[key] = bucket.get(key, 0.0) + float(value)
    ops: dict[str, dict[str, Any]] = {}
    for op, bucket in merged_ops.items():
        n = bucket.pop("_n")
        ops[op] = {
            key: (value / n if key != "subtasks" else value)
            for key, value in bucket.items()
        }
    return {
        "repeats": len(summaries),
        "sample_interval": summaries[0].get("sample_interval"),
        "ops": ops,
    }
