"""Exporters for trace and metrics data.

Two on-disk formats:

- ``trace.json`` — Chrome ``trace_event`` JSON (the *JSON Object
  Format*: a top-level object with a ``traceEvents`` array), which
  loads directly in ``chrome://tracing`` and Perfetto. Simulated
  seconds become microseconds (the format's unit); cluster nodes map
  to processes and subtasks to threads, with metadata events naming
  both.
- ``metrics.jsonl`` — one JSON object per line: a ``meta`` header, one
  ``sample`` row per operator per sampling tick (the time series), and
  one ``summary`` row per operator with final totals.

Both writers sort keys and emit no wall-clock state, so the files are
byte-stable across runs of the same seeded simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import SpanTracer, TraceEvent

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_jsonl",
    "validate_chrome_trace",
]

_SECONDS_TO_US = 1e6


def _chrome_event(event: TraceEvent) -> dict[str, Any]:
    row: dict[str, Any] = {
        "ph": event.ph,
        "name": event.name,
        "cat": event.cat,
        "ts": event.ts * _SECONDS_TO_US,
        "pid": event.pid,
        "tid": event.tid,
    }
    if event.dur is not None:
        row["dur"] = event.dur * _SECONDS_TO_US
    if event.ph == "i":
        row["s"] = "t"  # instant scope: thread
    args = dict(event.args)
    args["span_id"] = event.span_id
    if event.parent_id is not None:
        args["parent_id"] = event.parent_id
    row["args"] = args
    return row


def to_chrome_trace(
    tracer: SpanTracer,
    process_names: dict[int, str] | None = None,
    thread_names: dict[tuple[int, int], str] | None = None,
) -> dict[str, Any]:
    """Convert a tracer's events to a Chrome trace_event document."""
    events: list[dict[str, Any]] = []
    for pid, name in sorted((process_names or {}).items()):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for (pid, tid), name in sorted((thread_names or {}).items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    events.extend(_chrome_event(event) for event in tracer.events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracer: SpanTracer,
    path: str | Path,
    process_names: dict[int, str] | None = None,
    thread_names: dict[tuple[int, int], str] | None = None,
) -> Path:
    """Write ``trace.json``; returns the path written."""
    path = Path(path)
    document = to_chrome_trace(tracer, process_names, thread_names)
    path.write_text(json.dumps(document, sort_keys=True) + "\n")
    return path


def write_events_jsonl(tracer: SpanTracer, path: str | Path) -> Path:
    """Write the raw span events, one JSON object per line."""
    path = Path(path)
    lines = [
        json.dumps(event.to_dict(), sort_keys=True)
        for event in tracer.events
    ]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def write_metrics_jsonl(
    registry: MetricsRegistry,
    path: str | Path,
    meta: dict[str, Any] | None = None,
    summaries: dict[str, dict[str, Any]] | None = None,
) -> Path:
    """Write the metrics time series and final summaries as JSONL.

    Line kinds: one ``meta`` header, ``sample`` rows in sampling order,
    ``summary`` rows (one per operator, sorted by operator id), and a
    final ``registry`` row with the counter/gauge/histogram snapshot.
    """
    path = Path(path)
    lines = [json.dumps({"kind": "meta", **(meta or {})}, sort_keys=True)]
    for row in registry.series:
        lines.append(json.dumps({"kind": "sample", **row}, sort_keys=True))
    for op, summary in sorted((summaries or {}).items()):
        lines.append(
            json.dumps(
                {"kind": "summary", "op": op, **summary}, sort_keys=True
            )
        )
    lines.append(
        json.dumps(
            {"kind": "registry", **registry.summary()}, sort_keys=True
        )
    )
    path.write_text("\n".join(lines) + "\n")
    return path


def validate_chrome_trace(document: Any) -> list[str]:
    """Structural problems of a Chrome trace document (empty = valid).

    Checks the JSON Object Format contract that ``chrome://tracing``
    relies on: a ``traceEvents`` list whose entries carry ``ph`` and
    ``name``, with numeric ``ts`` on every non-metadata event.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["top level must be a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' list"]
    if not events:
        problems.append("'traceEvents' is empty")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        if "ph" not in event or "name" not in event:
            problems.append(f"event {index} lacks 'ph'/'name'")
            continue
        if event["ph"] != "M" and not isinstance(
            event.get("ts"), (int, float)
        ):
            problems.append(f"event {index} lacks a numeric 'ts'")
    return problems
