"""Learned cost models and the ML Manager (paper Section 4.3).

Implements, from scratch on NumPy, the four model families the paper
integrates and compares: Linear Regression, Multi-Layer Perceptron, Random
Forest, and a Graph Neural Network that consumes the PQP DAG directly.
Training uses uniform early stopping on validation loss; evaluation reports
q-error (accuracy) plus training overhead (queries and time) — the paper's
"fair comparison" protocol.
"""

from repro.ml.dataset import Dataset, QueryRecord, encode_query
from repro.ml.manager import MLManager, ModelReport
from repro.ml.models import (
    CostModel,
    GNNCostModel,
    LinearRegressionModel,
    MLPCostModel,
    RandomForestModel,
)
from repro.ml.qerror import q_error, summarize_q_errors
from repro.ml.training import EarlyStopping, TrainingResult

__all__ = [
    "q_error",
    "summarize_q_errors",
    "QueryRecord",
    "Dataset",
    "encode_query",
    "CostModel",
    "LinearRegressionModel",
    "MLPCostModel",
    "RandomForestModel",
    "GNNCostModel",
    "EarlyStopping",
    "TrainingResult",
    "MLManager",
    "ModelReport",
]
