"""Training utilities shared by all cost models.

The paper applies *uniform* early stopping ("halting training if the
validation loss did not improve for N consecutive epochs... applied across
all models to maintain consistency"); :class:`EarlyStopping` implements
exactly that, and :class:`TrainingResult` carries the training-efficiency
metrics (time, epochs, parameters) the ML Manager reports alongside
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError

__all__ = ["EarlyStopping", "TrainingResult", "Adam", "Standardizer"]


@dataclass
class TrainingResult:
    """What one model training run produced and cost."""

    model_name: str
    train_time_s: float
    epochs: int
    num_parameters: int
    train_samples: int
    best_val_loss: float
    val_losses: list[float] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-dict form for reports and storage."""
        return {
            "model": self.model_name,
            "train_time_s": self.train_time_s,
            "epochs": self.epochs,
            "num_parameters": self.num_parameters,
            "train_samples": self.train_samples,
            "best_val_loss": self.best_val_loss,
        }


class EarlyStopping:
    """Stop when validation loss hasn't improved for ``patience`` epochs."""

    def __init__(self, patience: int = 10, min_delta: float = 1e-5) -> None:
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best_loss = float("inf")
        self.best_epoch = -1
        self._stale = 0
        self.should_snapshot = False

    def step(self, val_loss: float, epoch: int) -> bool:
        """Record an epoch's validation loss; True means stop now.

        Sets :attr:`should_snapshot` when this epoch is the new best, so
        callers know to store a copy of the parameters.
        """
        if val_loss < self.best_loss - self.min_delta:
            self.best_loss = val_loss
            self.best_epoch = epoch
            self._stale = 0
            self.should_snapshot = True
            return False
        self.should_snapshot = False
        self._stale += 1
        return self._stale >= self.patience


class Adam:
    """The Adam optimiser over a dict of named parameter arrays."""

    def __init__(
        self,
        params: dict[str, np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = {k: np.zeros_like(v) for k, v in params.items()}
        self._v = {k: np.zeros_like(v) for k, v in params.items()}
        self._t = 0

    def step(self, grads: dict[str, np.ndarray]) -> None:
        """Apply one update from gradients keyed like the parameters."""
        self._t += 1
        for key, grad in grads.items():
            if key not in self.params:
                raise ConfigurationError(f"unknown parameter {key!r}")
            self._m[key] = self.beta1 * self._m[key] + (1 - self.beta1) * grad
            self._v[key] = self.beta2 * self._v[key] + (1 - self.beta2) * (
                grad * grad
            )
            m_hat = self._m[key] / (1 - self.beta1**self._t)
            v_hat = self._v[key] / (1 - self.beta2**self._t)
            self.params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class Standardizer:
    """Column-wise (x - mean) / std, fit on the training split only."""

    def __init__(self) -> None:
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "Standardizer":
        """Learn mean/std; constant columns get std 1 to stay finite."""
        self.mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std < 1e-9] = 1.0
        self.std = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned standardisation."""
        if self.mean is None or self.std is None:
            raise ConfigurationError("standardizer not fitted")
        return (x - self.mean) / self.std
