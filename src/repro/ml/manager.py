"""The ML Manager (paper Section 2, C3/S3).

Trains registered cost models on the *same* corpus with the *same*
train/validation/test split and early-stopping protocol, and reports both
accuracy (q-error) and training overhead (queries and time) — the "fair
comparison between ML models" the paper's controller provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import TrainingError
from repro.ml.dataset import Dataset
from repro.ml.models import CostModel, default_models
from repro.ml.qerror import regression_metrics, summarize_q_errors
from repro.ml.training import TrainingResult

__all__ = ["ModelReport", "MLManager"]


@dataclass
class ModelReport:
    """Accuracy and training-efficiency results for one model."""

    model_name: str
    training: TrainingResult
    q_error: dict[str, float]
    per_structure: dict[str, dict[str, float]] = field(default_factory=dict)
    regression: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict form for storage and rendering."""
        return {
            "model": self.model_name,
            "training": self.training.to_dict(),
            "q_error": dict(self.q_error),
            "per_structure": {
                k: dict(v) for k, v in self.per_structure.items()
            },
            "regression": dict(self.regression),
        }


class MLManager:
    """Trains and fairly compares learned cost models."""

    def __init__(
        self, models: list[CostModel] | None = None, seed: int = 0
    ) -> None:
        self.models = models if models is not None else default_models()
        if not self.models:
            raise TrainingError("MLManager needs at least one model")
        names = [model.name for model in self.models]
        if len(set(names)) != len(names):
            raise TrainingError(f"duplicate model names: {names}")
        self.seed = seed

    def model(self, name: str) -> CostModel:
        """Look up a registered model by name."""
        for model in self.models:
            if model.name == name:
                return model
        known = ", ".join(m.name for m in self.models)
        raise TrainingError(f"unknown model {name!r}; registered: {known}")

    def train_and_evaluate(
        self,
        dataset: Dataset,
        test: Dataset | None = None,
        val_fraction: float = 0.15,
        test_fraction: float = 0.15,
    ) -> dict[str, ModelReport]:
        """Train every model on one shared split; evaluate on the test set.

        When ``test`` is provided (e.g. unseen query structures for the
        generalisation experiment), ``dataset`` is split into train/val
        only and the provided test set is used for all models.
        """
        rng = np.random.default_rng(self.seed)
        if test is None:
            train, val, test = dataset.split(
                rng, val_fraction=val_fraction, test_fraction=test_fraction
            )
        else:
            train, val, _ = dataset.split(
                rng, val_fraction=val_fraction, test_fraction=0.02
            )
        reports: dict[str, ModelReport] = {}
        for model in self.models:
            result = model.fit(train, val, seed=self.seed)
            predictions = model.predict(test)
            report = ModelReport(
                model_name=model.name,
                training=result,
                q_error=model.evaluate(test),
                per_structure=self._per_structure(model, test),
                regression=regression_metrics(
                    test.latencies(), predictions
                ),
            )
            reports[model.name] = report
        return reports

    @staticmethod
    def _per_structure(
        model: CostModel, test: Dataset
    ) -> dict[str, dict[str, float]]:
        by_structure: dict[str, list[int]] = {}
        for i, record in enumerate(test.records):
            by_structure.setdefault(record.structure or "?", []).append(i)
        results: dict[str, dict[str, float]] = {}
        for structure, indices in sorted(by_structure.items()):
            subset = test.subset(indices)
            predictions = model.predict(subset)
            results[structure] = summarize_q_errors(
                subset.latencies(), predictions
            )
        return results
