"""The q-error accuracy metric.

The paper (after [39], "How good are query optimizers, really?"): for a
true cost ``c`` and prediction ``c'``, ``q(c, c') = max(c/c', c'/c)``; a
q-error of 1 is a perfect prediction. We report median and tail percentiles
over a test set, as is standard for learned cost models.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError

__all__ = [
    "q_error",
    "q_errors",
    "summarize_q_errors",
    "regression_metrics",
]


def q_error(true_cost: float, predicted_cost: float) -> float:
    """q(c, c') = max(c / c', c' / c); both costs must be positive."""
    if true_cost <= 0 or predicted_cost <= 0:
        raise ConfigurationError(
            f"q-error needs positive costs, got c={true_cost}, "
            f"c'={predicted_cost}"
        )
    ratio = true_cost / predicted_cost
    return max(ratio, 1.0 / ratio)


def q_errors(
    true_costs: np.ndarray, predicted_costs: np.ndarray
) -> np.ndarray:
    """Vectorised q-errors; predictions are floored to a tiny positive."""
    true_arr = np.asarray(true_costs, dtype=float)
    pred_arr = np.maximum(np.asarray(predicted_costs, dtype=float), 1e-9)
    if true_arr.shape != pred_arr.shape:
        raise ConfigurationError(
            f"shape mismatch: {true_arr.shape} vs {pred_arr.shape}"
        )
    if (true_arr <= 0).any():
        raise ConfigurationError("true costs must be positive")
    ratio = true_arr / pred_arr
    return np.maximum(ratio, 1.0 / ratio)


def summarize_q_errors(
    true_costs: np.ndarray, predicted_costs: np.ndarray
) -> dict[str, float]:
    """Median / p90 / p95 / max q-error summary of a test set."""
    errors = q_errors(true_costs, predicted_costs)
    return {
        "median": float(np.median(errors)),
        "mean": float(errors.mean()),
        "p90": float(np.percentile(errors, 90)),
        "p95": float(np.percentile(errors, 95)),
        "max": float(errors.max()),
        "count": int(errors.size),
    }


def regression_metrics(
    true_costs: np.ndarray, predicted_costs: np.ndarray
) -> dict[str, float]:
    """Complementary regression metrics: MAPE, RMSE (log space), R^2.

    q-error is the headline metric (scale-free, tail-sensitive); these
    standard metrics round out the model reports.
    """
    true_arr = np.asarray(true_costs, dtype=float)
    pred_arr = np.maximum(np.asarray(predicted_costs, dtype=float), 1e-9)
    if true_arr.shape != pred_arr.shape:
        raise ConfigurationError(
            f"shape mismatch: {true_arr.shape} vs {pred_arr.shape}"
        )
    if (true_arr <= 0).any():
        raise ConfigurationError("true costs must be positive")
    mape = float(
        np.mean(np.abs(pred_arr - true_arr) / true_arr)
    ) * 100.0
    log_true = np.log(true_arr)
    log_pred = np.log(pred_arr)
    rmse_log = float(np.sqrt(np.mean((log_pred - log_true) ** 2)))
    variance = float(np.var(log_true))
    if variance < 1e-12:
        r2 = 1.0 if rmse_log < 1e-9 else 0.0
    else:
        r2 = 1.0 - float(np.mean((log_pred - log_true) ** 2)) / variance
    return {"mape_pct": mape, "rmse_log": rmse_log, "r2_log": r2}
