"""Feature encodings of parallel query plans.

Two encodings, matching the paper's model families:

- a **flat vector** (plan-level aggregates) for Linear Regression, MLP and
  Random Forest — the conventional representation;
- a **graph encoding** (per-operator feature matrix + DAG adjacency) for the
  GNN, which "encodes PQP as a DAG, allowing the model to treat different
  operators within PQP as nodes, and the relationships between them as
  edges" — the representational advantage behind observation O8.

Both draw on the same per-operator features, so the comparison between
model families is about the architecture, not the information available.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.cluster import Cluster
from repro.sps.logical import LogicalOperator, LogicalPlan, OperatorKind
from repro.sps.partitioning import ForwardPartitioner

__all__ = [
    "OPERATOR_FEATURE_DIM",
    "operator_features",
    "flat_features",
    "graph_encoding",
    "FLAT_FEATURE_NAMES",
]

_KINDS = list(OperatorKind)
_KIND_INDEX = {kind: i for i, kind in enumerate(_KINDS)}

#: Per-operator feature vector length (one-hot kind + numeric features).
OPERATOR_FEATURE_DIM = len(_KINDS) + 10


def operator_features(op: LogicalOperator) -> np.ndarray:
    """The per-operator feature vector shared by both encodings."""
    features = np.zeros(OPERATOR_FEATURE_DIM)
    features[_KIND_INDEX[op.kind]] = 1.0
    base = len(_KINDS)
    features[base + 0] = math.log2(max(op.parallelism, 1))
    features[base + 1] = min(op.selectivity, 8.0)
    rate = float(op.metadata.get("event_rate", 0.0))
    features[base + 2] = math.log10(rate + 1.0)
    if op.window is not None:
        features[base + 3] = 1.0
        features[base + 4] = (
            op.window.feature_length
            if op.window.is_time_based
            else math.log10(op.window.feature_length + 1.0)
        )
        features[base + 5] = op.window.feature_slide_ratio
        features[base + 6] = 1.0 if op.window.is_time_based else 0.0
    features[base + 7] = math.log10(op.cost.base_cpu_s * 1e6 + 1.0)
    features[base + 8] = op.cost.coord_kappa * 100.0
    features[base + 9] = 1.0 if op.cost.is_udo else 0.0
    return features


def _cluster_features(cluster: Cluster) -> np.ndarray:
    speeds = [node.speed_factor for node in cluster.nodes]
    return np.array(
        [
            math.log2(cluster.total_cores),
            float(len(cluster.nodes)),
            float(np.mean(speeds)),
            float(np.std(speeds)),
            1.0 if cluster.is_heterogeneous else 0.0,
        ]
    )


#: Names of the flat feature vector entries, for model introspection.
FLAT_FEATURE_NAMES: list[str] = (
    [f"count_{kind.value}" for kind in _KINDS]
    + [
        "num_operators",
        "num_edges",
        "num_shuffle_edges",
        "dag_depth",
        "log_total_rate",
        "log_selectivity_product",
        "sum_log_parallelism",
        "max_log_parallelism",
        "min_log_parallelism",
        "mean_window_length",
        "max_window_length",
        "sum_log_cost",
        "max_log_cost",
        "sum_coord_kappa",
        "num_udos",
        "total_subtasks_log",
    ]
    + [
        "cluster_log_cores",
        "cluster_nodes",
        "cluster_mean_speed",
        "cluster_speed_std",
        "cluster_heterogeneous",
    ]
)


def _dag_depth(plan: LogicalPlan) -> int:
    depth: dict[str, int] = {}
    for op_id in plan.topological_order():
        upstream = plan.upstream(op_id)
        depth[op_id] = 1 + max(
            (depth[u] for u in upstream), default=0
        )
    return max(depth.values())


def flat_features(plan: LogicalPlan, cluster: Cluster) -> np.ndarray:
    """Plan-level aggregate vector for the flat models."""
    ops = list(plan.operators.values())
    counts = np.zeros(len(_KINDS))
    for op in ops:
        counts[_KIND_INDEX[op.kind]] += 1.0
    total_rate = sum(
        float(op.metadata.get("event_rate", 0.0))
        for op in ops
        if op.kind is OperatorKind.SOURCE
    )
    selectivity_product = 1.0
    for op in ops:
        selectivity_product *= max(min(op.selectivity, 8.0), 1e-4)
    parallelisms = [math.log2(max(op.parallelism, 1)) for op in ops]
    window_lengths = [
        op.window.feature_length
        for op in ops
        if op.window is not None and op.window.is_time_based
    ] or [0.0]
    costs = [math.log10(op.cost.base_cpu_s * 1e6 + 1.0) for op in ops]
    shuffle_edges = sum(
        1
        for edge in plan.edges
        if not isinstance(edge.partitioner, ForwardPartitioner)
    )
    plan_features = np.array(
        [
            float(len(ops)),
            float(len(plan.edges)),
            float(shuffle_edges),
            float(_dag_depth(plan)),
            math.log10(total_rate + 1.0),
            math.log10(selectivity_product + 1e-6),
            float(np.sum(parallelisms)),
            float(np.max(parallelisms)),
            float(np.min(parallelisms)),
            float(np.mean(window_lengths)),
            float(np.max(window_lengths)),
            float(np.sum(costs)),
            float(np.max(costs)),
            float(sum(op.cost.coord_kappa for op in ops)) * 100.0,
            float(sum(1 for op in ops if op.cost.is_udo)),
            math.log2(max(plan.total_subtasks(), 1)),
        ]
    )
    return np.concatenate([counts, plan_features, _cluster_features(cluster)])


def graph_encoding(
    plan: LogicalPlan, cluster: Cluster
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(X, A_in, A_out, globals) for the GNN.

    ``X`` is the [n, d] node-feature matrix in topological order; ``A_in``
    and ``A_out`` are row-normalised adjacency matrices for mean
    aggregation over in- and out-neighbours; ``globals`` carries the
    cluster features appended at readout.
    """
    order = plan.topological_order()
    index = {op_id: i for i, op_id in enumerate(order)}
    n = len(order)
    features = np.zeros((n, OPERATOR_FEATURE_DIM))
    for op_id, i in index.items():
        features[i] = operator_features(plan.operator(op_id))
    a_in = np.zeros((n, n))
    a_out = np.zeros((n, n))
    for edge in plan.edges:
        a_in[index[edge.dst], index[edge.src]] = 1.0
        a_out[index[edge.src], index[edge.dst]] = 1.0
    for matrix in (a_in, a_out):
        row_sums = matrix.sum(axis=1, keepdims=True)
        np.divide(matrix, row_sums, out=matrix, where=row_sums > 0)
    return features, a_in, a_out, _cluster_features(cluster)
