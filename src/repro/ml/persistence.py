"""Persistence of trained cost models.

The paper's workflow trains models once on collected corpora and reuses
them for inference on new PQPs; these helpers serialise each model's
learned state into the document store (alongside the corpora and run
records) and restore it into a fresh instance.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import TrainingError
from repro.ml.models import (
    CostModel,
    GNNCostModel,
    LinearRegressionModel,
    MLPCostModel,
    RandomForestModel,
)
from repro.ml.models.forest import _Node, _RegressionTree
from repro.ml.training import Standardizer

__all__ = ["save_model", "load_model", "model_state", "restore_model"]


def _scaler_state(scaler: Standardizer) -> dict:
    if scaler.mean is None:
        raise TrainingError("model has no fitted scaler to persist")
    return {"mean": scaler.mean.tolist(), "std": scaler.std.tolist()}


def _restore_scaler(state: dict) -> Standardizer:
    scaler = Standardizer()
    scaler.mean = np.asarray(state["mean"], dtype=float)
    scaler.std = np.asarray(state["std"], dtype=float)
    return scaler


def _tree_state(node: _Node) -> dict:
    if node.feature is None:
        return {"value": node.value}
    return {
        "value": node.value,
        "feature": node.feature,
        "threshold": node.threshold,
        "left": _tree_state(node.left),
        "right": _tree_state(node.right),
    }


def _restore_tree(state: dict) -> _Node:
    node = _Node(value=float(state["value"]))
    if "feature" in state:
        node.feature = int(state["feature"])
        node.threshold = float(state["threshold"])
        node.left = _restore_tree(state["left"])
        node.right = _restore_tree(state["right"])
    return node


def model_state(model: CostModel) -> dict:
    """The learned state of a fitted model as a JSON-serialisable dict."""
    if isinstance(model, LinearRegressionModel):
        if model.weights is None:
            raise TrainingError("LR model is not fitted")
        return {
            "model": model.name,
            "weights": model.weights.tolist(),
            "bias": model.bias,
            "scaler": _scaler_state(model.scaler),
        }
    if isinstance(model, MLPCostModel):
        if model.params is None:
            raise TrainingError("MLP model is not fitted")
        return {
            "model": model.name,
            "hidden": list(model.hidden),
            "params": {k: v.tolist() for k, v in model.params.items()},
            "scaler": _scaler_state(model.scaler),
        }
    if isinstance(model, RandomForestModel):
        if model.trees is None:
            raise TrainingError("RF model is not fitted")
        return {
            "model": model.name,
            "trees": [
                {
                    "root": _tree_state(tree.root),
                    "node_count": tree.node_count,
                }
                for tree in model.trees
            ],
        }
    if isinstance(model, GNNCostModel):
        if model.params is None:
            raise TrainingError("GNN model is not fitted")
        return {
            "model": model.name,
            "hidden": model.hidden,
            "layers": model.layers,
            "head_hidden": model.head_hidden,
            "global_dim": model.global_dim,
            "params": {k: v.tolist() for k, v in model.params.items()},
        }
    raise TrainingError(
        f"don't know how to persist model type {type(model).__name__}"
    )


def restore_model(state: dict) -> CostModel:
    """Rebuild a fitted model from :func:`model_state` output."""
    name = state.get("model")
    if name == "LR":
        model = LinearRegressionModel()
        model.weights = np.asarray(state["weights"], dtype=float)
        model.bias = float(state["bias"])
        model.scaler = _restore_scaler(state["scaler"])
        return model
    if name == "MLP":
        model = MLPCostModel(hidden=tuple(state["hidden"]))
        model.params = {
            k: np.asarray(v, dtype=float)
            for k, v in state["params"].items()
        }
        model.scaler = _restore_scaler(state["scaler"])
        return model
    if name == "RF":
        model = RandomForestModel()
        trees = []
        for tree_state in state["trees"]:
            tree = _RegressionTree(
                max_depth=model.max_depth,
                min_samples_leaf=model.min_samples_leaf,
                max_features=1,
                rng=np.random.default_rng(0),
            )
            tree.root = _restore_tree(tree_state["root"])
            tree.node_count = int(tree_state["node_count"])
            trees.append(tree)
        model.trees = trees
        return model
    if name == "GNN":
        model = GNNCostModel(
            hidden=int(state["hidden"]),
            layers=int(state["layers"]),
            head_hidden=int(state["head_hidden"]),
            global_dim=int(state["global_dim"]),
        )
        model.params = {
            k: np.asarray(v, dtype=float)
            for k, v in state["params"].items()
        }
        return model
    raise TrainingError(f"unknown persisted model name {name!r}")


def save_model(model: CostModel, collection, tag: str = "") -> int:
    """Persist a fitted model into a document-store collection."""
    document = model_state(model)
    document["tag"] = tag
    return collection.insert_one(document)


def load_model(
    collection, name: str, tag: str | None = None
) -> CostModel:
    """Load the most recently saved model with the given name (and tag)."""
    query: dict = {"model": name}
    if tag is not None:
        query["tag"] = tag
    documents = collection.find(query, sort_by="_id", descending=True)
    if not documents:
        raise TrainingError(
            f"no persisted model {name!r}"
            + (f" with tag {tag!r}" if tag else "")
        )
    return restore_model(documents[0])
