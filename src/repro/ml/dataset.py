"""Labelled query datasets for the cost models.

A :class:`QueryRecord` is one (PQP, cluster) pair with its measured latency
label, carrying both encodings. Records round-trip through the document
store so corpora persist exactly as PDSP-Bench persists runs in MongoDB.
Targets are modelled in log space (latencies span orders of magnitude);
:meth:`Dataset.split` provides the train/validation/test partition used by
every model, keeping the comparison fair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cluster.cluster import Cluster
from repro.common.errors import TrainingError
from repro.ml.encoding import flat_features, graph_encoding
from repro.sps.logical import LogicalPlan

__all__ = [
    "QueryRecord",
    "Dataset",
    "encode_query",
    "OBS_FEATURE_KEYS",
    "observability_features",
]

#: Run-wide observability totals used as auxiliary model features, in
#: fixed order so feature vectors align across records.
OBS_FEATURE_KEYS = (
    "tuples_in",
    "tuples_out",
    "busy_s",
    "shuffle_bytes",
    "stall_s",
)


def observability_features(observability: dict | None) -> np.ndarray:
    """Fixed-order feature vector from an observability summary.

    Sums each :data:`OBS_FEATURE_KEYS` entry over the summary's
    operators; zeros when the record carries no summary, so observed
    and unobserved records can share a corpus.
    """
    values = np.zeros(len(OBS_FEATURE_KEYS))
    if not observability:
        return values
    ops = observability.get("ops", {})
    for index, key in enumerate(OBS_FEATURE_KEYS):
        values[index] = sum(
            float(entry.get(key, 0.0)) for entry in ops.values()
        )
    return values


@dataclass
class QueryRecord:
    """One labelled training example."""

    flat: np.ndarray
    node_features: np.ndarray
    adj_in: np.ndarray
    adj_out: np.ndarray
    globals_vec: np.ndarray
    latency_s: float
    structure: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def log_latency(self) -> float:
        """The regression target."""
        return float(np.log(self.latency_s))

    def to_document(self) -> dict:
        """JSON-serialisable form for the document store."""
        return {
            "flat": self.flat.tolist(),
            "node_features": self.node_features.tolist(),
            "adj_in": self.adj_in.tolist(),
            "adj_out": self.adj_out.tolist(),
            "globals": self.globals_vec.tolist(),
            "latency_s": self.latency_s,
            "structure": self.structure,
            "meta": self.meta,
        }

    @classmethod
    def from_document(cls, document: dict) -> "QueryRecord":
        """Inverse of :meth:`to_document`."""
        return cls(
            flat=np.asarray(document["flat"], dtype=float),
            node_features=np.asarray(
                document["node_features"], dtype=float
            ),
            adj_in=np.asarray(document["adj_in"], dtype=float),
            adj_out=np.asarray(document["adj_out"], dtype=float),
            globals_vec=np.asarray(document["globals"], dtype=float),
            latency_s=float(document["latency_s"]),
            structure=document.get("structure", ""),
            meta=document.get("meta", {}),
        )


def encode_query(
    plan: LogicalPlan,
    cluster: Cluster,
    latency_s: float,
    structure: str = "",
    meta: dict | None = None,
    observability: dict | None = None,
) -> QueryRecord:
    """Encode one (plan, cluster, label) into a record.

    ``observability`` is the per-operator run summary persisted by the
    sweep drivers; it rides along in ``meta["observability"]`` so
    :func:`observability_features` can derive auxiliary features.
    """
    if latency_s <= 0:
        raise TrainingError(
            f"latency label must be positive, got {latency_s}"
        )
    node_features, adj_in, adj_out, globals_vec = graph_encoding(
        plan, cluster
    )
    record_meta = dict(meta or {})
    if observability:
        record_meta["observability"] = observability
    return QueryRecord(
        flat=flat_features(plan, cluster),
        node_features=node_features,
        adj_in=adj_in,
        adj_out=adj_out,
        globals_vec=globals_vec,
        latency_s=latency_s,
        structure=structure,
        meta=record_meta,
    )


class Dataset:
    """An ordered collection of query records with split helpers."""

    def __init__(self, records: list[QueryRecord]) -> None:
        if not records:
            raise TrainingError("dataset must contain at least one record")
        self.records = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def flat_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """(X, y) with y in log-latency space, for the flat models."""
        x = np.stack([record.flat for record in self.records])
        y = np.array([record.log_latency for record in self.records])
        return x, y

    def latencies(self) -> np.ndarray:
        """Raw latency labels in seconds."""
        return np.array([record.latency_s for record in self.records])

    def structures(self) -> list[str]:
        """Structure label of each record."""
        return [record.structure for record in self.records]

    def observability_matrix(self) -> np.ndarray:
        """(n, len(OBS_FEATURE_KEYS)) auxiliary-feature matrix.

        Rows for records without an observability summary are zero.
        """
        return np.stack(
            [
                observability_features(
                    record.meta.get("observability")
                )
                for record in self.records
            ]
        )

    def subset(self, indices) -> "Dataset":
        """Dataset restricted to the given indices."""
        return Dataset([self.records[i] for i in indices])

    def filter_structure(self, structures: set[str]) -> "Dataset":
        """Records whose structure label is in the given set."""
        kept = [r for r in self.records if r.structure in structures]
        if not kept:
            raise TrainingError(
                f"no records with structures {sorted(structures)}"
            )
        return Dataset(kept)

    def split(
        self,
        rng: np.random.Generator,
        val_fraction: float = 0.15,
        test_fraction: float = 0.15,
    ) -> tuple["Dataset", "Dataset", "Dataset"]:
        """Shuffled train/validation/test split."""
        if val_fraction + test_fraction >= 1.0:
            raise TrainingError("val + test fractions must be < 1")
        n = len(self.records)
        if n < 5:
            raise TrainingError(f"need >= 5 records to split, have {n}")
        order = rng.permutation(n)
        n_test = max(int(n * test_fraction), 1)
        n_val = max(int(n * val_fraction), 1)
        test_idx = order[:n_test]
        val_idx = order[n_test : n_test + n_val]
        train_idx = order[n_test + n_val :]
        return (
            self.subset(train_idx),
            self.subset(val_idx),
            self.subset(test_idx),
        )

    # --------------------------------------------------------- persistence

    def save(self, collection) -> None:
        """Persist all records into a document-store collection."""
        collection.insert_many(
            record.to_document() for record in self.records
        )

    @classmethod
    def load(cls, collection, query: dict | None = None) -> "Dataset":
        """Load records from a document-store collection."""
        documents = collection.find(query)
        if not documents:
            raise TrainingError(
                f"collection {collection.name!r} has no matching records"
            )
        return cls([QueryRecord.from_document(d) for d in documents])
