"""The four learned cost model families of the paper."""

from repro.ml.models.base import CostModel
from repro.ml.models.forest import RandomForestModel
from repro.ml.models.gnn import GNNCostModel
from repro.ml.models.linreg import LinearRegressionModel
from repro.ml.models.mlp import MLPCostModel

__all__ = [
    "CostModel",
    "LinearRegressionModel",
    "MLPCostModel",
    "RandomForestModel",
    "GNNCostModel",
]


def default_models() -> list[CostModel]:
    """Fresh instances of all four models with paper-default settings."""
    return [
        LinearRegressionModel(),
        MLPCostModel(),
        RandomForestModel(),
        GNNCostModel(),
    ]
