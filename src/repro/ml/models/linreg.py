"""Linear regression cost model (ridge, closed form).

The paper's baseline family [23]: "traditionally used for its simplicity
and effectiveness in prediction tasks". The ridge coefficient is selected
on the validation split from a small grid — the closest analogue of early
stopping for a closed-form model.
"""

from __future__ import annotations

import time

import numpy as np

from repro.ml.dataset import Dataset
from repro.ml.models.base import CostModel
from repro.ml.training import Standardizer, TrainingResult

__all__ = ["LinearRegressionModel"]


class LinearRegressionModel(CostModel):
    """Ridge regression on the flat feature vector."""

    name = "LR"

    def __init__(self, ridge_grid: tuple[float, ...] = (0.01, 0.1, 1.0, 10.0)):
        self.ridge_grid = ridge_grid
        self.weights: np.ndarray | None = None
        self.bias = 0.0
        self.scaler = Standardizer()

    @staticmethod
    def _solve(
        x: np.ndarray, y: np.ndarray, ridge: float
    ) -> tuple[np.ndarray, float]:
        n, d = x.shape
        x_aug = np.hstack([x, np.ones((n, 1))])
        penalty = ridge * np.eye(d + 1)
        penalty[-1, -1] = 0.0  # do not penalise the intercept
        theta = np.linalg.solve(
            x_aug.T @ x_aug + penalty, x_aug.T @ y
        )
        return theta[:-1], float(theta[-1])

    def fit(
        self, train: Dataset, val: Dataset, seed: int = 0
    ) -> TrainingResult:
        start = time.perf_counter()
        x_train, y_train = train.flat_matrix()
        x_val, y_val = val.flat_matrix()
        self.scaler.fit(x_train)
        x_train = self.scaler.transform(x_train)
        x_val = self.scaler.transform(x_val)
        best_loss = float("inf")
        val_losses = []
        for ridge in self.ridge_grid:
            weights, bias = self._solve(x_train, y_train, ridge)
            residual = x_val @ weights + bias - y_val
            loss = float(np.mean(residual**2))
            val_losses.append(loss)
            if loss < best_loss:
                best_loss = loss
                self.weights, self.bias = weights, bias
        return TrainingResult(
            model_name=self.name,
            train_time_s=time.perf_counter() - start,
            epochs=len(self.ridge_grid),
            num_parameters=self.num_parameters(),
            train_samples=len(train),
            best_val_loss=best_loss,
            val_losses=val_losses,
        )

    def predict(self, data: Dataset) -> np.ndarray:
        self._check_fitted("weights")
        x, _ = data.flat_matrix()
        log_pred = self.scaler.transform(x) @ self.weights + self.bias
        return np.exp(np.clip(log_pred, -20.0, 20.0))

    def num_parameters(self) -> int:
        if self.weights is None:
            return 0
        return int(self.weights.size) + 1
