"""Random forest cost model.

The paper's third family [16]: bagged CART regression trees with feature
subsampling. Trees are added one at a time and the ensemble's validation
loss drives the same early-stopping protocol the neural models use (here:
stop adding trees once validation stops improving).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.ml.dataset import Dataset
from repro.ml.models.base import CostModel
from repro.ml.training import EarlyStopping, TrainingResult

__all__ = ["RandomForestModel"]


@dataclass
class _Node:
    """One node of a regression tree (leaf iff ``feature`` is None)."""

    value: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None


class _RegressionTree:
    """A CART regression tree with random feature subsampling."""

    def __init__(
        self,
        max_depth: int,
        min_samples_leaf: int,
        max_features: int,
        rng: np.random.Generator,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.root: _Node | None = None
        self.node_count = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self.root = self._build(x, y, depth=0)

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        self.node_count += 1
        node = _Node(value=float(y.mean()))
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or np.allclose(y, y[0])
        ):
            return node
        split = self._best_split(x, y)
        if split is None:
            return node
        feature, threshold = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[int, float] | None:
        n, d = x.shape
        features = self.rng.choice(
            d, size=min(self.max_features, d), replace=False
        )
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        parent_sse = float(((y - y.mean()) ** 2).sum())
        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            xs = x[order, feature]
            ys = y[order]
            # Prefix sums let every split position be scored in O(1).
            csum = np.cumsum(ys)
            csum_sq = np.cumsum(ys**2)
            total = csum[-1]
            total_sq = csum_sq[-1]
            leaf = self.min_samples_leaf
            for i in range(leaf - 1, n - leaf):
                if xs[i] == xs[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                left_sse = csum_sq[i] - csum[i] ** 2 / n_left
                right_sum = total - csum[i]
                right_sse = (
                    total_sq - csum_sq[i] - right_sum**2 / n_right
                )
                gain = parent_sse - left_sse - right_sse
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float((xs[i] + xs[i + 1]) / 2.0))
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self.root
            while node.feature is not None:
                node = (
                    node.left
                    if row[node.feature] <= node.threshold
                    else node.right
                )
            out[i] = node.value
        return out


class RandomForestModel(CostModel):
    """Bagged regression trees on the flat feature vector."""

    name = "RF"

    def __init__(
        self,
        max_trees: int = 60,
        max_depth: int = 12,
        min_samples_leaf: int = 3,
        patience: int = 10,
    ) -> None:
        if max_trees < 1:
            raise ConfigurationError("max_trees must be >= 1")
        self.max_trees = max_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.patience = patience
        self.trees: list[_RegressionTree] | None = None

    def fit(
        self, train: Dataset, val: Dataset, seed: int = 0
    ) -> TrainingResult:
        start = time.perf_counter()
        rng = np.random.default_rng(seed)
        x_train, y_train = train.flat_matrix()
        x_val, y_val = val.flat_matrix()
        n, d = x_train.shape
        max_features = max(int(np.sqrt(d)), 1)
        trees: list[_RegressionTree] = []
        stopper = EarlyStopping(patience=self.patience)
        val_losses: list[float] = []
        val_sum = np.zeros(len(x_val))
        best_count = 0
        for index in range(self.max_trees):
            tree = _RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=rng,
            )
            sample = rng.integers(0, n, size=n)  # bootstrap
            tree.fit(x_train[sample], y_train[sample])
            trees.append(tree)
            val_sum += tree.predict(x_val)
            val_loss = float(
                np.mean((val_sum / len(trees) - y_val) ** 2)
            )
            val_losses.append(val_loss)
            stop = stopper.step(val_loss, index)
            if stopper.should_snapshot:
                best_count = len(trees)
            if stop:
                break
        self.trees = trees[: best_count or len(trees)]
        return TrainingResult(
            model_name=self.name,
            train_time_s=time.perf_counter() - start,
            epochs=len(trees),
            num_parameters=self.num_parameters(),
            train_samples=len(train),
            best_val_loss=stopper.best_loss,
            val_losses=val_losses,
        )

    def predict(self, data: Dataset) -> np.ndarray:
        self._check_fitted("trees")
        x, _ = data.flat_matrix()
        log_pred = np.mean([tree.predict(x) for tree in self.trees], axis=0)
        return np.exp(np.clip(log_pred, -20.0, 20.0))

    def num_parameters(self) -> int:
        """Split/leaf parameters across all trees (2 per node)."""
        if self.trees is None:
            return 0
        return int(sum(2 * tree.node_count for tree in self.trees))
