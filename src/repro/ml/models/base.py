"""Common interface of the learned cost models.

All models regress **log latency** and report predictions back in seconds;
all are trained with the same train/validation split and the same early
stopping protocol, which is the "fair comparison" requirement the paper's
ML Manager enforces.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import TrainingError
from repro.ml.dataset import Dataset
from repro.ml.qerror import summarize_q_errors
from repro.ml.training import TrainingResult

__all__ = ["CostModel"]


class CostModel:
    """Base class: fit on a dataset, predict latencies in seconds."""

    name = "abstract"

    def fit(
        self, train: Dataset, val: Dataset, seed: int = 0
    ) -> TrainingResult:
        """Train on ``train``, early-stopping against ``val``."""
        raise NotImplementedError

    def predict(self, data: Dataset) -> np.ndarray:
        """Predicted latencies (seconds) for each record."""
        raise NotImplementedError

    def num_parameters(self) -> int:
        """Number of learned parameters (model-capacity metric)."""
        raise NotImplementedError

    def evaluate(self, data: Dataset) -> dict[str, float]:
        """Q-error summary of this model on a dataset."""
        predictions = self.predict(data)
        return summarize_q_errors(data.latencies(), predictions)

    def _check_fitted(self, attribute: str) -> None:
        if getattr(self, attribute, None) is None:
            raise TrainingError(f"{self.name}: fit() must be called first")
