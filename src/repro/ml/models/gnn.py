"""Graph neural network cost model.

The paper's fourth family [62, 2, 26]: "encodes PQP as a DAG within GNN,
allowing the model to treat different operators within PQP as nodes, and
the relationships between them as edges". Observation O8 attributes the
GNN's consistently lowest q-error to exactly this structure awareness.

Architecture (NumPy, manual backprop):

- L message-passing layers; each node combines its own state with the mean
  of its in-neighbours and out-neighbours:
  ``H' = relu(H Ws + A_in H Wi + A_out H Wo + b)``
- readout: ``[mean-pool(H_L) | max-pool(H_L) | cluster globals]``
- a ReLU head regressing log latency.
"""

from __future__ import annotations

import time

import numpy as np

from repro.common.errors import ConfigurationError
from repro.ml.dataset import Dataset, QueryRecord
from repro.ml.encoding import OPERATOR_FEATURE_DIM
from repro.ml.models.base import CostModel
from repro.ml.training import Adam, EarlyStopping, TrainingResult

__all__ = ["GNNCostModel"]


class GNNCostModel(CostModel):
    """Message-passing GNN over the PQP DAG."""

    name = "GNN"

    def __init__(
        self,
        hidden: int = 48,
        layers: int = 3,
        head_hidden: int = 32,
        lr: float = 2e-3,
        batch_size: int = 16,
        max_epochs: int = 400,
        patience: int = 20,
        global_dim: int = 5,
    ) -> None:
        if layers < 1 or hidden < 1:
            raise ConfigurationError("layers and hidden must be >= 1")
        self.hidden = hidden
        self.layers = layers
        self.head_hidden = head_hidden
        self.lr = lr
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.global_dim = global_dim
        self.params: dict[str, np.ndarray] | None = None

    # -------------------------------------------------------------- params

    def _init_params(self, rng: np.random.Generator) -> dict[str, np.ndarray]:
        params: dict[str, np.ndarray] = {}
        in_dim = OPERATOR_FEATURE_DIM
        for layer in range(self.layers):
            out_dim = self.hidden
            scale = np.sqrt(2.0 / (in_dim + out_dim))
            for tag in ("s", "i", "o"):
                params[f"W{tag}{layer}"] = rng.normal(
                    0.0, scale, size=(in_dim, out_dim)
                )
            params[f"b{layer}"] = np.zeros(out_dim)
            in_dim = out_dim
        readout_dim = 2 * self.hidden + self.global_dim
        scale = np.sqrt(2.0 / (readout_dim + self.head_hidden))
        params["W_head1"] = rng.normal(
            0.0, scale, size=(readout_dim, self.head_hidden)
        )
        params["b_head1"] = np.zeros(self.head_hidden)
        params["w_head2"] = rng.normal(
            0.0, np.sqrt(1.0 / self.head_hidden), size=self.head_hidden
        )
        params["b_head2"] = np.zeros(1)
        return params

    # -------------------------------------------------------------- forward

    def _forward(
        self, record: QueryRecord, params: dict[str, np.ndarray]
    ) -> tuple[float, dict]:
        h = record.node_features
        a_in, a_out = record.adj_in, record.adj_out
        cache: dict = {"H": [h], "Z": []}
        for layer in range(self.layers):
            z = (
                h @ params[f"Ws{layer}"]
                + a_in @ h @ params[f"Wi{layer}"]
                + a_out @ h @ params[f"Wo{layer}"]
                + params[f"b{layer}"]
            )
            h = np.maximum(z, 0.0)
            cache["Z"].append(z)
            cache["H"].append(h)
        mean_pool = h.mean(axis=0)
        max_idx = h.argmax(axis=0)
        max_pool = h[max_idx, np.arange(h.shape[1])]
        readout = np.concatenate(
            [mean_pool, max_pool, record.globals_vec]
        )
        u_pre = readout @ params["W_head1"] + params["b_head1"]
        u = np.maximum(u_pre, 0.0)
        y_hat = float(u @ params["w_head2"] + params["b_head2"][0])
        cache.update(
            readout=readout, u=u, u_pre=u_pre, max_idx=max_idx, y_hat=y_hat
        )
        return y_hat, cache

    # ------------------------------------------------------------- backward

    def _backward(
        self,
        record: QueryRecord,
        cache: dict,
        d_yhat: float,
        params: dict[str, np.ndarray],
        grads: dict[str, np.ndarray],
    ) -> None:
        u, u_pre, readout = cache["u"], cache["u_pre"], cache["readout"]
        grads["w_head2"] += d_yhat * u
        grads["b_head2"] += np.array([d_yhat])
        du = (d_yhat * params["w_head2"]) * (u_pre > 0)
        grads["W_head1"] += np.outer(readout, du)
        grads["b_head1"] += du
        d_readout = params["W_head1"] @ du
        hidden = self.hidden
        d_mean = d_readout[:hidden]
        d_max = d_readout[hidden : 2 * hidden]
        h_last = cache["H"][-1]
        n = h_last.shape[0]
        dh = np.tile(d_mean / n, (n, 1))
        dh[cache["max_idx"], np.arange(hidden)] += d_max
        a_in, a_out = record.adj_in, record.adj_out
        for layer in reversed(range(self.layers)):
            z = cache["Z"][layer]
            h_prev = cache["H"][layer]
            dz = dh * (z > 0)
            grads[f"b{layer}"] += dz.sum(axis=0)
            grads[f"Ws{layer}"] += h_prev.T @ dz
            grads[f"Wi{layer}"] += (a_in @ h_prev).T @ dz
            grads[f"Wo{layer}"] += (a_out @ h_prev).T @ dz
            if layer > 0:
                dh = (
                    dz @ params[f"Ws{layer}"].T
                    + a_in.T @ dz @ params[f"Wi{layer}"].T
                    + a_out.T @ dz @ params[f"Wo{layer}"].T
                )

    # --------------------------------------------------------------- public

    def fit(
        self, train: Dataset, val: Dataset, seed: int = 0
    ) -> TrainingResult:
        start = time.perf_counter()
        rng = np.random.default_rng(seed)
        params = self._init_params(rng)
        optimizer = Adam(params, lr=self.lr)
        stopper = EarlyStopping(patience=self.patience)
        best_params = {k: v.copy() for k, v in params.items()}
        y_train = np.array([r.log_latency for r in train.records])
        y_val = np.array([r.log_latency for r in val.records])
        val_losses: list[float] = []
        epochs_run = 0
        for epoch in range(self.max_epochs):
            epochs_run = epoch + 1
            order = rng.permutation(len(train.records))
            for begin in range(0, len(order), self.batch_size):
                batch = order[begin : begin + self.batch_size]
                grads = {k: np.zeros_like(v) for k, v in params.items()}
                for index in batch:
                    record = train.records[index]
                    y_hat, cache = self._forward(record, params)
                    d_yhat = 2.0 * (y_hat - y_train[index]) / len(batch)
                    self._backward(record, cache, d_yhat, params, grads)
                optimizer.step(grads)
            val_pred = np.array(
                [self._forward(r, params)[0] for r in val.records]
            )
            val_loss = float(np.mean((val_pred - y_val) ** 2))
            val_losses.append(val_loss)
            stop = stopper.step(val_loss, epoch)
            if stopper.should_snapshot:
                best_params = {k: v.copy() for k, v in params.items()}
            if stop:
                break
        self.params = best_params
        return TrainingResult(
            model_name=self.name,
            train_time_s=time.perf_counter() - start,
            epochs=epochs_run,
            num_parameters=self.num_parameters(),
            train_samples=len(train),
            best_val_loss=stopper.best_loss,
            val_losses=val_losses,
        )

    def predict(self, data: Dataset) -> np.ndarray:
        self._check_fitted("params")
        log_pred = np.array(
            [self._forward(r, self.params)[0] for r in data.records]
        )
        return np.exp(np.clip(log_pred, -20.0, 20.0))

    def num_parameters(self) -> int:
        if self.params is None:
            return 0
        return int(sum(p.size for p in self.params.values()))
