"""Multi-layer perceptron cost model.

The paper's second family [30]: "known for capturing nonlinear
relationships in data". Two ReLU hidden layers on the flat feature vector,
trained with Adam and the uniform early-stopping protocol.
"""

from __future__ import annotations

import time

import numpy as np

from repro.common.errors import ConfigurationError
from repro.ml.dataset import Dataset
from repro.ml.models.base import CostModel
from repro.ml.training import (
    Adam,
    EarlyStopping,
    Standardizer,
    TrainingResult,
)

__all__ = ["MLPCostModel"]


class MLPCostModel(CostModel):
    """[input -> hidden -> hidden -> 1] ReLU regressor on log latency."""

    name = "MLP"

    def __init__(
        self,
        hidden: tuple[int, int] = (64, 64),
        lr: float = 3e-3,
        batch_size: int = 32,
        max_epochs: int = 300,
        patience: int = 10,
    ) -> None:
        if any(h < 1 for h in hidden):
            raise ConfigurationError("hidden sizes must be >= 1")
        self.hidden = hidden
        self.lr = lr
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.params: dict[str, np.ndarray] | None = None
        self.scaler = Standardizer()

    # ----------------------------------------------------------- internals

    def _init_params(
        self, input_dim: int, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        sizes = [input_dim, *self.hidden, 1]
        params: dict[str, np.ndarray] = {}
        for i in range(len(sizes) - 1):
            scale = np.sqrt(2.0 / sizes[i])
            params[f"W{i}"] = rng.normal(
                0.0, scale, size=(sizes[i], sizes[i + 1])
            )
            params[f"b{i}"] = np.zeros(sizes[i + 1])
        return params

    def _forward(
        self, x: np.ndarray, params: dict[str, np.ndarray]
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [x]
        h = x
        layers = len(self.hidden) + 1
        for i in range(layers):
            z = h @ params[f"W{i}"] + params[f"b{i}"]
            h = np.maximum(z, 0.0) if i < layers - 1 else z
            activations.append(h)
        return h[:, 0], activations

    def _backward(
        self,
        y_pred: np.ndarray,
        y_true: np.ndarray,
        activations: list[np.ndarray],
        params: dict[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        n = y_true.shape[0]
        grads: dict[str, np.ndarray] = {}
        delta = (2.0 * (y_pred - y_true) / n)[:, None]
        layers = len(self.hidden) + 1
        for i in reversed(range(layers)):
            h_prev = activations[i]
            grads[f"W{i}"] = h_prev.T @ delta
            grads[f"b{i}"] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ params[f"W{i}"].T) * (h_prev > 0)
        return grads

    # -------------------------------------------------------------- public

    def fit(
        self, train: Dataset, val: Dataset, seed: int = 0
    ) -> TrainingResult:
        start = time.perf_counter()
        rng = np.random.default_rng(seed)
        x_train, y_train = train.flat_matrix()
        x_val, y_val = val.flat_matrix()
        self.scaler.fit(x_train)
        x_train = self.scaler.transform(x_train)
        x_val = self.scaler.transform(x_val)
        params = self._init_params(x_train.shape[1], rng)
        optimizer = Adam(params, lr=self.lr)
        stopper = EarlyStopping(patience=self.patience)
        best_params = {k: v.copy() for k, v in params.items()}
        val_losses: list[float] = []
        epochs_run = 0
        for epoch in range(self.max_epochs):
            epochs_run = epoch + 1
            order = rng.permutation(len(x_train))
            for begin in range(0, len(order), self.batch_size):
                batch = order[begin : begin + self.batch_size]
                y_pred, activations = self._forward(x_train[batch], params)
                grads = self._backward(
                    y_pred, y_train[batch], activations, params
                )
                optimizer.step(grads)
            val_pred, _ = self._forward(x_val, params)
            val_loss = float(np.mean((val_pred - y_val) ** 2))
            val_losses.append(val_loss)
            stop = stopper.step(val_loss, epoch)
            if stopper.should_snapshot:
                best_params = {k: v.copy() for k, v in params.items()}
            if stop:
                break
        self.params = best_params
        return TrainingResult(
            model_name=self.name,
            train_time_s=time.perf_counter() - start,
            epochs=epochs_run,
            num_parameters=self.num_parameters(),
            train_samples=len(train),
            best_val_loss=stopper.best_loss,
            val_losses=val_losses,
        )

    def predict(self, data: Dataset) -> np.ndarray:
        self._check_fitted("params")
        x, _ = data.flat_matrix()
        log_pred, _ = self._forward(self.scaler.transform(x), self.params)
        return np.exp(np.clip(log_pred, -20.0, 20.0))

    def num_parameters(self) -> int:
        if self.params is None:
            return 0
        return int(sum(p.size for p in self.params.values()))
