"""An embedded JSON document store with a Mongo-like query surface.

Supports ``insert_one/insert_many``, ``find/find_one/count`` with a filter
dict (equality plus ``$gt/$gte/$lt/$lte/$ne/$in`` operators and dotted
paths), ``delete_many``, and optional JSON-lines persistence per
collection. Enough surface to play MongoDB's role in the PDSP-Bench
workflow: persisting workload runs and serving them back as ML training
corpora.
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable, Iterable
from typing import Any

from repro.common.errors import StorageError

__all__ = ["DocumentStore", "Collection"]

_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$gt": lambda value, arg: value is not None and value > arg,
    "$gte": lambda value, arg: value is not None and value >= arg,
    "$lt": lambda value, arg: value is not None and value < arg,
    "$lte": lambda value, arg: value is not None and value <= arg,
    "$ne": lambda value, arg: value != arg,
    "$in": lambda value, arg: value in arg,
    "$nin": lambda value, arg: value not in arg,
    "$exists": lambda value, arg: (value is not None) == bool(arg),
}


def _resolve(document: dict, path: str) -> Any:
    """Fetch a possibly-dotted path; None when any segment is missing."""
    current: Any = document
    for part in path.split("."):
        if not isinstance(current, dict) or part not in current:
            return None
        current = current[part]
    return current


def _matches(document: dict, query: dict) -> bool:
    for path, condition in query.items():
        value = _resolve(document, path)
        if isinstance(condition, dict) and any(
            key.startswith("$") for key in condition
        ):
            for op_name, arg in condition.items():
                op = _OPERATORS.get(op_name)
                if op is None:
                    raise StorageError(f"unknown query operator {op_name!r}")
                if not op(value, arg):
                    return False
        elif value != condition:
            return False
    return True


class Collection:
    """One named collection of JSON-serialisable documents."""

    def __init__(self, name: str, path: str | None = None) -> None:
        self.name = name
        self._path = path
        self._docs: list[dict] = []
        self._next_id = 1
        if path and os.path.exists(path):
            self._load()

    # ----------------------------------------------------------- persistence

    def _load(self) -> None:
        with open(self._path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise StorageError(
                        f"corrupt document in {self._path}: {exc}"
                    ) from exc
                self._docs.append(document)
                self._next_id = max(
                    self._next_id, int(document.get("_id", 0)) + 1
                )

    def _append_to_disk(self, documents: Iterable[dict]) -> None:
        if not self._path:
            return
        with open(self._path, "a", encoding="utf-8") as handle:
            for document in documents:
                handle.write(json.dumps(document, sort_keys=True) + "\n")

    def _rewrite_disk(self) -> None:
        if not self._path:
            return
        tmp = self._path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for document in self._docs:
                handle.write(json.dumps(document, sort_keys=True) + "\n")
        os.replace(tmp, self._path)

    # ------------------------------------------------------------- mutation

    def insert_one(self, document: dict) -> int:
        """Insert one document; returns its assigned ``_id``."""
        return self.insert_many([document])[0]

    def insert_many(self, documents: Iterable[dict]) -> list[int]:
        """Insert documents; returns their assigned ids."""
        inserted = []
        fresh = []
        for document in documents:
            if not isinstance(document, dict):
                raise StorageError(
                    f"documents must be dicts, got {type(document).__name__}"
                )
            copy = dict(document)
            copy.setdefault("_id", self._next_id)
            self._next_id = max(self._next_id, int(copy["_id"]) + 1)
            try:
                json.dumps(copy)
            except TypeError as exc:
                raise StorageError(
                    f"document is not JSON-serialisable: {exc}"
                ) from exc
            self._docs.append(copy)
            fresh.append(copy)
            inserted.append(copy["_id"])
        self._append_to_disk(fresh)
        return inserted

    def delete_many(self, query: dict) -> int:
        """Delete matching documents; returns how many were removed."""
        before = len(self._docs)
        self._docs = [d for d in self._docs if not _matches(d, query)]
        removed = before - len(self._docs)
        if removed:
            self._rewrite_disk()
        return removed

    # --------------------------------------------------------------- query

    def find(
        self,
        query: dict | None = None,
        limit: int | None = None,
        sort_by: str | None = None,
        descending: bool = False,
    ) -> list[dict]:
        """All matching documents (copies), optionally sorted/limited."""
        results = [
            dict(d) for d in self._docs if _matches(d, query or {})
        ]
        if sort_by is not None:
            results.sort(
                key=lambda d: (_resolve(d, sort_by) is None,
                               _resolve(d, sort_by)),
                reverse=descending,
            )
        if limit is not None:
            results = results[:limit]
        return results

    def find_one(self, query: dict | None = None) -> dict | None:
        """The first matching document, or None."""
        for document in self._docs:
            if _matches(document, query or {}):
                return dict(document)
        return None

    def count(self, query: dict | None = None) -> int:
        """Number of matching documents."""
        if not query:
            return len(self._docs)
        return sum(1 for d in self._docs if _matches(d, query))

    def distinct(self, path: str) -> list:
        """Sorted distinct values at a (dotted) path."""
        values = {
            _resolve(d, path)
            for d in self._docs
            if _resolve(d, path) is not None
        }
        return sorted(values, key=lambda v: (str(type(v)), v))


class DocumentStore:
    """A set of named collections, optionally persisted to a directory."""

    def __init__(self, directory: str | None = None) -> None:
        self._directory = directory
        self._collections: dict[str, Collection] = {}
        if directory:
            os.makedirs(directory, exist_ok=True)

    def collection(self, name: str) -> Collection:
        """Get or create a collection."""
        if not name or "/" in name:
            raise StorageError(f"invalid collection name {name!r}")
        if name not in self._collections:
            path = (
                os.path.join(self._directory, f"{name}.jsonl")
                if self._directory
                else None
            )
            self._collections[name] = Collection(name, path)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def list_collections(self) -> list[str]:
        """Names of all collections opened (and, if persistent, on disk)."""
        names = set(self._collections)
        if self._directory:
            for filename in os.listdir(self._directory):
                if filename.endswith(".jsonl"):
                    names.add(filename[: -len(".jsonl")])
        return sorted(names)

    def drop(self, name: str) -> None:
        """Delete a collection and its file."""
        self._collections.pop(name, None)
        if self._directory:
            path = os.path.join(self._directory, f"{name}.jsonl")
            if os.path.exists(path):
                os.remove(path)
