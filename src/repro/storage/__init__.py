"""Embedded document store — the MongoDB stand-in.

The paper stores generated workloads and their measured metrics in MongoDB
for later ML training; this package provides the same insert/find surface
as an embedded, optionally persistent (JSON-lines) store.
"""

from repro.storage.docstore import Collection, DocumentStore

__all__ = ["DocumentStore", "Collection"]
