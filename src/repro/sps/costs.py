"""Operator cost profiles.

The simulator charges each tuple a CPU service time at every subtask. The
profile of an operator gives its base per-tuple cost on one m510 core (the
paper's baseline hardware), a coordination coefficient that inflates service
time as the operator's parallelism grows (state synchronisation, channel
management, checkpoint alignment — the source of the paper's *parallelism
paradox*, O2), and flags used by placement, enumeration and ML features.

Base costs are calibrated so that, at the paper's reported event rate of
100k events/s, stateless operators are comfortable at low parallelism while
joins and data-intensive user-defined operators saturate and need parallel
instances — reproducing which query classes benefit from parallelism (O1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.sps.logical_kinds import OperatorKind

__all__ = ["OperatorCost", "default_cost", "SERDE_COST_S", "COORD_LOG_COST_S"]

#: Per-tuple serialization/deserialization cost paid by the producer on every
#: non-forward (shuffle) exchange, per the Flink network stack.
SERDE_COST_S = 1.2e-6

#: Per-tuple channel-management cost factor: multiplied by log2(#channels) a
#: producer maintains, modelling output-buffer polling and flushing.
COORD_LOG_COST_S = 0.25e-6


@dataclass(frozen=True)
class OperatorCost:
    """Cost profile of one logical operator.

    ``base_cpu_s``
        CPU seconds one tuple costs on one m510 core.
    ``coord_kappa``
        Per-instance service inflation: service time is multiplied by
        ``1 + coord_kappa * (parallelism - 1)``. Stateful operators pay more.
    ``stateful``
        Whether the operator keeps keyed state (windows, joins, UDO state).
    ``is_udo``
        Whether this is a user-defined operator (paper's UDO distinction;
        UDOs get an extra service-time variance term, producing O3's
        unpredictable scaling).
    ``cost_noise``
        Coefficient of variation of the per-tuple service time.
    """

    base_cpu_s: float
    coord_kappa: float = 0.0
    stateful: bool = False
    is_udo: bool = False
    cost_noise: float = 0.10

    def __post_init__(self) -> None:
        if self.base_cpu_s <= 0:
            raise ConfigurationError("base_cpu_s must be positive")
        if self.coord_kappa < 0:
            raise ConfigurationError("coord_kappa must be non-negative")
        if not 0 <= self.cost_noise < 1:
            raise ConfigurationError("cost_noise must be in [0, 1)")

    def coordination_factor(self, parallelism: int) -> float:
        """Service-time inflation at the given parallelism degree."""
        if parallelism < 1:
            raise ConfigurationError("parallelism must be >= 1")
        return 1.0 + self.coord_kappa * (parallelism - 1)

    def scaled(self, factor: float) -> "OperatorCost":
        """Copy with the base cost multiplied (heavier/lighter variants)."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return replace(self, base_cpu_s=self.base_cpu_s * factor)


_DEFAULTS: dict[OperatorKind, OperatorCost] = {
    OperatorKind.SOURCE: OperatorCost(base_cpu_s=1.0e-6),
    OperatorKind.FILTER: OperatorCost(base_cpu_s=2.0e-6),
    OperatorKind.MAP: OperatorCost(base_cpu_s=2.5e-6),
    OperatorKind.FLATMAP: OperatorCost(base_cpu_s=4.0e-6),
    OperatorKind.WINDOW_AGG: OperatorCost(
        base_cpu_s=6.0e-6, coord_kappa=0.004, stateful=True
    ),
    OperatorKind.WINDOW_JOIN: OperatorCost(
        base_cpu_s=14.0e-6, coord_kappa=0.010, stateful=True
    ),
    OperatorKind.UDO: OperatorCost(
        base_cpu_s=40.0e-6,
        coord_kappa=0.006,
        stateful=True,
        is_udo=True,
        cost_noise=0.25,
    ),
    OperatorKind.SINK: OperatorCost(base_cpu_s=1.0e-6),
}


def default_cost(kind: OperatorKind) -> OperatorCost:
    """The default cost profile for an operator kind."""
    return _DEFAULTS[kind]
