"""Operator chaining (Flink-style task fusion).

Flink fuses forward-connected operators into one task so tuples pass
between them as function calls instead of queued exchanges. The physical
planner reproduces this: maximal runs of forward-connected, single-in/
single-out *stateless* operators (filters, maps, flatMaps) are fused into
the run's head. The fused subtask pays the summed CPU cost once and skips
the per-hop queueing/serde of the interior edges — the
``bench_ablation_chaining`` benchmark quantifies the difference.

Chaining is off by default so the calibrated experiment results are
unaffected; enable it with ``PhysicalPlan.from_logical(plan,
chaining=True)``.
"""

from __future__ import annotations

from repro.sps.costs import OperatorCost
from repro.sps.logical import LogicalOperator, LogicalPlan, OperatorKind
from repro.sps.operators.base import OperatorContext, OperatorLogic
from repro.sps.partitioning import ForwardPartitioner
from repro.sps.tuples import StreamTuple

__all__ = ["ChainedLogic", "compute_chains", "fused_cost", "fused_factory"]

#: Operator kinds that may be fused as chain *tail* members.
_CHAINABLE_KINDS = (
    OperatorKind.FILTER,
    OperatorKind.MAP,
    OperatorKind.FLATMAP,
)


class ChainedLogic(OperatorLogic):
    """Runs several operator logics as one task, in pipeline order.

    Each member's outputs feed the next member directly; timer and flush
    outputs of member *i* also traverse the remaining members, preserving
    chain semantics.
    """

    def __init__(self, logics: list[OperatorLogic]) -> None:
        if not logics:
            raise ValueError("a chain needs at least one logic")
        self.logics = logics
        intervals = [
            logic.timer_interval
            for logic in logics
            if logic.timer_interval is not None
        ]
        if intervals:
            self.timer_interval = min(intervals)

    def setup(self, ctx: OperatorContext) -> None:
        super().setup(ctx)
        for logic in self.logics:
            logic.setup(ctx)

    def _run_tail(
        self, outputs: list[StreamTuple], start: int, now: float
    ) -> list[StreamTuple]:
        current = outputs
        for logic in self.logics[start:]:
            next_outputs: list[StreamTuple] = []
            for tup in current:
                next_outputs.extend(logic.process(tup, now))
            current = next_outputs
            if not current:
                break
        return current

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        outputs = self.logics[0].process(tup, now, port)
        return self._run_tail(outputs, 1, now)

    def on_time(self, now: float) -> list[StreamTuple]:
        collected: list[StreamTuple] = []
        for index, logic in enumerate(self.logics):
            produced = logic.on_time(now)
            if produced:
                collected.extend(self._run_tail(produced, index + 1, now))
        return collected

    def flush(self, now: float) -> list[StreamTuple]:
        collected: list[StreamTuple] = []
        for index, logic in enumerate(self.logics):
            produced = logic.flush(now)
            if produced:
                collected.extend(self._run_tail(produced, index + 1, now))
        return collected


def compute_chains(plan: LogicalPlan) -> dict[str, list[str]]:
    """Maximal fusable chains: ``{head_op_id: [member ids in order]}``.

    A tail member is fused into its predecessor when the connecting edge
    is forward (equal parallelism), the predecessor has exactly one
    output, the member has exactly one input and one output (or is
    followed only by more chain members), and the member is stateless.
    Sources and sinks are never fused; heads may be any non-source,
    non-sink operator.
    """
    merged_into: dict[str, str] = {}
    chains: dict[str, list[str]] = {}

    def chain_head(op_id: str) -> str:
        while op_id in merged_into:
            op_id = merged_into[op_id]
        return op_id

    for op_id in plan.topological_order():
        op = plan.operator(op_id)
        if op.kind in (OperatorKind.SOURCE, OperatorKind.SINK):
            continue
        in_edges = plan.in_edges(op_id)
        if len(in_edges) != 1:
            continue
        edge = in_edges[0]
        if not isinstance(edge.partitioner, ForwardPartitioner):
            continue
        if op.kind not in _CHAINABLE_KINDS:
            continue
        predecessor = plan.operator(edge.src)
        if predecessor.kind in (OperatorKind.SOURCE, OperatorKind.SINK):
            continue
        if len(plan.out_edges(edge.src)) != 1:
            continue
        if predecessor.parallelism != op.parallelism:
            continue
        head = chain_head(edge.src)
        merged_into[op_id] = head
        chains.setdefault(head, [head]).append(op_id)
    return chains


def fused_cost(members: list[LogicalOperator]) -> OperatorCost:
    """Cost profile of a fused chain: summed CPU, worst-case flags."""
    return OperatorCost(
        base_cpu_s=sum(op.cost.base_cpu_s for op in members),
        coord_kappa=max(op.cost.coord_kappa for op in members),
        stateful=any(op.cost.stateful for op in members),
        is_udo=any(op.cost.is_udo for op in members),
        cost_noise=max(op.cost.cost_noise for op in members),
    )


def fused_factory(members: list[LogicalOperator]):
    """A logic factory building the chained logic of all members."""

    def build() -> ChainedLogic:
        return ChainedLogic([op.logic_factory() for op in members])

    return build
