"""Sharded execution: conservative parallel DES over the stream engine.

``SimulationConfig(shards=K)`` partitions the simulated cluster by
placement node (:mod:`repro.kernel.partition`), runs one
:class:`~repro.kernel.core.Kernel` per shard and advances them together
through conservative epochs (:mod:`repro.kernel.sharded`) whose
lookahead is the network's base latency. Two transports share the
controller and produce bit-identical results:

- **fork** (the default on platforms with ``fork``): one OS process per
  shard, inheriting the fully built engine copy-on-write so nothing is
  pickled at start-up. Cross-shard tuple batches travel as typed
  columns (:mod:`repro.kernel.wire`) under struct-packed control frames;
  the single final stats frame is the one documented pickle exception.
- **inline**: all shard executors in-process, driven by the same
  controller. This is the no-fork fallback and the serial reference the
  runner's DET609 cross-check compares a forked run against.

**The shard universe.** ``shards=K`` is a *separate deterministic
universe* from ``shards=None``: every subtask draws arrival gaps and
service noise from its own named streams
(``engine/<op>/<i>/arrivals|noise``) instead of the legacy engine's one
shared arrival stream, equal-time events order by ``(origin gid, origin
seq)`` instead of global push order, and end-of-stream flushes happen at
epoch boundaries. Within the universe results are invariant in K — the
property suite pins ``shards∈{1,2,4}`` plus both transports identical —
but they intentionally differ from the ``shards=None`` event loop, which
stays byte-identical to all committed goldens.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import struct
import traceback

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import state_fingerprint
from repro.kernel.core import BudgetExceededError, Kernel
from repro.kernel.partition import partition_nodes, shard_of_gids
from repro.kernel.sharded import ShardController
from repro.kernel.wire import decode_batch, encode_batch
from repro.sps.engine import (
    _ARR_BURSTY,
    _ARR_CONSTANT,
    _ARR_POISSON,
    _ARRIVAL,
    _BEGIN,
    _DELIVER,
    _DONE,
    _STALL,
    _TIMER,
    _WORK_MASK,
)
from repro.sps.operators.sink import SinkLogic

__all__ = ["ShardExecutor", "run_sharded"]


class ShardExecutor:
    """Drives the subset of an engine's subtasks owned by one shard.

    Mirrors the serial engine's hot path (arrival → enqueue → serve →
    done → route) over its own kernel, with three shard-mode changes:
    per-runtime RNG streams, ``(origin gid, origin seq)`` tie-breaks via
    :meth:`Kernel.push_tb`, and an outbox for deliveries whose consumer
    lives on another shard. It never touches a runtime it doesn't own,
    so inline executors can share one engine object safely.
    """

    def __init__(self, engine, shard_id, owned, shard_of_gid) -> None:
        self.engine = engine
        self.shard_id = shard_id
        self.owned = list(owned)
        self.owned_set = frozenset(owned)
        self.shard_of_gid = shard_of_gid
        self.kernel = Kernel(_WORK_MASK)
        self.runtimes = engine._runtimes
        #: per-gid producer sequence counters; every event a subtask
        #: schedules gets the next number, so equal-time ordering
        #: depends only on producers, never on the shard count
        self.oseq = [0] * len(self.runtimes)
        self.outbox: list = []
        self.last_source_time = 0.0
        self.flush_time: float | None = None
        self.max_sim_time = engine.config.max_sim_time
        # Shard-universe RNG streams. Derived purely from the factory
        # seed and the subtask's stable name, so every transport and
        # every K builds byte-identical generators.
        rngs = engine._rngs
        self.arr_rngs: dict = {}
        self.noise_rngs: dict = {}
        for gid in self.owned:
            runtime = self.runtimes[gid]
            name = (runtime.op_id, str(runtime.index))
            if runtime.is_source:
                self.arr_rngs[gid] = rngs.fresh("engine", *name, "arrivals")
            if runtime.noise_sigma > 0:
                self.noise_rngs[gid] = rngs.fresh("engine", *name, "noise")
        self.handlers = self._make_handlers()

    # ------------------------------------------------------------ scheduling

    def _push(self, time, kind, gid, payload, port, origin) -> None:
        seq = self.oseq[origin]
        self.oseq[origin] = seq + 1
        self.kernel.push_tb(time, (origin, seq), kind, gid, payload, port)

    def _schedule_next_arrival(self, runtime, now: float) -> None:
        if runtime.emitted >= runtime.arrival_budget:
            return
        kind = runtime.arrival_kind
        rng = self.arr_rngs[runtime.gid]
        if kind == _ARR_POISSON:
            gap = rng.exponential(runtime.mean_gap)
        elif kind == _ARR_CONSTANT:
            gap = runtime.mean_gap
        elif kind == _ARR_BURSTY:
            phase = (now * 10.0) % 1.0
            gap = rng.exponential(
                runtime.burst_fast_gap
                if phase < 0.25
                else runtime.burst_slow_gap
            )
        else:
            profile = runtime.rate_profile
            if profile is None:
                raise ConfigurationError(
                    f"{runtime.op_id}: arrival 'profile' needs a "
                    "'rate_profile' callable in the source metadata"
                )
            instant = max(
                float(profile(now)) / runtime.profile_divisor, 1e-9
            )
            gap = rng.exponential(1.0 / instant)
        at = now + gap
        if at > self.max_sim_time:
            return
        self._push(at, _ARRIVAL, runtime.gid, None, 0, runtime.gid)

    # -------------------------------------------------------------- handlers

    def _make_handlers(self) -> list:
        runtimes = self.runtimes

        def arrival(gid: int, payload, port: int) -> None:
            runtime = runtimes[gid]
            now = self.kernel.now
            tup = runtime.logic.generate(now)
            runtime.emitted += 1
            if now > self.last_source_time:
                self.last_source_time = now
            self._enqueue(runtime, tup, 0)
            self._schedule_next_arrival(runtime, now)

        def deliver(gid: int, payload, port: int) -> None:
            self._enqueue(runtimes[gid], payload, port)

        def begin(gid: int, payload, port: int) -> None:
            runtime = runtimes[gid]
            runtime.busy = False
            if len(runtime.queue) > runtime.queue_head:
                self._begin_service_now(runtime)

        def timer(gid: int, payload, port: int) -> None:
            runtime = runtimes[gid]
            now = self.kernel.now
            logic = runtime.logic
            outputs = logic.on_time(now)
            if outputs:
                runtime.busy_time += self._route(runtime, outputs)
            interval = logic.timer_interval
            next_time = now + interval
            if next_time <= self.max_sim_time + 10.0 * interval:
                self._push(next_time, _TIMER, gid, None, 0, gid)

        def stall(gid: int, duration, port: int) -> None:
            runtime = runtimes[gid]
            now = self.kernel.now
            if runtime.busy:
                self._push(now + 1e-4, _STALL, gid, duration, 0, gid)
                return
            runtime.busy = True
            self._push(now + duration, _BEGIN, gid, None, 0, gid)

        def done(gid: int, tup, port: int) -> None:
            runtime = runtimes[gid]
            now = self.kernel.now
            if runtime.is_source:
                outputs = [tup]
            else:
                outputs = runtime.logic.process(tup, now, port)
            overhead = self._route(runtime, outputs)
            runtime.busy_time += overhead
            if overhead > 0:
                self._push(now + overhead, _BEGIN, gid, None, 0, gid)
            else:
                runtime.busy = False
                if len(runtime.queue) > runtime.queue_head:
                    self._begin_service_now(runtime)

        handlers: list = [None] * len(_WORK_MASK)
        handlers[_ARRIVAL] = arrival
        handlers[_DELIVER] = deliver
        handlers[_BEGIN] = begin
        handlers[_DONE] = done
        handlers[_TIMER] = timer
        handlers[_STALL] = stall
        return handlers

    def _enqueue(self, runtime, tup, port: int) -> None:
        now = self.kernel.now
        queue = runtime.queue
        if not runtime.busy and runtime.queue_head == len(queue):
            if runtime.queue_peak < 1:
                runtime.queue_peak = 1
            runtime.served += 1
            runtime.busy = True
            work = runtime.static_work
            if work is None:
                work = runtime.logic.work_units(tup)
            service = runtime.base_service * work
            sigma = runtime.noise_sigma
            if sigma > 0:
                service *= self.noise_rngs[runtime.gid].lognormal(
                    runtime.noise_mu, sigma
                )
            runtime.busy_time += service
            self._push(
                now + service, _DONE, runtime.gid, tup, port, runtime.gid
            )
            return
        queue.append((tup, port, now))
        depth = len(queue) - runtime.queue_head
        if depth > runtime.queue_peak:
            runtime.queue_peak = depth
        if not runtime.busy:
            self._begin_service_now(runtime)

    def _begin_service_now(self, runtime) -> None:
        queue = runtime.queue
        head = runtime.queue_head
        tup, port, enqueued_at = queue[head]
        now = self.kernel.now
        wait = now - enqueued_at
        runtime.wait_time += wait
        runtime.served += 1
        head += 1
        runtime.queue_head = head
        if head > 256 and head * 2 >= len(queue):
            del queue[:head]
            runtime.queue_head = 0
        runtime.busy = True
        work = runtime.static_work
        if work is None:
            work = runtime.logic.work_units(tup)
        service = runtime.base_service * work
        sigma = runtime.noise_sigma
        if sigma > 0:
            service *= self.noise_rngs[runtime.gid].lognormal(
                runtime.noise_mu, sigma
            )
        runtime.busy_time += service
        self._push(now + service, _DONE, runtime.gid, tup, port, runtime.gid)

    def _route(self, runtime, outputs) -> float:
        """The serial engine's affine routing with an outbox fork.

        Same group-ordered overhead accounting as ``StreamEngine._route``
        (sharding requires the affine network, so only the precompiled
        latency path exists here); deliveries whose consumer lives on
        another shard go to the outbox instead of the local heap, and
        the producer's sequence counter advances identically either way.
        """
        if not outputs:
            return 0.0
        table = runtime.route_table
        if not table:
            return 0.0
        kernel = self.kernel
        now = kernel.now
        origin = runtime.gid
        oseq = self.oseq
        outbox = self.outbox
        shard_of = self.shard_of_gid
        shard_id = self.shard_id
        offset = 0.0
        for (
            select,
            fixed,
            rekey,
            consumers,
            num_channels,
            latencies,
            bandwidths,
            port,
            shuffle_cost,
        ) in table:
            if fixed is not None:
                if shuffle_cost:
                    per_output = shuffle_cost * len(fixed)
                    group_overhead = 0.0
                    for _ in outputs:
                        group_overhead += per_output
                    offset += group_overhead
                routed = None
            elif shuffle_cost:
                routed = []
                group_overhead = 0.0
                for tup in outputs:
                    out = (
                        tup.with_key(rekey(tup)) if rekey is not None else tup
                    )
                    indices = select(out, num_channels)
                    group_overhead += shuffle_cost * len(indices)
                    routed.append((out, indices))
                offset += group_overhead
            else:
                routed = None
            if fixed is not None:
                for out in outputs:
                    size = out.size_bytes
                    for idx in fixed:
                        delay = latencies[idx] + size / bandwidths[idx]
                        at = now + delay + offset
                        dst = consumers[idx]
                        seq = oseq[origin]
                        oseq[origin] = seq + 1
                        if shard_of[dst] == shard_id:
                            kernel.push_tb(
                                at, (origin, seq), _DELIVER, dst, out, port
                            )
                        else:
                            outbox.append((at, origin, seq, dst, port, out))
                continue
            if routed is None:
                routed = []
                for tup in outputs:
                    out = (
                        tup.with_key(rekey(tup)) if rekey is not None else tup
                    )
                    routed.append((out, select(out, num_channels)))
            for out, indices in routed:
                size = out.size_bytes
                for idx in indices:
                    delay = latencies[idx] + size / bandwidths[idx]
                    at = now + delay + offset
                    dst = consumers[idx]
                    seq = oseq[origin]
                    oseq[origin] = seq + 1
                    if shard_of[dst] == shard_id:
                        kernel.push_tb(
                            at, (origin, seq), _DELIVER, dst, out, port
                        )
                    else:
                        outbox.append((at, origin, seq, dst, port, out))
        return offset

    # ----------------------------------------------------- controller verbs

    def start(self):
        """Seed initial events for owned subtasks; report (0, work, next)."""
        for gid in self.owned:
            runtime = self.runtimes[gid]
            if runtime.is_source:
                self._schedule_next_arrival(runtime, 0.0)
            interval = getattr(runtime.logic, "timer_interval", None)
            if interval:
                self._push(interval, _TIMER, gid, None, 0, gid)
        for injection in self.engine.config.stalls:
            if injection.at_time > self.max_sim_time:
                continue
            gids = self.engine.physical.op_subtasks.get(injection.op_id, ())
            for gid in gids:
                if gid in self.owned_set:
                    self._push(
                        injection.at_time,
                        _STALL,
                        gid,
                        injection.duration,
                        0,
                        gid,
                    )
        kernel = self.kernel
        return (0, kernel.work, kernel.next_event_time())

    def inject(self, messages) -> None:
        """Queue cross-shard arrivals, tie-broken by (origin, seq).

        The caller-supplied tie-break (not local insertion order) is
        what keeps equal-time delivery order invariant in the shard
        count — see DESIGN.md §14.
        """
        kernel = self.kernel
        for at, origin, seq, dst, port, tup in messages:
            kernel.push_tb(at, (origin, seq), _DELIVER, dst, tup, port)

    def _collect_outbox(self) -> list:
        """Drain the outbox into per-destination-shard packets.

        Packets are ``(dst_shard, min_time, count, messages)`` — the
        controller forwards them by destination without opening the
        payload, so the (forked) transport can serialize each packet
        once inside the worker instead of per hop in the parent.
        """
        outbox = self.outbox
        if not outbox:
            return []
        self.outbox = []
        shard_of = self.shard_of_gid
        groups: dict[int, list] = {}
        for message in outbox:
            groups.setdefault(shard_of[message[3]], []).append(message)
        return [
            (
                dst,
                min(message[0] for message in messages),
                len(messages),
                messages,
            )
            for dst, messages in sorted(groups.items())
        ]

    def run_epoch(self, boundary: float, inbox, budget: int):
        """Inject ``inbox``, drain strictly below ``boundary``, and
        return ``(events, work, next_time, outbox)`` for the
        controller — the outbox holding this epoch's cross-shard
        emissions as per-destination packets.
        """
        self.inject(inbox)
        kernel = self.kernel
        kernel.run(self.handlers, max_events=budget, until=boundary)
        return (
            kernel.events_processed,
            kernel.work,
            kernel.next_event_time(),
            self._collect_outbox(),
        )

    def flush_round(self, boundary: float):
        """Force remaining window state out at the epoch boundary.

        Unlike the serial engine (which flushes at the last work event's
        time), shard flushes happen at the boundary — a K-invariant
        float — so every shard count sees identical flush emissions.
        """
        kernel = self.kernel
        kernel.now = boundary
        if self.flush_time is None:
            self.flush_time = boundary
        emitted = False
        engine = self.engine
        owned = self.owned_set
        for op_id in engine.logical.topological_order():
            gids = engine._op_gids.get(op_id)
            if gids is None:
                continue
            for gid in gids:
                if gid not in owned:
                    continue
                runtime = self.runtimes[gid]
                outputs = runtime.logic.flush(boundary)
                if outputs:
                    emitted = True
                    self._route(runtime, outputs)
        return (
            emitted,
            kernel.events_processed,
            kernel.work,
            kernel.next_event_time(),
            self._collect_outbox(),
        )

    def stats(self) -> dict:
        """Everything the parent needs to finish metrics collection."""
        runtimes: dict = {}
        sinks: dict = {}
        ledger: dict = {}
        for gid in self.owned:
            runtime = self.runtimes[gid]
            runtimes[gid] = (
                runtime.busy_time,
                runtime.queue_peak,
                runtime.wait_time,
                runtime.served,
                runtime.emitted,
            )
            logic = runtime.logic
            if isinstance(logic, SinkLogic):
                sinks[gid] = (
                    logic.received,
                    logic.latencies,
                    logic.arrival_times,
                    logic.results,
                )
            label = f"{runtime.op_id}[{runtime.index}]"
            rng = getattr(getattr(logic, "ctx", None), "rng", None)
            if rng is not None:
                ledger[label] = state_fingerprint(rng)
            arr = self.arr_rngs.get(gid)
            if arr is not None:
                ledger[label + "/arrivals"] = state_fingerprint(arr)
            noise = self.noise_rngs.get(gid)
            if noise is not None:
                ledger[label + "/noise"] = state_fingerprint(noise)
        return {
            "runtimes": runtimes,
            "sinks": sinks,
            "ledger": ledger,
            "last_source_time": self.last_source_time,
            "flush_time": self.flush_time,
        }


# ------------------------------------------------------------- transports


class _InlineHandle:
    """Controller handle over an in-process executor (serial reference)."""

    def __init__(self, executor: ShardExecutor) -> None:
        self.executor = executor
        self._reply = None

    def begin_start(self) -> None:
        self._reply = self.executor.start()

    def begin_epoch(self, boundary, packets, budget) -> None:
        inbox = [
            message for packet in packets for message in packet[3]
        ]
        self._reply = self.executor.run_epoch(boundary, inbox, budget)

    def begin_flush(self, boundary) -> None:
        self._reply = self.executor.flush_round(boundary)

    def collect(self):
        return self._reply

    def fetch_stats(self) -> dict:
        return self.executor.stats()

    def close(self) -> None:
        pass


# Control frames are struct-packed, tuple batches ride as wire columns;
# the single stats frame at the end is the documented pickle exception.
_EPOCH = struct.Struct("<dqI")  # boundary, budget, num inbound blobs
_FLUSH = struct.Struct("<d")  # boundary
_RUN_REPLY = struct.Struct("<qqdI")  # events, work, next, num packets
_FLUSH_REPLY = struct.Struct("<BqqdI")  # emitted, events, work, next, n
_PACKET = struct.Struct("<idqI")  # dst shard, min_time, count, blob len
_BLOB = struct.Struct("<I")  # blob length


def _pack_outbox(packets) -> bytes:
    """Wire-encode each per-destination packet (sender side, in-worker)."""
    parts: list[bytes] = []
    for dst, min_at, count, messages in packets:
        blob = encode_batch(messages)
        parts.append(_PACKET.pack(dst, min_at, count, len(blob)))
        parts.append(blob)
    return b"".join(parts)


def _unpack_outbox(frame: bytes, pos: int, n: int) -> list:
    """Parent side: packets with *undecoded* blob payloads."""
    packets = []
    for _ in range(n):
        dst, min_at, count, blob_len = _PACKET.unpack_from(frame, pos)
        pos += _PACKET.size
        packets.append((dst, min_at, count, frame[pos : pos + blob_len]))
        pos += blob_len
    return packets


def _shard_child(conn, parent_conn, engine, shard_id, owned, shard_of_gid):
    parent_conn.close()
    try:
        executor = ShardExecutor(engine, shard_id, owned, shard_of_gid)
        while True:
            frame = conn.recv_bytes()
            op = frame[:1]
            if op == b"S":
                events, work, nxt = executor.start()
                conn.send_bytes(b"R" + _RUN_REPLY.pack(events, work, nxt, 0))
            elif op == b"E":
                boundary, budget, n_blobs = _EPOCH.unpack_from(frame, 1)
                pos = 1 + _EPOCH.size
                inbox: list = []
                for _ in range(n_blobs):
                    (blob_len,) = _BLOB.unpack_from(frame, pos)
                    pos += _BLOB.size
                    inbox.extend(decode_batch(frame[pos : pos + blob_len]))
                    pos += blob_len
                events, work, nxt, outbox = executor.run_epoch(
                    boundary, inbox, budget
                )
                conn.send_bytes(
                    b"R"
                    + _RUN_REPLY.pack(events, work, nxt, len(outbox))
                    + _pack_outbox(outbox)
                )
            elif op == b"F":
                (boundary,) = _FLUSH.unpack_from(frame, 1)
                emitted, events, work, nxt, outbox = executor.flush_round(
                    boundary
                )
                conn.send_bytes(
                    b"G"
                    + _FLUSH_REPLY.pack(
                        emitted, events, work, nxt, len(outbox)
                    )
                    + _pack_outbox(outbox)
                )
            elif op == b"T":
                conn.send_bytes(
                    b"X"
                    + pickle.dumps(
                        executor.stats(), protocol=pickle.HIGHEST_PROTOCOL
                    )
                )
            else:  # b"Q" or unknown: orderly shutdown
                break
    except BudgetExceededError as exc:
        try:
            conn.send_bytes(b"B" + struct.pack("<q", exc.max_events))
        except OSError:
            pass
    except BaseException:
        try:
            conn.send_bytes(b"!" + traceback.format_exc().encode("utf-8"))
        except OSError:
            pass
    finally:
        conn.close()
        # Skip the parent's inherited atexit/teardown machinery.
        os._exit(0)


class _ForkHandle:
    """Controller handle over one forked shard process."""

    def __init__(self, conn, process) -> None:
        self.conn = conn
        self.process = process
        self._pending = None

    def begin_start(self) -> None:
        self._pending = "start"
        self.conn.send_bytes(b"S")

    def begin_epoch(self, boundary, packets, budget) -> None:
        self._pending = "epoch"
        parts = [b"E", _EPOCH.pack(boundary, budget, len(packets))]
        for packet in packets:
            blob = packet[3]
            parts.append(_BLOB.pack(len(blob)))
            parts.append(blob)
        self.conn.send_bytes(b"".join(parts))

    def begin_flush(self, boundary) -> None:
        self._pending = "flush"
        self.conn.send_bytes(b"F" + _FLUSH.pack(boundary))

    def _recv(self) -> bytes:
        try:
            frame = self.conn.recv_bytes()
        except EOFError:
            raise SimulationError(
                "shard worker exited without a reply"
            ) from None
        op = frame[:1]
        if op == b"B":
            (max_events,) = struct.unpack_from("<q", frame, 1)
            raise BudgetExceededError(max_events)
        if op == b"!":
            raise SimulationError(
                "shard worker failed:\n" + frame[1:].decode("utf-8")
            )
        return frame

    def collect(self):
        frame = self._recv()
        pending, self._pending = self._pending, None
        if pending == "flush":
            emitted, events, work, nxt, n = _FLUSH_REPLY.unpack_from(
                frame, 1
            )
            outbox = _unpack_outbox(frame, 1 + _FLUSH_REPLY.size, n)
            return (bool(emitted), events, work, nxt, outbox)
        events, work, nxt, n = _RUN_REPLY.unpack_from(frame, 1)
        if pending == "start":
            return (events, work, nxt)
        outbox = _unpack_outbox(frame, 1 + _RUN_REPLY.size, n)
        return (events, work, nxt, outbox)

    def fetch_stats(self) -> dict:
        self.conn.send_bytes(b"T")
        frame = self._recv()
        return pickle.loads(frame[1:])

    def close(self) -> None:
        try:
            self.conn.send_bytes(b"Q")
        except OSError:
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=1.0)


# ------------------------------------------------------------- entry point


def _apply_stats(engine, stats, final_now, controller) -> None:
    """Install shard results on the parent engine for metric collection.

    All writes are absolute assignments, so applying inline-transport
    stats (where executors already mutated the engine's own objects) is
    idempotent and both transports land in identical states.
    """
    kernel = engine._k
    kernel.reset()
    kernel.now = final_now
    kernel.events_processed = controller.events_processed
    engine._finished = True
    engine._throttled_arrivals = 0
    flush_times = [
        s["flush_time"] for s in stats if s["flush_time"] is not None
    ]
    engine._flush_time = min(flush_times) if flush_times else None
    engine._last_source_time = max(
        s["last_source_time"] for s in stats
    )
    runtimes = engine._runtimes
    ledger: dict = {}
    for shard_stats in stats:
        for gid, (busy, peak, wait, served, emitted) in shard_stats[
            "runtimes"
        ].items():
            runtime = runtimes[gid]
            runtime.busy_time = busy
            runtime.queue_peak = peak
            runtime.wait_time = wait
            runtime.served = served
            runtime.emitted = emitted
        for gid, (received, lats, arrivals, results) in shard_stats[
            "sinks"
        ].items():
            logic = runtimes[gid].logic
            logic.received = received
            logic.latencies = list(lats)
            logic.arrival_times = list(arrivals)
            logic.results = list(results)
        ledger.update(shard_stats["ledger"])
    #: merged per-stream fingerprints; the runner's DET609 cross-check
    #: compares a forked run's ledger against an inline reference rerun
    engine._shard_ledger = ledger
    detector = engine.race_detector
    if detector is not None:
        detector.rng_ledger = dict(ledger)


def run_sharded(engine):
    """Execute a built engine under ``config.shards`` and collect metrics."""
    config = engine.config
    shards = config.shards
    if not engine._net_affine:
        raise ConfigurationError(
            "sharded execution requires the default affine network model; "
            "a custom transfer_delay has no static lookahead"
        )
    lookahead = engine._net_base_latency
    if lookahead <= 0.0:
        raise ConfigurationError(
            "sharded execution requires network base latency > 0; zero "
            "inter-node delay leaves no conservative time window"
        )
    for injection in config.stalls:
        if injection.op_id not in engine.physical.op_subtasks:
            raise SimulationError(
                f"stall targets unknown operator {injection.op_id!r}"
            )
    node_of_gid = [runtime.node_id for runtime in engine._runtimes]
    shard_of_node = partition_nodes(node_of_gid, shards)
    shard_of_gid = shard_of_gids(node_of_gid, shard_of_node)
    owned: list[list[int]] = [[] for _ in range(shards)]
    for gid, shard in enumerate(shard_of_gid):
        owned[shard].append(gid)

    use_fork = (
        shards > 1
        and not engine.shard_force_inline
        and "fork" in multiprocessing.get_all_start_methods()
    )
    handles: list = []
    if use_fork:
        ctx = multiprocessing.get_context("fork")
        for i in range(shards):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_shard_child,
                args=(
                    child_conn,
                    parent_conn,
                    engine,
                    i,
                    owned[i],
                    shard_of_gid,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            handles.append(_ForkHandle(parent_conn, process))
    else:
        for i in range(shards):
            handles.append(
                _InlineHandle(
                    ShardExecutor(engine, i, owned[i], shard_of_gid)
                )
            )

    controller = ShardController(
        handles,
        lookahead=lookahead,
        max_events=config.max_events,
        max_flush_rounds=len(engine.logical.operators) + 2,
    )
    try:
        final_now = controller.run()
        stats = [handle.fetch_stats() for handle in handles]
    except BudgetExceededError:
        raise SimulationError(
            f"event budget exceeded ({config.max_events}); "
            "the configuration likely diverged"
        ) from None
    finally:
        for handle in handles:
            handle.close()

    _apply_stats(engine, stats, final_now, controller)
    metrics = engine._collect_metrics()
    metrics.extras["shards"] = {
        "shards": shards,
        "epochs": controller.epochs,
        "flush_rounds": controller.flush_rounds,
    }
    return metrics
