"""Filter predicates.

Table 3 lists the filter functions the workload generator enumerates over:
``<, >, <=, >=, ==, !=`` for numeric fields plus ``startswith, endswith,
contains`` for strings. A :class:`Predicate` binds one such function to a
field index and a literal; it is a plain callable on tuple values, so the
simulated filters evaluate real data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigurationError
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType

__all__ = ["FilterFunction", "Predicate"]


class FilterFunction(enum.Enum):
    """The comparison functions available to generated filters."""

    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    STARTS_WITH = "startswith"
    ENDS_WITH = "endswith"
    CONTAINS = "contains"

    @property
    def is_string_function(self) -> bool:
        """Whether the function applies only to string fields."""
        return self in (
            FilterFunction.STARTS_WITH,
            FilterFunction.ENDS_WITH,
            FilterFunction.CONTAINS,
        )

    def applies_to(self, dtype: DataType) -> bool:
        """Whether this function is valid on a field of the given type."""
        if self.is_string_function:
            return dtype is DataType.STRING
        if self in (FilterFunction.EQ, FilterFunction.NE):
            return True
        return dtype.is_numeric


_NUMERIC_OPS = {
    FilterFunction.LT: lambda value, literal: value < literal,
    FilterFunction.GT: lambda value, literal: value > literal,
    FilterFunction.LE: lambda value, literal: value <= literal,
    FilterFunction.GE: lambda value, literal: value >= literal,
    FilterFunction.EQ: lambda value, literal: value == literal,
    FilterFunction.NE: lambda value, literal: value != literal,
}

_STRING_OPS = {
    FilterFunction.STARTS_WITH: lambda value, literal: value.startswith(
        literal
    ),
    FilterFunction.ENDS_WITH: lambda value, literal: value.endswith(literal),
    FilterFunction.CONTAINS: lambda value, literal: literal in value,
}


@dataclass(frozen=True)
class Predicate:
    """``field[field_index] <function> literal`` over tuple values.

    ``selectivity_hint`` records the selectivity the workload generator
    targeted when drawing the literal (see :mod:`repro.workload.selectivity`);
    the cost models use it as an operator feature, exactly as the paper feeds
    operator selectivities into its learned models.
    """

    field_index: int
    function: FilterFunction
    literal: Any
    selectivity_hint: float = 0.5

    def __post_init__(self) -> None:
        if self.field_index < 0:
            raise ConfigurationError("field_index must be non-negative")
        if not 0.0 <= self.selectivity_hint <= 1.0:
            raise ConfigurationError(
                f"selectivity_hint must be in [0, 1], "
                f"got {self.selectivity_hint}"
            )
        if self.function.is_string_function and not isinstance(
            self.literal, str
        ):
            raise ConfigurationError(
                f"{self.function.value} needs a string literal, "
                f"got {type(self.literal).__name__}"
            )
        # evaluate() runs once per tuple per filter: resolve the
        # comparison function once instead of re-deriving it from the
        # enum on every call (frozen dataclass, hence __setattr__).
        ops = _STRING_OPS if self.function.is_string_function else _NUMERIC_OPS
        object.__setattr__(self, "_op", ops[self.function])

    def evaluate(self, tup: StreamTuple) -> bool:
        """Evaluate the predicate against one tuple's values."""
        return self._op(tup.values[self.field_index], self.literal)

    def mask(self, column) -> Any:
        """Evaluate the predicate over a whole column (batch mode).

        Takes the NumPy array holding field ``field_index`` for every row
        of a :class:`~repro.sps.columnar.TupleBatch` and returns a boolean
        array, row ``i`` true iff :meth:`evaluate` would pass row ``i``.
        Numeric columns compare vectorized (the ``_NUMERIC_OPS`` lambdas
        broadcast over arrays unchanged); string functions and object
        columns evaluate the bound op per element.
        """
        if (
            column.dtype.kind in "bif"
            and not self.function.is_string_function
            and isinstance(self.literal, (int, float, bool))
        ):
            return self._op(column, self.literal)
        import numpy as np

        op = self._op
        literal = self.literal
        return np.fromiter(
            (bool(op(value, literal)) for value in column.tolist()),
            dtype=bool,
            count=len(column),
        )

    def __call__(self, tup: StreamTuple) -> bool:
        return self.evaluate(tup)

    def describe(self) -> str:
        """Human-readable form, e.g. ``f2 < 0.37``."""
        return f"f{self.field_index} {self.function.value} {self.literal!r}"
