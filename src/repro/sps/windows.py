"""Window assigners and aggregate functions.

Table 3 enumerates window *types* (sliding, tumbling) crossed with window
*policies* (time, count), window durations / lengths, sliding ratios, and the
aggregate functions ``min, max, avg, mean, sum``. This module implements all
four assigner combinations with real window semantics; the window operators
in :mod:`repro.sps.operators.aggregate` and ``...join`` build on them.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

__all__ = [
    "Window",
    "WindowAssigner",
    "TumblingTimeWindows",
    "SlidingTimeWindows",
    "TumblingCountWindows",
    "SlidingCountWindows",
    "AggregateFunction",
    "index_range_arrays",
    "window_end_arrays",
]


def window_end_arrays(assigner: "WindowAssigner", indices):
    """Vectorized ``window_end`` over an int64 window-index array.

    Elementwise bit-equal to ``assigner.window_end`` (same ``index *
    step + duration`` expression).  Time-based assigners only.
    """
    if isinstance(assigner, TumblingTimeWindows):
        return indices * assigner.duration + assigner.duration
    if not isinstance(assigner, SlidingTimeWindows):
        raise ConfigurationError(
            f"window_end_arrays needs a time-based assigner, "
            f"got {type(assigner).__name__}"
        )
    return indices * assigner.slide + assigner.duration


def index_range_arrays(assigner: "WindowAssigner", times):
    """Vectorized ``assign_index_range`` over a float64 timestamp array.

    Returns ``(lo, hi)`` int64 arrays; row ``i`` equals
    ``assigner.assign_index_range(times[i])`` bit-for-bit — the same
    IEEE division, floor, and correction predicates, evaluated
    array-wide (the correction loop runs at most a few passes).  Batch
    mode's window kernels use this to assign a whole micro-batch at
    once.  Time-based assigners only.
    """
    import numpy as np

    if isinstance(assigner, TumblingTimeWindows):
        duration = assigner.duration
        index = np.floor(times / duration).astype(np.int64)
        index[index * duration > times] -= 1
        return index, index
    if not isinstance(assigner, SlidingTimeWindows):
        raise ConfigurationError(
            f"index_range_arrays needs a time-based assigner, "
            f"got {type(assigner).__name__}"
        )
    slide = assigner.slide
    duration = assigner.duration
    hi = np.floor(times / slide).astype(np.int64)
    hi[hi * slide > times] -= 1
    threshold = times - duration
    lo = np.floor(threshold / slide).astype(np.int64) - 2
    while True:
        mask = (lo * slide <= threshold) | (lo * slide + duration <= times)
        if not mask.any():
            return lo, hi
        lo[mask] += 1


@dataclass(frozen=True, order=True)
class Window:
    """A half-open time interval ``[start, end)`` in seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"window end must exceed start, got [{self.start}, {self.end})"
            )

    def contains(self, timestamp: float) -> bool:
        """Whether a timestamp falls inside the window."""
        return self.start <= timestamp < self.end

    @property
    def duration(self) -> float:
        """Window length in seconds."""
        return self.end - self.start


class WindowAssigner:
    """Base class of the four type x policy window combinations.

    Time-based assigners additionally expose an *index space*: window
    ``i`` is ``[window_start(i), window_end(i))`` and
    :meth:`assign_index_range` returns the inclusive index interval of
    the windows containing a timestamp.  Slice-based operators
    (:mod:`repro.sps.operators.aggregate`, ``...join``) work entirely in
    index space, which avoids materialising ``duration/slide``
    :class:`Window` objects per tuple.  The index API is defined to be
    bit-for-bit consistent with :meth:`assign`: window ``i`` is in the
    range iff a :class:`Window` with the same start would be returned.
    """

    #: Whether windows are bounded by time (vs. by tuple count).
    is_time_based: bool = True

    def describe(self) -> str:
        """Short label used in plan descriptions and ML features."""
        raise NotImplementedError

    @property
    def feature_length(self) -> float:
        """Window extent as an ML feature: seconds or tuple count."""
        raise NotImplementedError

    @property
    def feature_slide_ratio(self) -> float:
        """slide / length; 1.0 for tumbling windows."""
        raise NotImplementedError


class TumblingTimeWindows(WindowAssigner):
    """Fixed, non-overlapping time windows of ``duration`` seconds."""

    is_time_based = True

    def __init__(self, duration: float) -> None:
        if duration <= 0:
            raise ConfigurationError("window duration must be positive")
        self.duration = float(duration)
        # (start, end, [Window]) of the last assignment: consecutive
        # timestamps usually hit the same window, so skip the floor and
        # the Window construction. Never mutated by callers.
        self._last: tuple[float, float, list[Window]] | None = None

    def assign(self, event_time: float) -> list[Window]:
        """The single window containing the timestamp."""
        last = self._last
        if last is not None and last[0] <= event_time < last[1]:
            return last[2]
        index = math.floor(event_time / self.duration)
        # Floating point can push index*duration past event_time.
        if index * self.duration > event_time:
            index -= 1
        start = index * self.duration
        windows = [Window(start, start + self.duration)]
        self._last = (start, start + self.duration, windows)
        return windows

    def assign_index_range(self, event_time: float) -> tuple[int, int]:
        """Inclusive index interval of windows containing the timestamp."""
        index = math.floor(event_time / self.duration)
        if index * self.duration > event_time:
            index -= 1
        return index, index

    def window_start(self, index: int) -> float:
        """Start of window ``index`` (same expression as :meth:`assign`)."""
        return index * self.duration

    def window_end(self, index: int) -> float:
        """End of window ``index`` (same expression as :meth:`assign`)."""
        return index * self.duration + self.duration

    def describe(self) -> str:
        return f"tumbling-time({self.duration * 1e3:g}ms)"

    @property
    def feature_length(self) -> float:
        return self.duration

    @property
    def feature_slide_ratio(self) -> float:
        return 1.0


class SlidingTimeWindows(WindowAssigner):
    """Overlapping time windows: length ``duration``, advancing by ``slide``.

    The paper's sliding ratio parameter is ``slide / duration`` in
    ``[0.3, 0.7]``; a ratio of 1.0 degenerates to tumbling windows.
    """

    is_time_based = True

    def __init__(self, duration: float, slide: float) -> None:
        if duration <= 0 or slide <= 0:
            raise ConfigurationError("duration and slide must be positive")
        if slide > duration:
            raise ConfigurationError(
                f"slide ({slide}) must not exceed duration ({duration})"
            )
        self.duration = float(duration)
        self.slide = float(slide)

    def assign(self, event_time: float) -> list[Window]:
        """All windows containing the timestamp (~duration/slide of them).

        Starts are computed as ``index * slide`` per index (not by repeated
        subtraction) so they agree bit-for-bit with
        :meth:`Window.contains` under floating point.
        """
        index = math.floor(event_time / self.slide)
        if index * self.slide > event_time:
            index -= 1
        windows = []
        while index * self.slide > event_time - self.duration:
            start = index * self.slide
            window = Window(start, start + self.duration)
            # start + duration can round *down* to exactly event_time
            # (half-open end), so re-check containment bit-for-bit.
            if window.contains(event_time):
                windows.append(window)
            index -= 1
        windows.reverse()
        return windows

    def assign_index_range(self, event_time: float) -> tuple[int, int]:
        """Inclusive index interval of windows containing the timestamp.

        Uses the exact same floating-point predicates as :meth:`assign`
        (``index * slide`` compared against the timestamp, the half-open
        end re-checked through the same ``start + duration`` rounding),
        so the interval ``[lo, hi]`` covers precisely the windows
        ``assign`` would return.  ``lo > hi`` when rounding leaves no
        containing window.  O(1): the scan below starts at most a couple
        of indices under the true lower bound.
        """
        slide = self.slide
        duration = self.duration
        hi = math.floor(event_time / slide)
        if hi * slide > event_time:
            hi -= 1
        threshold = event_time - duration
        lo = math.floor(threshold / slide) - 2
        # Window lo is included iff lo*slide > event_time - duration
        # (assign's loop bound) and its half-open end exceeds the
        # timestamp (assign's bit-for-bit containment re-check).
        while lo * slide <= threshold or lo * slide + duration <= event_time:
            lo += 1
        return lo, hi

    def window_start(self, index: int) -> float:
        """Start of window ``index`` (same expression as :meth:`assign`)."""
        return index * self.slide

    def window_end(self, index: int) -> float:
        """End of window ``index`` (same expression as :meth:`assign`)."""
        return index * self.slide + self.duration

    def describe(self) -> str:
        return (
            f"sliding-time({self.duration * 1e3:g}ms,"
            f"{self.slide * 1e3:g}ms)"
        )

    @property
    def feature_length(self) -> float:
        return self.duration

    @property
    def feature_slide_ratio(self) -> float:
        return self.slide / self.duration


class TumblingCountWindows(WindowAssigner):
    """Non-overlapping windows of exactly ``length`` tuples (per key)."""

    is_time_based = False

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ConfigurationError("window length must be positive")
        self.length = int(length)

    def describe(self) -> str:
        return f"tumbling-count({self.length})"

    @property
    def feature_length(self) -> float:
        return float(self.length)

    @property
    def feature_slide_ratio(self) -> float:
        return 1.0


class SlidingCountWindows(WindowAssigner):
    """Windows of ``length`` tuples firing every ``slide`` tuples (per key)."""

    is_time_based = False

    def __init__(self, length: int, slide: int) -> None:
        if length <= 0 or slide <= 0:
            raise ConfigurationError("length and slide must be positive")
        if slide > length:
            raise ConfigurationError(
                f"slide ({slide}) must not exceed length ({length})"
            )
        self.length = int(length)
        self.slide = int(slide)

    def describe(self) -> str:
        return f"sliding-count({self.length},{self.slide})"

    @property
    def feature_length(self) -> float:
        return float(self.length)

    @property
    def feature_slide_ratio(self) -> float:
        return self.slide / self.length


class AggregateFunction(enum.Enum):
    """Window aggregate functions of Table 3.

    The paper lists both ``avg`` and ``mean``; they compute the same value
    and are kept as distinct enumeration members so generated queries cover
    the paper's full parameter range.
    """

    MIN = "min"
    MAX = "max"
    SUM = "sum"
    AVG = "avg"
    MEAN = "mean"
    COUNT = "count"

    def apply(self, values: Sequence[float]) -> float:
        """Aggregate a non-empty sequence of numeric values."""
        if not values and self is not AggregateFunction.COUNT:
            raise ConfigurationError(
                f"{self.value} of an empty window is undefined"
            )
        if self is AggregateFunction.MIN:
            return float(min(values))
        if self is AggregateFunction.MAX:
            return float(max(values))
        if self is AggregateFunction.SUM:
            return float(sum(values))
        if self is AggregateFunction.COUNT:
            return float(len(values))
        return float(sum(values)) / len(values)  # AVG and MEAN
