"""Fast analytic latency estimator.

A closed-form companion to the discrete-event engine: per-operator M/G/1
queueing sojourn times, shuffle/serde overhead, expected cross-node network
delay and window residence times, combined along the critical source-to-sink
path of the DAG. It evaluates a (plan, cluster) pair in microseconds instead
of seconds, which is what makes generating the paper's large ML training
corpora (thousands of labelled queries, Exp 3) tractable.

The estimator and the engine share the exact same cost profiles; the
``bench_ablation_engine`` benchmark checks they agree on ordering and rough
magnitude, which is the property the ML experiments rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.common.errors import PlanError
from repro.sps.costs import COORD_LOG_COST_S, SERDE_COST_S
from repro.sps.logical import LogicalOperator, LogicalPlan, OperatorKind
from repro.sps.partitioning import ForwardPartitioner

__all__ = ["AnalyticEstimate", "AnalyticEstimator"]


@dataclass(frozen=True)
class AnalyticEstimate:
    """Result of one analytic evaluation."""

    latency_s: float
    throughput: float
    bottleneck_op: str
    bottleneck_utilization: float
    operator_utilization: dict[str, float]

    @property
    def latency_ms(self) -> float:
        """Estimated end-to-end latency in milliseconds."""
        return self.latency_s * 1e3


class AnalyticEstimator:
    """Estimates end-to-end latency of a PQP on a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        run_duration_s: float = 10.0,
        service_cv: float = 0.3,
    ) -> None:
        self.cluster = cluster
        self.run_duration_s = run_duration_s
        self.service_cv = service_cv
        speeds = [node.speed_factor for node in cluster.nodes]
        self._avg_speed = float(np.mean(speeds))
        nics = [node.hardware.nic_gbps for node in cluster.nodes]
        self._avg_bandwidth = float(np.mean(nics)) * 1e9 / 8.0
        self._num_nodes = len(cluster.nodes)

    # ------------------------------------------------------------ internals

    def _input_rates(self, plan: LogicalPlan) -> dict[str, float]:
        """Steady-state tuple arrival rate into each operator."""
        rates: dict[str, float] = {}
        output: dict[str, float] = {}
        for op in plan.operators_in_order():
            if op.kind is OperatorKind.SOURCE:
                rate_in = float(op.metadata.get("event_rate", 1000.0))
            else:
                rate_in = sum(
                    output[edge.src] for edge in plan.in_edges(op.op_id)
                )
            rates[op.op_id] = rate_in
            output[op.op_id] = rate_in * op.selectivity
        return rates

    def _contention(self, plan: LogicalPlan) -> float:
        total_subtasks = plan.total_subtasks()
        return max(1.0, total_subtasks / self.cluster.total_slots)

    def _service_time(
        self, op: LogicalOperator, plan: LogicalPlan, contention: float
    ) -> float:
        base = (
            op.cost.base_cpu_s
            * op.cost.coordination_factor(op.parallelism)
            * contention
            / self._avg_speed
        )
        shuffle = 0.0
        for edge in plan.out_edges(op.op_id):
            if isinstance(edge.partitioner, ForwardPartitioner):
                continue
            consumers = plan.operator(edge.dst).parallelism
            per_output = SERDE_COST_S + COORD_LOG_COST_S * math.log2(
                max(consumers, 2)
            )
            if edge.partitioner.is_broadcast:
                per_output *= consumers
            shuffle += per_output
        return base + op.selectivity * shuffle

    def _sojourn(
        self, rate_in: float, parallelism: int, service: float
    ) -> tuple[float, float]:
        """(expected sojourn time, utilization) of one instance."""
        lam = rate_in / max(parallelism, 1)
        rho = lam * service
        if rho < 0.98:
            cv2 = self.service_cv * self.service_cv
            wait = (rho * service * (1.0 + cv2) / 2.0) / (1.0 - rho)
            return wait + service, rho
        # Saturated: the backlog grows throughout the run; a tuple arriving
        # midway waits for roughly half the accumulated excess work.
        excess = (rho - 1.0) / max(rho, 1e-9)
        wait = 0.5 * self.run_duration_s * excess
        return wait + service, rho

    def _network_delay(self, plan: LogicalPlan, op: LogicalOperator) -> float:
        """Expected per-tuple network delay entering this operator."""
        delay = 0.0
        spec = self.cluster.network.spec
        for edge in plan.in_edges(op.op_id):
            if isinstance(edge.partitioner, ForwardPartitioner):
                continue
            consumers = max(op.parallelism, 1)
            spread = min(consumers, self._num_nodes)
            p_cross = 1.0 - 1.0 / max(spread, 1)
            src_schema = plan.operator(edge.src).output_schema
            size = src_schema.tuple_size_bytes() if src_schema else 64.0
            delay = max(
                delay,
                p_cross * (spec.base_latency_s + size / self._avg_bandwidth),
            )
        return delay

    def _window_residence(self, op: LogicalOperator, rate_in: float) -> float:
        if op.window is None:
            return 0.0
        if op.window.is_time_based:
            duration = op.window.feature_length
            if op.kind is OperatorKind.WINDOW_JOIN:
                # Matched build tuples are on average half a window old.
                return 0.5 * duration
            # Aggregates report latency from the earliest contributor,
            # which waited the full window.
            return duration
        # Count windows fill per key: residence = length / per-key rate.
        keys = max(int(op.metadata.get("key_cardinality", 1)), 1)
        per_key_rate = rate_in / keys
        if per_key_rate <= 0:
            return 0.0
        return min(
            op.window.feature_length / per_key_rate, self.run_duration_s
        )

    # -------------------------------------------------------------- public

    def estimate(self, plan: LogicalPlan) -> AnalyticEstimate:
        """Evaluate the plan; raises :class:`PlanError` if it is invalid."""
        plan.validate()
        rates = self._input_rates(plan)
        contention = self._contention(plan)
        latency_to: dict[str, float] = {}
        utilization: dict[str, float] = {}
        bottleneck_op = ""
        bottleneck_rho = -1.0
        for op in plan.operators_in_order():
            rate_in = rates[op.op_id]
            service = self._service_time(op, plan, contention)
            sojourn, rho = self._sojourn(rate_in, op.parallelism, service)
            utilization[op.op_id] = rho
            if rho > bottleneck_rho:
                bottleneck_rho = rho
                bottleneck_op = op.op_id
            upstream = plan.in_edges(op.op_id)
            base = (
                max(latency_to[e.src] for e in upstream) if upstream else 0.0
            )
            latency_to[op.op_id] = (
                base
                + sojourn
                + self._network_delay(plan, op)
                + self._window_residence(op, rate_in)
            )
        sinks = plan.sinks()
        if not sinks:
            raise PlanError("plan has no sink")
        latency = max(latency_to[s.op_id] for s in sinks)
        throughput = sum(rates[s.op_id] for s in sinks)
        return AnalyticEstimate(
            latency_s=latency,
            throughput=throughput,
            bottleneck_op=bottleneck_op,
            bottleneck_utilization=bottleneck_rho,
            operator_utilization=utilization,
        )

    def noisy_latency(
        self, plan: LogicalPlan, rng: np.random.Generator, cv: float = 0.08
    ) -> float:
        """A latency label with measurement noise, for ML corpus generation."""
        estimate = self.estimate(plan)
        sigma = math.sqrt(math.log(1.0 + cv * cv))
        return estimate.latency_s * float(
            rng.lognormal(-0.5 * sigma * sigma, sigma)
        )
