"""Tuple schemas.

The paper's workload generator varies tuple width (1-15 data items) and the
data type of each item (string, integer, double); a :class:`Schema` captures
one such choice and knows how to estimate the wire size of its tuples, which
the network model charges for cross-node transfers.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

__all__ = ["DataType", "Field", "Schema"]


class DataType(enum.Enum):
    """Data item types supported by the workload generator (Table 3)."""

    INT = "int"
    DOUBLE = "double"
    STRING = "string"

    @property
    def wire_size(self) -> int:
        """Estimated serialized size in bytes of one value."""
        if self is DataType.STRING:
            return 24  # length header + typical short string payload
        return 8

    @property
    def is_numeric(self) -> bool:
        """Whether order comparisons (<, >) are meaningful natively."""
        return self is not DataType.STRING


@dataclass(frozen=True)
class Field:
    """One named, typed data item of a tuple."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("field name must be non-empty")


class Schema:
    """An ordered set of fields describing every tuple of a stream."""

    def __init__(self, fields: Sequence[Field]) -> None:
        if not fields:
            raise ConfigurationError("a schema needs at least one field")
        names = [field.name for field in fields]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate field names in {names}")
        self._fields = tuple(fields)
        self._index = {field.name: i for i, field in enumerate(self._fields)}

    @property
    def fields(self) -> tuple[Field, ...]:
        """The fields in tuple order."""
        return self._fields

    @property
    def width(self) -> int:
        """Tuple width: number of data items per tuple."""
        return len(self._fields)

    def index_of(self, name: str) -> int:
        """Position of a field by name."""
        try:
            return self._index[name]
        except KeyError:
            known = ", ".join(self._index)
            raise ConfigurationError(
                f"unknown field {name!r}; schema has: {known}"
            ) from None

    def field(self, name: str) -> Field:
        """Look up a field by name."""
        return self._fields[self.index_of(name)]

    def tuple_size_bytes(self) -> int:
        """Estimated serialized tuple size (values + per-tuple header)."""
        header = 16  # timestamp + key header
        return header + sum(f.dtype.wire_size for f in self._fields)

    def fields_of_type(self, dtype: DataType) -> list[Field]:
        """All fields with the given type, in order."""
        return [field for field in self._fields if field.dtype is dtype]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{f.name}:{f.dtype.value}" for f in self._fields)
        return f"Schema({inner})"


def uniform_schema(width: int, dtype: DataType, prefix: str = "f") -> Schema:
    """Build a schema of ``width`` identically-typed fields."""
    if width <= 0:
        raise ConfigurationError("schema width must be positive")
    return Schema([Field(f"{prefix}{i}", dtype) for i in range(width)])
