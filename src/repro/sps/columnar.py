"""Columnar micro-batches.

The scalar engine moves one :class:`~repro.sps.tuples.StreamTuple` per
event; per-tuple Python dispatch dominates its cost.  Batch mode
(:mod:`repro.sps.batch`) instead moves :class:`TupleBatch` objects —
fixed-size micro-batches whose values live in NumPy *column* arrays and
whose per-tuple metadata (event/origin times, key, payload size, the
data-plane timestamp and a global emission sequence) live in parallel
arrays.  Operators with a vectorized form consume whole batches; all
others fall back to per-tuple processing via :meth:`TupleBatch.to_tuples`.

Columns are typed per field from the actual values: homogeneous numeric
fields become ``int64``/``float64`` arrays, anything else (strings,
Nones, mixed types) an ``object`` array.  Streams whose rows disagree on
arity are stored row-wise (``columns is None``) and force the scalar
fallback — vectorized operators check :attr:`TupleBatch.columns` first.

NumPy is a hard dependency of the simulator at large, but batch mode is
the layer that genuinely cannot degrade without it, so this module keeps
the import soft and :func:`require_numpy` raises a clear
:class:`~repro.common.errors.ConfigurationError` when batch execution is
requested on an interpreter without NumPy.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ConfigurationError
from repro.sps.tuples import StreamTuple

try:  # pragma: no cover - numpy is installed in every supported env
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via require_numpy tests
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = ["HAVE_NUMPY", "TupleBatch", "require_numpy", "sequential_sum"]

_NUMERIC_TYPES = (int, float, bool)


def require_numpy() -> None:
    """Raise a helpful error when batch mode is requested without NumPy."""
    if not HAVE_NUMPY:
        raise ConfigurationError(
            "batch_size requires numpy (>= 1.24): batch mode evaluates "
            "operators over NumPy column arrays. Install numpy, or leave "
            "batch_size unset to use the scalar engine."
        )


def sequential_sum(acc: float, values) -> float:
    """Left fold ``((acc + v0) + v1) + ...`` over a float64 array.

    ``np.add.reduce``/``reduceat`` switch to pairwise summation above a
    few elements and would re-associate the fold; ``np.cumsum`` is a
    sequential left scan at every size, so its last prefix is bit-equal
    to the scalar accumulation loop the engine's window operators run.
    """
    n = len(values)
    if n == 0:
        return acc
    if n == 1:
        return float(acc + values[0])
    buf = np.empty(n + 1, dtype=np.float64)
    buf[0] = acc
    buf[1:] = values
    return float(np.cumsum(buf)[-1])


def _column_from(items: list) -> "np.ndarray":
    """One field's values as the tightest safe array type."""
    for item in items:
        if not isinstance(item, _NUMERIC_TYPES):
            break
    else:
        try:
            array = np.asarray(items)
        except (OverflowError, ValueError):
            array = None
        if array is not None and array.dtype.kind in "bif":
            return array
    array = np.empty(len(items), dtype=object)
    array[:] = items
    return array


class TupleBatch:
    """A micro-batch of tuples in columnar form.

    ``columns[j][i]`` is field ``j`` of row ``i`` (or ``columns is None``
    for ragged streams, with rows kept in :attr:`rows`).  ``now`` is the
    data-plane timestamp each row is *processed* at — the ideal
    pipeline time batch mode windows against, independent of batch
    granularity — and ``seq`` the global emission order used to merge
    streams deterministically.
    """

    __slots__ = (
        "columns",
        "rows",
        "event_time",
        "origin_time",
        "key",
        "size_bytes",
        "now",
        "seq",
    )

    def __init__(
        self,
        columns: tuple | None,
        rows,
        event_time,
        origin_time,
        key,
        size_bytes,
        now,
        seq,
    ) -> None:
        self.columns = columns
        self.rows = rows
        self.event_time = event_time
        self.origin_time = origin_time
        self.key = key
        self.size_bytes = size_bytes
        self.now = now
        self.seq = seq

    def __len__(self) -> int:
        return len(self.event_time)

    # ------------------------------------------------------------ building

    @classmethod
    def from_tuples(
        cls, tuples: list[StreamTuple], now, seq
    ) -> "TupleBatch":
        """Columnarize scalar tuples (``now``/``seq`` are arrays)."""
        n = len(tuples)
        event_time = np.empty(n, dtype=np.float64)
        origin_time = np.empty(n, dtype=np.float64)
        size_bytes = np.empty(n, dtype=np.float64)
        keys: list[Any] = []
        any_key = False
        arity: int | None = None
        ragged = False
        for i, tup in enumerate(tuples):
            event_time[i] = tup.event_time
            origin_time[i] = tup.origin_time
            size_bytes[i] = tup.size_bytes
            key = tup.key
            keys.append(key)
            if key is not None:
                any_key = True
            width = len(tup.values)
            if arity is None:
                arity = width
            elif width != arity:
                ragged = True
        columns: tuple | None
        rows = None
        if ragged or arity is None:
            columns = None
            rows = np.empty(n, dtype=object)
            rows[:] = [tup.values for tup in tuples]
        else:
            columns = tuple(
                _column_from([tup.values[j] for tup in tuples])
                for j in range(arity)
            )
        key_col = _column_from(keys) if any_key else None
        return cls(
            columns,
            rows,
            event_time,
            origin_time,
            key_col,
            size_bytes,
            np.asarray(now, dtype=np.float64),
            np.asarray(seq, dtype=np.int64),
        )

    # ----------------------------------------------------------- reshaping

    def take(self, indices) -> "TupleBatch":
        """Row subset/permutation by an integer index array."""
        columns = self.columns
        return TupleBatch(
            tuple(col[indices] for col in columns)
            if columns is not None
            else None,
            self.rows[indices] if self.rows is not None else None,
            self.event_time[indices],
            self.origin_time[indices],
            self.key[indices] if self.key is not None else None,
            self.size_bytes[indices],
            self.now[indices],
            self.seq[indices],
        )

    def compress(self, mask) -> "TupleBatch":
        """Rows where the boolean mask holds (vectorized filter)."""
        return self.take(np.flatnonzero(mask))

    def slice(self, start: int, stop: int) -> "TupleBatch":
        """Contiguous row range as array views (no copies)."""
        columns = self.columns
        return TupleBatch(
            tuple(col[start:stop] for col in columns)
            if columns is not None
            else None,
            self.rows[start:stop] if self.rows is not None else None,
            self.event_time[start:stop],
            self.origin_time[start:stop],
            self.key[start:stop] if self.key is not None else None,
            self.size_bytes[start:stop],
            self.now[start:stop],
            self.seq[start:stop],
        )

    @staticmethod
    def concat(batches: list["TupleBatch"]) -> "TupleBatch":
        """Row-concatenate batches (all columnar & same arity, or rebuilt
        row-wise when shapes disagree)."""
        if len(batches) == 1:
            return batches[0]
        arities = {
            len(b.columns) if b.columns is not None else -1 for b in batches
        }
        if len(arities) == 1 and -1 not in arities:
            arity = arities.pop()
            columns = tuple(
                _concat_field([b.columns[j] for b in batches])
                for j in range(arity)
            )
            rows = None
        else:
            columns = None
            parts = []
            for b in batches:
                if b.rows is not None:
                    parts.extend(b.rows)
                else:
                    parts.extend(zip(*[c.tolist() for c in b.columns]))
            rows = np.empty(len(parts), dtype=object)
            rows[:] = parts
        any_key = any(b.key is not None for b in batches)
        key = None
        if any_key:
            key = _concat_field(
                [
                    b.key
                    if b.key is not None
                    else np.full(len(b), None, dtype=object)
                    for b in batches
                ]
            )
        return TupleBatch(
            columns,
            rows,
            np.concatenate([b.event_time for b in batches]),
            np.concatenate([b.origin_time for b in batches]),
            key,
            np.concatenate([b.size_bytes for b in batches]),
            np.concatenate([b.now for b in batches]),
            np.concatenate([b.seq for b in batches]),
        )

    def with_columns(self, columns: tuple) -> "TupleBatch":
        """Same rows with transformed values (vectorized map)."""
        return TupleBatch(
            tuple(np.asarray(col) for col in columns),
            None,
            self.event_time,
            self.origin_time,
            self.key,
            self.size_bytes,
            self.now,
            self.seq,
        )

    def repeat_rows(self, counts, columns: tuple) -> "TupleBatch":
        """Fan-out expansion (vectorized flat-map).

        Row ``i`` of this batch yields ``counts[i]`` consecutive output
        rows whose values come from the pre-expanded ``columns`` and
        whose provenance metadata (timestamps, key, payload size) is row
        ``i``'s, repeated — matching what per-tuple ``with_values``
        emission would produce.  ``seq`` is left unassigned; the
        executor numbers emissions.
        """
        return TupleBatch(
            tuple(np.asarray(col) for col in columns),
            None,
            np.repeat(self.event_time, counts),
            np.repeat(self.origin_time, counts),
            np.repeat(self.key, counts) if self.key is not None else None,
            np.repeat(self.size_bytes, counts),
            np.repeat(self.now, counts),
            None,
        )

    def with_key(self, key) -> "TupleBatch":
        """Same rows re-keyed (vectorized hash-exchange rekey)."""
        return TupleBatch(
            self.columns,
            self.rows,
            self.event_time,
            self.origin_time,
            key,
            self.size_bytes,
            self.now,
            self.seq,
        )

    # --------------------------------------------------------- scalar view

    def values_lists(self) -> list[list]:
        """Per-field Python value lists (``tolist`` per column)."""
        if self.columns is None:
            return []
        return [col.tolist() for col in self.columns]

    def to_tuples(self) -> list[StreamTuple]:
        """Materialize scalar tuples (the fallback boundary)."""
        n = len(self)
        if self.columns is not None:
            value_rows = list(zip(*self.values_lists())) if n else []
        else:
            value_rows = list(self.rows)
        event_time = self.event_time.tolist()
        origin_time = self.origin_time.tolist()
        size_bytes = self.size_bytes.tolist()
        keys = self.key.tolist() if self.key is not None else None
        out = []
        for i in range(n):
            tup = StreamTuple.__new__(StreamTuple)
            tup.values = tuple(value_rows[i])
            tup.key = keys[i] if keys is not None else None
            tup.event_time = event_time[i]
            tup.origin_time = origin_time[i]
            tup.size_bytes = size_bytes[i]
            tup.prov = None
            out.append(tup)
        return out


def _concat_field(arrays: list) -> "np.ndarray":
    """Concatenate one field's chunk arrays, widening dtype if needed."""
    kinds = {a.dtype.kind for a in arrays}
    if "O" in kinds and len(kinds) > 1:
        out = np.empty(sum(len(a) for a in arrays), dtype=object)
        offset = 0
        for a in arrays:
            out[offset : offset + len(a)] = a.tolist()
            offset += len(a)
        return out
    return np.concatenate(arrays)
