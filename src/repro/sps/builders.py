"""Convenience constructors for logical operators.

The workload generator and the application suite assemble PQPs from these;
each helper wires the right kind, cost profile, logic factory and ML-feature
metadata. ``logic_factory`` is called once per subtask, so state is always
per-instance.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.common.errors import ConfigurationError
from repro.sps.costs import OperatorCost, default_cost
from repro.sps.logical import LogicalOperator, OperatorKind
from repro.sps.operators.aggregate import WindowAggregateLogic
from repro.sps.operators.base import OperatorLogic
from repro.sps.operators.filter_op import FilterLogic
from repro.sps.operators.join import WindowJoinLogic
from repro.sps.operators.map_op import FlatMapLogic, MapLogic
from repro.sps.operators.sink import SinkLogic
from repro.sps.operators.source import SourceLogic, TupleGenerator
from repro.sps.predicates import Predicate
from repro.sps.types import Schema
from repro.sps.windows import AggregateFunction, WindowAssigner

__all__ = [
    "source",
    "filter_op",
    "map_op",
    "flat_map",
    "window_agg",
    "event_window_agg",
    "window_join",
    "udo",
    "sink",
]


def source(
    op_id: str,
    generator: TupleGenerator,
    schema: Schema,
    event_rate: float,
    parallelism: int = 1,
    arrival: str = "poisson",
    vector_generator=None,
    replayable: bool = True,
) -> LogicalOperator:
    """A parallel source emitting ``event_rate`` tuples/s in total.

    ``vector_generator`` optionally supplies the columnar form batch
    mode uses to build whole micro-batches (``(rng, nows) -> (columns,
    sizes)``, see :data:`~repro.sps.operators.source.VectorTupleGenerator`);
    without it batch mode calls ``generator`` once per tuple.

    ``replayable`` declares whether the feed can be re-read from an
    offset after a failure (a durable log such as Kafka). The engine's
    simulated source log replays either way; the flag feeds the FT7xx
    lint rules, which warn when checkpointing is enabled over a feed
    that a real deployment could not rewind.
    """
    if event_rate <= 0:
        raise ConfigurationError("event_rate must be positive")
    return LogicalOperator(
        op_id=op_id,
        kind=OperatorKind.SOURCE,
        logic_factory=lambda: SourceLogic(
            generator, vector_generator=vector_generator
        ),
        parallelism=parallelism,
        selectivity=1.0,
        output_schema=schema,
        metadata={
            "event_rate": float(event_rate),
            "arrival": arrival,
            "replayable": bool(replayable),
        },
    )


def filter_op(
    op_id: str,
    predicate: Predicate,
    parallelism: int = 1,
    cost: OperatorCost | None = None,
) -> LogicalOperator:
    """A filter; its expected selectivity comes from the predicate's hint."""
    return LogicalOperator(
        op_id=op_id,
        kind=OperatorKind.FILTER,
        logic_factory=lambda: FilterLogic(predicate),
        parallelism=parallelism,
        selectivity=predicate.selectivity_hint,
        cost=cost,
        metadata={
            "predicate": predicate.describe(),
            # primitive mirror of the predicate so the static analyzer
            # (SCH102/SCH105) can type-check it against the input schema
            "predicate_field": predicate.field_index,
            "predicate_function": predicate.function.value,
            "predicate_literal": predicate.literal,
        },
    )


def map_op(
    op_id: str,
    fn: Callable[[tuple[Any, ...]], tuple[Any, ...]],
    parallelism: int = 1,
    cost: OperatorCost | None = None,
    output_schema: Schema | None = None,
    vector_fn: Callable[[tuple], tuple] | None = None,
) -> LogicalOperator:
    """A 1-to-1 transformation.

    ``vector_fn`` optionally supplies the column-wise form used by batch
    mode (columns in, columns out); without it the map falls back to
    per-tuple ``fn`` calls there.
    """
    return LogicalOperator(
        op_id=op_id,
        kind=OperatorKind.MAP,
        logic_factory=lambda: MapLogic(fn, vector_fn=vector_fn),
        parallelism=parallelism,
        selectivity=1.0,
        cost=cost,
        output_schema=output_schema,
    )


def flat_map(
    op_id: str,
    fn: Callable[[tuple[Any, ...]], list[tuple[Any, ...]]],
    expected_fanout: float = 1.0,
    parallelism: int = 1,
    cost: OperatorCost | None = None,
    output_schema: Schema | None = None,
    vector_fn: Callable[[tuple], tuple] | None = None,
) -> LogicalOperator:
    """A 1-to-N transformation; selectivity is the expected fan-out.

    ``vector_fn`` optionally supplies the columnar expansion batch mode
    uses (columns in, ``(columns, counts)`` out); without it the
    flat-map falls back to per-tuple ``fn`` calls there.
    """
    return LogicalOperator(
        op_id=op_id,
        kind=OperatorKind.FLATMAP,
        logic_factory=lambda: FlatMapLogic(
            fn, expected_fanout, vector_fn=vector_fn
        ),
        parallelism=parallelism,
        selectivity=expected_fanout,
        cost=cost,
        output_schema=output_schema,
    )


def window_agg(
    op_id: str,
    assigner: WindowAssigner,
    function: AggregateFunction,
    value_field: int,
    key_field: int | None = None,
    parallelism: int = 1,
    selectivity: float | None = None,
    cost: OperatorCost | None = None,
) -> LogicalOperator:
    """A keyed/global windowed aggregation.

    Selectivity (output per input tuple) defaults to ``1 / window length``
    for count windows and is left at a conservative 0.1 for time windows,
    where it depends on the event rate.
    """
    if selectivity is None:
        if assigner.is_time_based:
            selectivity = 0.1
        else:
            selectivity = 1.0 / assigner.feature_length
    return LogicalOperator(
        op_id=op_id,
        kind=OperatorKind.WINDOW_AGG,
        logic_factory=lambda: WindowAggregateLogic(
            assigner, function, value_field, key_field
        ),
        parallelism=parallelism,
        selectivity=selectivity,
        cost=cost,
        window=assigner,
        metadata={
            "agg": function.value,
            "window": assigner.describe(),
            "key_field": key_field,
            "value_field": value_field,
        },
    )


def event_window_agg(
    op_id: str,
    assigner: WindowAssigner,
    function: AggregateFunction,
    value_field: int,
    key_field: int | None = None,
    max_out_of_orderness: float = 0.05,
    allowed_lateness: float = 0.0,
    parallelism: int = 1,
    selectivity: float = 0.1,
    cost: OperatorCost | None = None,
) -> LogicalOperator:
    """An *event-time* windowed aggregation with watermarks.

    Unlike :func:`window_agg` (processing time), tuples join the windows
    covering their source timestamps and firing is driven by a
    bounded-out-of-orderness watermark; late tuples are dropped and
    counted. See :mod:`repro.sps.operators.event_aggregate`.
    """
    from repro.sps.operators.event_aggregate import (
        EventTimeWindowAggregateLogic,
    )

    return LogicalOperator(
        op_id=op_id,
        kind=OperatorKind.WINDOW_AGG,
        logic_factory=lambda: EventTimeWindowAggregateLogic(
            assigner,
            function,
            value_field,
            key_field,
            max_out_of_orderness,
            allowed_lateness,
        ),
        parallelism=parallelism,
        selectivity=selectivity,
        cost=cost,
        window=assigner,
        metadata={
            "agg": function.value,
            "window": assigner.describe(),
            "key_field": key_field,
            "value_field": value_field,
            "time_semantics": "event",
            "max_out_of_orderness": max_out_of_orderness,
        },
    )


def window_join(
    op_id: str,
    assigner: WindowAssigner,
    left_key_field: int | None = None,
    right_key_field: int | None = None,
    parallelism: int = 1,
    selectivity: float = 1.0,
    cost: OperatorCost | None = None,
) -> LogicalOperator:
    """A windowed equi-join (port 0 = left input, port 1 = right input)."""
    return LogicalOperator(
        op_id=op_id,
        kind=OperatorKind.WINDOW_JOIN,
        logic_factory=lambda: WindowJoinLogic(
            assigner, left_key_field, right_key_field
        ),
        parallelism=parallelism,
        selectivity=selectivity,
        window=assigner,
        cost=cost,
        metadata={
            "window": assigner.describe(),
            "key_fields": (left_key_field, right_key_field),
        },
    )


def udo(
    op_id: str,
    logic_factory: Callable[[], OperatorLogic],
    parallelism: int = 1,
    selectivity: float = 1.0,
    cost_scale: float = 1.0,
    cost: OperatorCost | None = None,
    name: str | None = None,
    output_schema: Schema | None = None,
    key_field: int | None = None,
) -> LogicalOperator:
    """A user-defined operator.

    ``cost_scale`` scales the default UDO cost profile: the application
    suite uses it to express how data-intensive each custom operator is
    (the paper's SG/SD/SA operators are far heavier than AD's parsers).
    ``key_field`` declares which value position keys the operator's state
    (used for default hash partitioning and the KEY2xx analysis rules);
    ``output_schema`` declares what the operator emits so downstream field
    references can be checked statically.
    """
    if cost is None:
        cost = default_cost(OperatorKind.UDO).scaled(cost_scale)
    metadata: dict[str, Any] = {"udo_name": name or op_id}
    if key_field is not None:
        metadata["key_field"] = key_field
    return LogicalOperator(
        op_id=op_id,
        kind=OperatorKind.UDO,
        logic_factory=logic_factory,
        parallelism=parallelism,
        selectivity=selectivity,
        cost=cost,
        output_schema=output_schema,
        metadata=metadata,
    )


def sink(
    op_id: str = "sink",
    parallelism: int = 1,
    keep_values: bool = False,
) -> LogicalOperator:
    """The measuring sink."""
    return LogicalOperator(
        op_id=op_id,
        kind=OperatorKind.SINK,
        logic_factory=lambda: SinkLogic(keep_values=keep_values),
        parallelism=parallelism,
        selectivity=1.0,
    )
