"""Logical query plans (the paper's PQPs).

A :class:`LogicalPlan` is a DAG of :class:`LogicalOperator` nodes, each
carrying a parallelism degree — the paper's *parallel query plan* (PQP)
abstraction: "a given query structure with parallelism degrees". Edges carry
the partitioning strategy of the exchange. The physical planner
(:mod:`repro.sps.physical`) expands the logical DAG into parallel subtasks.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import PlanError
from repro.sps.costs import OperatorCost, default_cost
from repro.sps.logical_kinds import OperatorKind
from repro.sps.partitioning import (
    ForwardPartitioner,
    HashPartitioner,
    Partitioner,
    RebalancePartitioner,
)
from repro.sps.types import Schema
from repro.sps.windows import WindowAssigner

__all__ = ["OperatorKind", "LogicalOperator", "LogicalEdge", "LogicalPlan"]


@dataclass
class LogicalOperator:
    """One logical operator of a PQP.

    ``logic_factory`` builds a fresh operator-logic instance per subtask
    (state is per-instance, as in Flink). ``selectivity`` is the expected
    output/input tuple ratio used by the analytic model, the rule-based
    parallelism enumerator and the ML features.
    """

    op_id: str
    kind: OperatorKind
    logic_factory: Callable[..., Any]
    parallelism: int = 1
    selectivity: float = 1.0
    cost: OperatorCost | None = None
    output_schema: Schema | None = None
    window: WindowAssigner | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.op_id:
            raise PlanError("operator id must be non-empty")
        if self.parallelism < 1:
            raise PlanError(
                f"{self.op_id}: parallelism must be >= 1, "
                f"got {self.parallelism}"
            )
        if not math.isfinite(self.selectivity):
            raise PlanError(
                f"{self.op_id}: selectivity must be finite, "
                f"got {self.selectivity}",
                code="COST501",
            )
        if self.selectivity < 0:
            raise PlanError(f"{self.op_id}: selectivity must be >= 0")
        if self.cost is None:
            self.cost = default_cost(self.kind)
        elif not (
            math.isfinite(self.cost.base_cpu_s)
            and math.isfinite(self.cost.coord_kappa)
        ):
            raise PlanError(
                f"{self.op_id}: cost parameters must be finite, got "
                f"base_cpu_s={self.cost.base_cpu_s} "
                f"coord_kappa={self.cost.coord_kappa}",
                code="COST501",
            )

    def describe(self) -> str:
        """e.g. ``filter_1[filter x8]``."""
        return f"{self.op_id}[{self.kind.value} x{self.parallelism}]"


@dataclass(frozen=True)
class LogicalEdge:
    """A directed exchange between two logical operators.

    ``port`` distinguishes the two inputs of a join (0 = left, 1 = right);
    single-input operators only use port 0.
    """

    src: str
    dst: str
    partitioner: Partitioner
    port: int = 0

    def __post_init__(self) -> None:
        if self.port < 0:
            raise PlanError("edge port must be non-negative")


class LogicalPlan:
    """A validated DAG of logical operators."""

    def __init__(self, name: str = "query") -> None:
        self.name = name
        self._ops: dict[str, LogicalOperator] = {}
        self._edges: list[LogicalEdge] = []

    # ------------------------------------------------------------- building

    def add_operator(self, op: LogicalOperator) -> LogicalOperator:
        """Add an operator; ids must be unique within the plan."""
        if op.op_id in self._ops:
            raise PlanError(
                f"duplicate operator id {op.op_id!r}: every operator of a "
                "plan needs a unique id",
                code="PLAN000",
            )
        self._ops[op.op_id] = op
        return op

    def connect(
        self,
        src: str,
        dst: str,
        partitioner: Partitioner | None = None,
        port: int = 0,
    ) -> LogicalEdge:
        """Add an edge; defaults the partitioner from the consumer's kind.

        Default selection mirrors Flink: keyed (stateful) consumers get hash
        partitioning, equal-parallelism stateless pairs get forward, and
        everything else gets rebalance.
        """
        if src not in self._ops:
            raise PlanError(f"unknown source operator {src!r}")
        if dst not in self._ops:
            raise PlanError(f"unknown destination operator {dst!r}")
        if src == dst:
            raise PlanError(f"self-loop on {src!r}")
        if partitioner is None:
            partitioner = self._default_partitioner(
                self._ops[src], self._ops[dst], port
            )
        edge = LogicalEdge(
            src=src, dst=dst, partitioner=partitioner, port=port
        )
        self._edges.append(edge)
        return edge

    @staticmethod
    def _default_partitioner(
        src: LogicalOperator, dst: LogicalOperator, port: int = 0
    ) -> Partitioner:
        if dst.kind is OperatorKind.WINDOW_JOIN:
            key_fields = dst.metadata.get("key_fields", (None, None))
            return HashPartitioner(key_field=key_fields[port])
        if dst.kind is OperatorKind.WINDOW_AGG:
            return HashPartitioner(key_field=dst.metadata.get("key_field"))
        if dst.kind.is_stateful:
            # UDOs: key when they declare a key field, spread otherwise.
            key_field = dst.metadata.get("key_field")
            if key_field is not None:
                return HashPartitioner(key_field=key_field)
            return RebalancePartitioner()
        if (
            src.parallelism == dst.parallelism
            and not dst.kind.is_stateful
            and dst.kind is not OperatorKind.SINK
        ):
            return ForwardPartitioner()
        return RebalancePartitioner()

    # ------------------------------------------------------------ accessors

    @property
    def operators(self) -> dict[str, LogicalOperator]:
        """Operators by id."""
        return dict(self._ops)

    @property
    def edges(self) -> tuple[LogicalEdge, ...]:
        """All edges in insertion order."""
        return tuple(self._edges)

    def operator(self, op_id: str) -> LogicalOperator:
        """Look up an operator by id."""
        try:
            return self._ops[op_id]
        except KeyError:
            raise PlanError(f"unknown operator {op_id!r}") from None

    def sources(self) -> list[LogicalOperator]:
        """All source operators, in insertion order."""
        return [
            op for op in self._ops.values() if op.kind is OperatorKind.SOURCE
        ]

    def sinks(self) -> list[LogicalOperator]:
        """All sink operators, in insertion order."""
        return [
            op for op in self._ops.values() if op.kind is OperatorKind.SINK
        ]

    def in_edges(self, op_id: str) -> list[LogicalEdge]:
        """Edges arriving at an operator, sorted by port."""
        return sorted(
            (e for e in self._edges if e.dst == op_id), key=lambda e: e.port
        )

    def out_edges(self, op_id: str) -> list[LogicalEdge]:
        """Edges leaving an operator."""
        return [e for e in self._edges if e.src == op_id]

    def upstream(self, op_id: str) -> list[str]:
        """Ids of direct upstream operators."""
        return [e.src for e in self.in_edges(op_id)]

    def downstream(self, op_id: str) -> list[str]:
        """Ids of direct downstream operators."""
        return [e.dst for e in self.out_edges(op_id)]

    @property
    def num_operators(self) -> int:
        """Number of logical operators."""
        return len(self._ops)

    def total_subtasks(self) -> int:
        """Sum of parallelism degrees over all operators."""
        return sum(op.parallelism for op in self._ops.values())

    # ----------------------------------------------------------- validation

    def topological_order(self) -> list[str]:
        """Operator ids in a topological order; raises on cycles."""
        in_degree = {op_id: 0 for op_id in self._ops}
        for edge in self._edges:
            in_degree[edge.dst] += 1
        ready = [op_id for op_id, deg in in_degree.items() if deg == 0]
        order: list[str] = []
        while ready:
            op_id = ready.pop(0)
            order.append(op_id)
            for edge in self.out_edges(op_id):
                in_degree[edge.dst] -= 1
                if in_degree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self._ops):
            raise PlanError(f"plan {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Check structural well-formedness; raises :class:`PlanError`."""
        if not self._ops:
            raise PlanError("plan has no operators")
        if not self.sources():
            raise PlanError("plan has no source operator")
        if not self.sinks():
            raise PlanError("plan has no sink operator")
        self.topological_order()
        for op in self._ops.values():
            ins = self.in_edges(op.op_id)
            outs = self.out_edges(op.op_id)
            if op.kind is OperatorKind.SOURCE:
                if ins:
                    raise PlanError(f"source {op.op_id!r} has inputs")
                if not outs:
                    raise PlanError(f"source {op.op_id!r} has no consumers")
            elif op.kind is OperatorKind.SINK:
                if outs:
                    raise PlanError(f"sink {op.op_id!r} has outputs")
                if not ins:
                    raise PlanError(f"sink {op.op_id!r} has no inputs")
            else:
                if not ins:
                    raise PlanError(f"operator {op.op_id!r} has no inputs")
                if not outs:
                    raise PlanError(f"operator {op.op_id!r} has no outputs")
            if op.kind is OperatorKind.WINDOW_JOIN:
                ports = sorted(e.port for e in ins)
                if ports != [0, 1]:
                    raise PlanError(
                        f"join {op.op_id!r} needs exactly inputs on ports "
                        f"0 and 1, got ports {ports}"
                    )
            elif ins:
                if any(e.port != 0 for e in ins):
                    raise PlanError(
                        f"single-input operator {op.op_id!r} must use port 0"
                    )
        for edge in self._edges:
            if edge.partitioner.requires_equal_parallelism:
                src_p = self._ops[edge.src].parallelism
                dst_p = self._ops[edge.dst].parallelism
                if src_p != dst_p:
                    raise PlanError(
                        f"forward edge {edge.src!r}->{edge.dst!r} requires "
                        f"equal parallelism, got {src_p} vs {dst_p}"
                    )

    # ------------------------------------------------------------- mutation

    def set_uniform_parallelism(
        self,
        degree: int,
        include_sources: bool = True,
        sink_parallelism: int = 1,
    ) -> None:
        """Set every operator's parallelism to one degree (paper's

        parallelism *categories* XS..XXL apply one degree to the whole PQP).
        Sinks default to 1, as the benchmark measures a single collection
        point. Forward edges whose endpoints no longer match are downgraded
        to rebalance.
        """
        if degree < 1:
            raise PlanError("parallelism degree must be >= 1")
        for op in self._ops.values():
            if op.kind is OperatorKind.SINK:
                op.parallelism = sink_parallelism
            elif op.kind is OperatorKind.SOURCE and not include_sources:
                continue
            else:
                op.parallelism = degree
        self._fix_forward_edges()

    def set_parallelism(self, degrees: dict[str, int]) -> None:
        """Set per-operator parallelism degrees (enumerator output)."""
        for op_id, degree in degrees.items():
            op = self.operator(op_id)
            if degree < 1:
                raise PlanError(
                    f"{op_id}: parallelism must be >= 1, got {degree}"
                )
            op.parallelism = degree
        self._fix_forward_edges()

    def _fix_forward_edges(self) -> None:
        fixed = []
        for edge in self._edges:
            if (
                edge.partitioner.requires_equal_parallelism
                and self._ops[edge.src].parallelism
                != self._ops[edge.dst].parallelism
            ):
                fixed.append(
                    LogicalEdge(
                        src=edge.src,
                        dst=edge.dst,
                        partitioner=RebalancePartitioner(),
                        port=edge.port,
                    )
                )
            else:
                fixed.append(edge)
        self._edges = fixed

    def parallelism_degrees(self) -> dict[str, int]:
        """Current per-operator parallelism assignment."""
        return {op_id: op.parallelism for op_id, op in self._ops.items()}

    # ------------------------------------------------------------ rendering

    def describe(self) -> str:
        """Multi-line dump of operators and exchanges."""
        lines = [f"plan {self.name!r}:"]
        for op_id in self.topological_order():
            op = self._ops[op_id]
            lines.append(f"  {op.describe()}")
            for edge in self.out_edges(op_id):
                lines.append(
                    f"    -> {edge.dst} via {edge.partitioner.describe()}"
                    + (f" [port {edge.port}]" if edge.port else "")
                )
        return "\n".join(lines)

    def operators_in_order(self) -> Iterable[LogicalOperator]:
        """Operators in topological order."""
        for op_id in self.topological_order():
            yield self._ops[op_id]
