"""Event-time windowed aggregation with watermarks.

The processing-time aggregate (:mod:`repro.sps.operators.aggregate`)
windows tuples by *arrival* time, as Flink does by default. Real
deployments frequently window by *event* time instead, tolerating network
and queueing reorder via watermarks. This operator implements the
bounded-out-of-orderness model:

- tuples join the window(s) covering their ``event_time``;
- the operator's watermark trails the maximum event time seen by
  ``max_out_of_orderness`` seconds;
- a window fires when the watermark passes its end (plus
  ``allowed_lateness``);
- tuples arriving behind the watermark for an already-fired window are
  *late* and dropped (counted in :attr:`late_dropped`).

In the simulator, event time is stamped at the source, so queueing delay
and cross-node network transfer are exactly the disorder the watermark
must absorb — the same trade-off (latency vs completeness) operators face
in production.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.windows import AggregateFunction, WindowAssigner

__all__ = ["EventTimeWindowAggregateLogic"]

_GLOBAL_KEY = "__global__"


class _WindowState:
    __slots__ = ("values", "min_origin", "end")

    def __init__(self, end: float) -> None:
        self.values: list[float] = []
        self.min_origin = float("inf")
        self.end = end


class EventTimeWindowAggregateLogic(OperatorLogic):
    """Keyed event-time window aggregation under a bounded-disorder

    watermark."""

    def __init__(
        self,
        assigner: WindowAssigner,
        function: AggregateFunction,
        value_field: int,
        key_field: int | None = None,
        max_out_of_orderness: float = 0.05,
        allowed_lateness: float = 0.0,
    ) -> None:
        if not assigner.is_time_based:
            raise ConfigurationError(
                "event-time aggregation requires time-based windows"
            )
        if max_out_of_orderness < 0 or allowed_lateness < 0:
            raise ConfigurationError(
                "out-of-orderness and lateness bounds must be >= 0"
            )
        self.assigner = assigner
        self.function = function
        self.value_field = value_field
        self.key_field = key_field
        self.max_out_of_orderness = max_out_of_orderness
        self.allowed_lateness = allowed_lateness
        self._max_event_time = float("-inf")
        self._fired_horizon = float("-inf")
        # key -> {window_start -> _WindowState}
        self._state: dict[object, dict[float, _WindowState]] = {}
        self.late_dropped = 0
        self.windows_fired = 0
        interval = getattr(assigner, "slide", None) or getattr(
            assigner, "duration"
        )
        self.timer_interval = float(interval)

    @property
    def watermark(self) -> float:
        """Current watermark: max event time seen minus the bound."""
        return self._max_event_time - self.max_out_of_orderness

    def _key_of(self, tup: StreamTuple) -> object:
        if self.key_field is not None:
            return tup.values[self.key_field]
        if tup.key is not None:
            return tup.key
        return _GLOBAL_KEY

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        if tup.event_time > self._max_event_time:
            self._max_event_time = tup.event_time
        # Late: every window this tuple belongs to has already fired.
        newest_window_end = max(
            w.end for w in self.assigner.assign(tup.event_time)
        )
        if newest_window_end + self.allowed_lateness <= self._fired_horizon:
            self.late_dropped += 1
            return self._fire_ready(now)
        key = self._key_of(tup)
        value = float(tup.values[self.value_field])
        per_key = self._state.setdefault(key, {})
        for window in self.assigner.assign(tup.event_time):
            if window.end + self.allowed_lateness <= self._fired_horizon:
                continue  # this overlap already fired; count the rest
            state = per_key.get(window.start)
            if state is None:
                state = _WindowState(window.end)
                per_key[window.start] = state
            state.values.append(value)
            if tup.origin_time < state.min_origin:
                state.min_origin = tup.origin_time
        return self._fire_ready(now)

    def _fire_ready(self, now: float) -> list[StreamTuple]:
        watermark = self.watermark
        outputs: list[StreamTuple] = []
        for key, per_key in self._state.items():
            ready = [
                start
                for start, state in per_key.items()
                if state.end + self.allowed_lateness <= watermark
            ]
            for start in sorted(ready):
                state = per_key.pop(start)
                if state.values:
                    outputs.append(self._emit(key, state, now))
        if watermark > self._fired_horizon:
            self._fired_horizon = watermark
        return outputs

    def on_time(self, now: float) -> list[StreamTuple]:
        # Idle-source advancement: in the absence of new input the
        # watermark may still advance with the simulation clock, as
        # Flink's idleness timeout does.
        if self._max_event_time > float("-inf"):
            idle_watermark = now - 2.0 * self.max_out_of_orderness
            if idle_watermark > self._max_event_time:
                self._max_event_time = idle_watermark
        return self._fire_ready(now)

    def flush(self, now: float) -> list[StreamTuple]:
        outputs: list[StreamTuple] = []
        for key, per_key in self._state.items():
            for start in sorted(per_key):
                state = per_key[start]
                if state.values:
                    outputs.append(self._emit(key, state, now))
        self._state.clear()
        return outputs

    def _emit(
        self, key: object, state: _WindowState, now: float
    ) -> StreamTuple:
        self.windows_fired += 1
        out_key = None if key is _GLOBAL_KEY else key
        return StreamTuple(
            values=(out_key, self.function.apply(state.values)),
            event_time=now,
            origin_time=state.min_origin,
            key=out_key,
            size_bytes=40.0,
        )
