"""Event-time windowed aggregation with watermarks.

The processing-time aggregate (:mod:`repro.sps.operators.aggregate`)
windows tuples by *arrival* time, as Flink does by default. Real
deployments frequently window by *event* time instead, tolerating network
and queueing reorder via watermarks. This operator implements the
bounded-out-of-orderness model:

- tuples join the window(s) covering their ``event_time``;
- the operator's watermark trails the maximum event time seen by
  ``max_out_of_orderness`` seconds;
- a window fires when the watermark passes its end (plus
  ``allowed_lateness``);
- tuples arriving behind the watermark for an already-fired window are
  *late* and dropped (counted in :attr:`late_dropped`).

In the simulator, event time is stamped at the source, so queueing delay
and cross-node network transfer are exactly the disorder the watermark
must absorb — the same trade-off (latency vs completeness) operators face
in production.

State is incremental: each (key, window) pair keeps scalar accumulators
(count/sum/min/max and the earliest origin) updated in arrival order, so
firing never rescans buffered values — the arrival-order running sum is
bit-identical to summing a buffered value list, because tuples are
folded into exactly the same windows in exactly the same order.  Ready
windows are discovered through a min-heap of window ends instead of an
all-keys scan, and emitted in the pinned (key-first-seen, window-start)
order.  Window membership is computed once per tuple through the
assigner's index-range API rather than materialising ``Window`` objects.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.common.errors import ConfigurationError
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.windows import AggregateFunction, WindowAssigner

__all__ = ["EventTimeWindowAggregateLogic"]

_GLOBAL_KEY = "__global__"

_INF = float("inf")


class _WindowState:
    """Incremental accumulators of one (key, window) pair."""

    __slots__ = ("count", "vsum", "vmin", "vmax", "min_origin")

    def __init__(self) -> None:
        self.count = 0
        self.vsum = 0.0
        self.vmin = _INF
        self.vmax = -_INF
        self.min_origin = _INF


class _KeyState:
    """Per-key window map plus the key's pinned emission rank."""

    __slots__ = ("rank", "windows")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.windows: dict[int, _WindowState] = {}


class EventTimeWindowAggregateLogic(OperatorLogic):
    """Keyed event-time window aggregation under a bounded-disorder

    watermark."""

    def __init__(
        self,
        assigner: WindowAssigner,
        function: AggregateFunction,
        value_field: int,
        key_field: int | None = None,
        max_out_of_orderness: float = 0.05,
        allowed_lateness: float = 0.0,
    ) -> None:
        if not assigner.is_time_based:
            raise ConfigurationError(
                "event-time aggregation requires time-based windows"
            )
        if max_out_of_orderness < 0 or allowed_lateness < 0:
            raise ConfigurationError(
                "out-of-orderness and lateness bounds must be >= 0"
            )
        self.assigner = assigner
        self.function = function
        self.value_field = value_field
        self.key_field = key_field
        self.max_out_of_orderness = max_out_of_orderness
        self.allowed_lateness = allowed_lateness
        self._max_event_time = float("-inf")
        self._fired_horizon = float("-inf")
        self._state: dict[object, _KeyState] = {}
        self._keys_by_rank: list[object] = []
        # min-heap of (window end, key rank, window index), one entry
        # per live (key, window) pair, pushed at state creation
        self._fire_heap: list[tuple[float, int, int]] = []
        self.late_dropped = 0
        self.windows_fired = 0
        fn = function
        self._is_min = fn is AggregateFunction.MIN
        self._is_max = fn is AggregateFunction.MAX
        self._is_count = fn is AggregateFunction.COUNT
        self._is_sum = fn is AggregateFunction.SUM
        interval = getattr(assigner, "slide", None) or getattr(
            assigner, "duration"
        )
        self.timer_interval = float(interval)

    @property
    def watermark(self) -> float:
        """Current watermark: max event time seen minus the bound."""
        return self._max_event_time - self.max_out_of_orderness

    def _key_of(self, tup: StreamTuple) -> object:
        if self.key_field is not None:
            return tup.values[self.key_field]
        if tup.key is not None:
            return tup.key
        return _GLOBAL_KEY

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        event_time = tup.event_time
        if event_time > self._max_event_time:
            self._max_event_time = event_time
        assigner = self.assigner
        lo, hi = assigner.assign_index_range(event_time)
        if lo > hi:  # rounding left no containing window
            return self._fire_ready(now)
        lateness = self.allowed_lateness
        horizon = self._fired_horizon
        # Late: every window this tuple belongs to has already fired.
        if assigner.window_end(hi) + lateness <= horizon:
            self.late_dropped += 1
            return self._fire_ready(now)
        key = self._key_of(tup)
        value = float(tup.values[self.value_field])
        kst = self._state.get(key)
        if kst is None:
            kst = self._state[key] = _KeyState(len(self._keys_by_rank))
            self._keys_by_rank.append(key)
        windows = kst.windows
        origin = tup.origin_time
        for w in range(lo, hi + 1):
            end = assigner.window_end(w)
            if end + lateness <= horizon:
                continue  # this overlap already fired; count the rest
            state = windows.get(w)
            if state is None:
                state = windows[w] = _WindowState()
                heappush(self._fire_heap, (end, kst.rank, w))
            if state.count:
                if value < state.vmin:
                    state.vmin = value
                if value > state.vmax:
                    state.vmax = value
            else:
                state.vmin = value
                state.vmax = value
            state.count += 1
            state.vsum += value
            if origin < state.min_origin:
                state.min_origin = origin
        return self._fire_ready(now)

    def _fire_ready(self, now: float) -> list[StreamTuple]:
        watermark = self.watermark
        heap = self._fire_heap
        lateness = self.allowed_lateness
        outputs: list[StreamTuple] = []
        if heap and heap[0][0] + lateness <= watermark:
            states = self._state
            keys_by_rank = self._keys_by_rank
            ready: list[tuple[int, int]] = []
            while heap and heap[0][0] + lateness <= watermark:
                _end, rank, w = heappop(heap)
                if w in states[keys_by_rank[rank]].windows:
                    ready.append((rank, w))
            # Pinned emission order: key-first-seen major, window minor.
            ready.sort()
            for rank, w in ready:
                key = keys_by_rank[rank]
                state = states[key].windows.pop(w)
                outputs.append(self._emit(key, state, now))
        if watermark > self._fired_horizon:
            self._fired_horizon = watermark
        return outputs

    def on_time(self, now: float) -> list[StreamTuple]:
        # Idle-source advancement: in the absence of new input the
        # watermark may still advance with the simulation clock, as
        # Flink's idleness timeout does.
        if self._max_event_time > float("-inf"):
            idle_watermark = now - 2.0 * self.max_out_of_orderness
            if idle_watermark > self._max_event_time:
                self._max_event_time = idle_watermark
        return self._fire_ready(now)

    def flush(self, now: float) -> list[StreamTuple]:
        outputs: list[StreamTuple] = []
        for key, kst in self._state.items():
            windows = kst.windows
            for w in sorted(windows):
                outputs.append(self._emit(key, windows[w], now))
        self._state.clear()
        self._keys_by_rank.clear()
        self._fire_heap.clear()
        return outputs

    def _emit(
        self, key: object, state: _WindowState, now: float
    ) -> StreamTuple:
        self.windows_fired += 1
        if self._is_min:
            aggregate = state.vmin
        elif self._is_max:
            aggregate = state.vmax
        elif self._is_count:
            aggregate = float(state.count)
        elif self._is_sum:
            aggregate = state.vsum
        else:
            aggregate = state.vsum / state.count  # AVG and MEAN
        out_key = None if key is _GLOBAL_KEY else key
        return StreamTuple(
            values=(out_key, aggregate),
            event_time=now,
            origin_time=state.min_origin,
            key=out_key,
            size_bytes=40.0,
        )
