"""Event-time windowed aggregation with watermarks.

The processing-time aggregate (:mod:`repro.sps.operators.aggregate`)
windows tuples by *arrival* time, as Flink does by default. Real
deployments frequently window by *event* time instead, tolerating network
and queueing reorder via watermarks. This operator implements the
bounded-out-of-orderness model:

- tuples join the window(s) covering their ``event_time``;
- the operator's watermark trails the maximum event time seen by
  ``max_out_of_orderness`` seconds;
- a window fires when the watermark passes its end (plus
  ``allowed_lateness``);
- tuples arriving behind the watermark for an already-fired window are
  *late* and dropped (counted in :attr:`late_dropped`).

In the simulator, event time is stamped at the source, so queueing delay
and cross-node network transfer are exactly the disorder the watermark
must absorb — the same trade-off (latency vs completeness) operators face
in production.

State is incremental: each (key, window) pair keeps scalar accumulators
(count/sum/min/max and the earliest origin) updated in arrival order, so
firing never rescans buffered values — the arrival-order running sum is
bit-identical to summing a buffered value list, because tuples are
folded into exactly the same windows in exactly the same order.  Ready
windows are discovered through a min-heap of window ends instead of an
all-keys scan, and emitted in the pinned (key-first-seen, window-start)
order.  Window membership is computed once per tuple through the
assigner's index-range API rather than materialising ``Window`` objects.
"""

from __future__ import annotations

from heapq import heappop, heappush

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sps.columnar import sequential_sum
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.windows import (
    AggregateFunction,
    WindowAssigner,
    index_range_arrays,
    window_end_arrays,
)

__all__ = ["EventTimeWindowAggregateLogic"]

_GLOBAL_KEY = "__global__"

_INF = float("inf")


class _WindowState:
    """Incremental accumulators of one (key, window) pair."""

    __slots__ = ("count", "vsum", "vmin", "vmax", "min_origin")

    def __init__(self) -> None:
        self.count = 0
        self.vsum = 0.0
        self.vmin = _INF
        self.vmax = -_INF
        self.min_origin = _INF


class _KeyState:
    """Per-key window map plus the key's pinned emission rank."""

    __slots__ = ("rank", "windows")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.windows: dict[int, _WindowState] = {}


class EventTimeWindowAggregateLogic(OperatorLogic):
    """Keyed event-time window aggregation under a bounded-disorder

    watermark."""

    #: per-key window maps migrate wholesale; the instance-global
    #: watermark rides along in every payload and imports as a max, so
    #: replacement instances never regress the fired horizon
    rescale_supported = True

    def __init__(
        self,
        assigner: WindowAssigner,
        function: AggregateFunction,
        value_field: int,
        key_field: int | None = None,
        max_out_of_orderness: float = 0.05,
        allowed_lateness: float = 0.0,
    ) -> None:
        if not assigner.is_time_based:
            raise ConfigurationError(
                "event-time aggregation requires time-based windows"
            )
        if max_out_of_orderness < 0 or allowed_lateness < 0:
            raise ConfigurationError(
                "out-of-orderness and lateness bounds must be >= 0"
            )
        self.assigner = assigner
        self.function = function
        self.value_field = value_field
        self.key_field = key_field
        self.max_out_of_orderness = max_out_of_orderness
        self.allowed_lateness = allowed_lateness
        self._max_event_time = float("-inf")
        self._fired_horizon = float("-inf")
        self._state: dict[object, _KeyState] = {}
        self._keys_by_rank: list[object] = []
        # min-heap of (window end, key rank, window index), one entry
        # per live (key, window) pair, pushed at state creation
        self._fire_heap: list[tuple[float, int, int]] = []
        self.late_dropped = 0
        self.windows_fired = 0
        fn = function
        self._is_min = fn is AggregateFunction.MIN
        self._is_max = fn is AggregateFunction.MAX
        self._is_count = fn is AggregateFunction.COUNT
        self._is_sum = fn is AggregateFunction.SUM
        interval = getattr(assigner, "slide", None) or getattr(
            assigner, "duration"
        )
        self.timer_interval = float(interval)

    @property
    def watermark(self) -> float:
        """Current watermark: max event time seen minus the bound."""
        return self._max_event_time - self.max_out_of_orderness

    def _key_of(self, tup: StreamTuple) -> object:
        if self.key_field is not None:
            return tup.values[self.key_field]
        if tup.key is not None:
            return tup.key
        return _GLOBAL_KEY

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        event_time = tup.event_time
        if event_time > self._max_event_time:
            self._max_event_time = event_time
        assigner = self.assigner
        lo, hi = assigner.assign_index_range(event_time)
        if lo > hi:  # rounding left no containing window
            return self._fire_ready(now)
        lateness = self.allowed_lateness
        horizon = self._fired_horizon
        # Late: every window this tuple belongs to has already fired.
        if assigner.window_end(hi) + lateness <= horizon:
            self.late_dropped += 1
            return self._fire_ready(now)
        key = self._key_of(tup)
        value = float(tup.values[self.value_field])
        kst = self._state.get(key)
        if kst is None:
            kst = self._state[key] = _KeyState(len(self._keys_by_rank))
            self._keys_by_rank.append(key)
        windows = kst.windows
        origin = tup.origin_time
        for w in range(lo, hi + 1):
            end = assigner.window_end(w)
            if end + lateness <= horizon:
                continue  # this overlap already fired; count the rest
            state = windows.get(w)
            if state is None:
                state = windows[w] = _WindowState()
                heappush(self._fire_heap, (end, kst.rank, w))
            if state.count:
                if value < state.vmin:
                    state.vmin = value
                if value > state.vmax:
                    state.vmax = value
            else:
                state.vmin = value
                state.vmax = value
            state.count += 1
            state.vsum += value
            if origin < state.min_origin:
                state.min_origin = origin
        return self._fire_ready(now)

    def _fire_ready(self, now: float) -> list[StreamTuple]:
        watermark = self.watermark
        heap = self._fire_heap
        lateness = self.allowed_lateness
        outputs: list[StreamTuple] = []
        if heap and heap[0][0] + lateness <= watermark:
            states = self._state
            keys_by_rank = self._keys_by_rank
            ready: list[tuple[int, int]] = []
            while heap and heap[0][0] + lateness <= watermark:
                _end, rank, w = heappop(heap)
                if w in states[keys_by_rank[rank]].windows:
                    ready.append((rank, w))
            # Pinned emission order: key-first-seen major, window minor.
            ready.sort()
            for rank, w in ready:
                key = keys_by_rank[rank]
                state = states[key].windows.pop(w)
                outputs.append(self._emit(key, state, now))
        if watermark > self._fired_horizon:
            self._fired_horizon = watermark
        return outputs

    def on_time(self, now: float) -> list[StreamTuple]:
        # Idle-source advancement: in the absence of new input the
        # watermark may still advance with the simulation clock, as
        # Flink's idleness timeout does.
        if self._max_event_time > float("-inf"):
            idle_watermark = now - 2.0 * self.max_out_of_orderness
            if idle_watermark > self._max_event_time:
                self._max_event_time = idle_watermark
        return self._fire_ready(now)

    def flush(self, now: float) -> list[StreamTuple]:
        outputs: list[StreamTuple] = []
        for key, kst in self._state.items():
            windows = kst.windows
            for w in sorted(windows):
                outputs.append(self._emit(key, windows[w], now))
        self._state.clear()
        self._keys_by_rank.clear()
        self._fire_heap.clear()
        return outputs

    # ------------------------------------------------------------ migration

    def export_keyed_state(self):
        """Move every key's window accumulators out for a rescale.

        The watermark pair (max event time, fired horizon) is global to
        the instance, not keyed; it is attached to every payload and
        folded with ``max`` on import, the only merge that never
        un-fires a window a predecessor already emitted.
        """
        items: list[tuple[object, tuple]] = []
        max_et = self._max_event_time
        horizon = self._fired_horizon
        for key in self._keys_by_rank:
            kst = self._state[key]
            items.append((key, (kst.windows, max_et, horizon)))
        self._state = {}
        self._keys_by_rank = []
        self._fire_heap = []
        return items

    def import_keyed_state(self, items) -> None:
        window_end = self.assigner.window_end
        for key, (windows, max_et, horizon) in items:
            kst = _KeyState(len(self._keys_by_rank))
            self._keys_by_rank.append(key)
            kst.windows = windows
            self._state[key] = kst
            for w in sorted(windows):
                heappush(self._fire_heap, (window_end(w), kst.rank, w))
            if max_et > self._max_event_time:
                self._max_event_time = max_et
            if horizon > self._fired_horizon:
                self._fired_horizon = horizon

    # --------------------------------------------------------- batch kernel

    def supports_batch(self) -> bool:
        return True

    def process_event_batch(
        self, keys, values, event_times, origins, nows, tick_times
    ) -> list[tuple[float, bool, StreamTuple]]:
        """Vectorized fold + watermark advance over one micro-batch.

        ``keys`` is the per-row key list (``None`` when all rows are
        global); ``values``/``event_times``/``origins``/``nows`` float64
        arrays with ``nows`` non-decreasing; ``tick_times`` the timer
        ticks falling inside this batch's span (sorted).  Tuples and
        ticks are merged into the scalar path's *opportunity sequence*
        (ties go to tuples first — measure-zero under the continuous
        arrival distributions): the running max event time, the
        watermark, and the pre-opportunity fired-horizon become prefix
        scans, late drops and per-(key, window) folds become masked
        grouped reductions over the same ``_WindowState`` accumulators
        the scalar path mutates, and each ready window fires at the
        first opportunity whose watermark passes its end — with
        ``_emit`` called at that opportunity's processing time, exactly
        as ``_fire_ready`` would.  Returns ``(fire_time, tick_triggered,
        tuple)`` triples in emission order.
        """
        n = len(values)
        n_ticks = len(tick_times)
        total = n + n_ticks
        if total == 0:
            return []
        ooo = self.max_out_of_orderness
        lateness = self.allowed_lateness
        carry_max = self._max_event_time
        carry_hor = self._fired_horizon
        neg_inf = float("-inf")
        # ---- merged opportunity sequence (tuples + in-span ticks)
        if n_ticks:
            slots = np.searchsorted(nows, tick_times, side="right")
            tick_slots = slots + np.arange(n_ticks)
            m_is_tick = np.zeros(total, dtype=bool)
            m_is_tick[tick_slots] = True
            tuple_slots = np.flatnonzero(~m_is_tick)
            m_now = np.empty(total, dtype=np.float64)
            m_now[tuple_slots] = nows
            m_now[tick_slots] = tick_times
            contrib = np.empty(total, dtype=np.float64)
            contrib[tuple_slots] = event_times
            # Idle-source advancement: a tick proposes now - 2*ooo, but
            # only once some tuple has set a real max event time.
            contrib[tick_slots] = tick_times - 2.0 * ooo
            if carry_max == neg_inf:
                if n:
                    early = tick_slots[tick_slots < tuple_slots[0]]
                else:
                    early = tick_slots
                contrib[early] = neg_inf
        else:
            m_is_tick = np.zeros(total, dtype=bool)
            tuple_slots = np.arange(total)
            m_now = nows
            contrib = event_times
        runmax = np.maximum.accumulate(
            np.concatenate(((carry_max,), contrib))
        )[1:]
        wm = runmax - ooo
        hor = np.empty(total, dtype=np.float64)
        hor[0] = carry_hor
        np.maximum(wm[:-1], carry_hor, out=hor[1:])
        # ---- late filtering and per-(key, window) folds
        if n:
            self._fold_event_rows(
                keys, values, event_times, origins, hor[tuple_slots]
            )
        # ---- fires, attributed to their exact opportunity
        outputs = self._fire_event_batch(wm, m_now, m_is_tick, lateness)
        self._max_event_time = float(runmax[-1])
        final_hor = max(carry_hor, float(wm[-1]))
        self._fired_horizon = final_hor
        return outputs

    def _fold_event_rows(
        self, keys, values, event_times, origins, hor_tuples
    ) -> None:
        assigner = self.assigner
        lateness = self.allowed_lateness
        lo, hi = index_range_arrays(assigner, event_times)
        valid = lo <= hi
        end_hi = window_end_arrays(assigner, hi)
        full_late = valid & (end_hi + lateness <= hor_tuples)
        self.late_dropped += int(np.count_nonzero(full_late))
        crows = np.flatnonzero(valid & ~full_late)
        if len(crows) == 0:
            return
        # Key states exist for every non-late row's key (scalar creates
        # them before the per-window loop), ranked by first occurrence.
        if keys is None:
            code_c = np.zeros(len(crows), dtype=np.int64)
            states = [self._get_key_state(_GLOBAL_KEY)]
        else:
            keys_c = keys[crows]
            uniques, code_c = np.unique(keys_c, return_inverse=True)
            order_k = np.argsort(code_c, kind="stable")
            bounds_k = np.flatnonzero(np.diff(code_c[order_k]))
            firsts = order_k[np.append(0, bounds_k + 1)]
            key_list = uniques.tolist()
            states = [None] * len(key_list)
            for gi in np.argsort(firsts, kind="stable").tolist():
                states[gi] = self._get_key_state(key_list[gi])
        # Expand rows into (row, window) pairs, drop fired overlaps.
        lo_c = lo[crows]
        span = (hi[crows] - lo_c + 1).astype(np.int64)
        pair_total = int(span.sum())
        rep = np.repeat(np.arange(len(crows)), span)
        offsets = np.arange(pair_total) - np.repeat(
            np.cumsum(span) - span, span
        )
        pair_w = lo_c[rep] + offsets
        pair_end = window_end_arrays(assigner, pair_w)
        pair_hor = hor_tuples[crows][rep]
        keep = pair_end + lateness > pair_hor
        if not keep.any():
            return
        pr = rep[keep]
        pw = pair_w[keep]
        p_end = pair_end[keep]
        p_code = code_c[pr]
        p_vals = values[crows][pr]
        p_orgs = origins[crows][pr]
        # Stable (key, window) grouping preserves arrival order inside
        # each group — the order the scalar accumulators folded in.
        order = np.lexsort((pw, p_code))
        code_o = p_code[order]
        w_o = pw[order]
        bounds = np.flatnonzero(
            (np.diff(code_o) != 0) | (np.diff(w_o) != 0)
        )
        starts = np.append(0, bounds + 1)
        stops = np.append(bounds + 1, len(order))
        vals_o = p_vals[order]
        orgs_o = p_orgs[order]
        end_o = p_end[order]
        seg_min = np.minimum.reduceat(vals_o, starts)
        seg_max = np.maximum.reduceat(vals_o, starts)
        seg_org = np.minimum.reduceat(orgs_o, starts)
        heap = self._fire_heap
        for si in range(len(starts)):
            a = int(starts[si])
            b = int(stops[si])
            kst = states[code_o[a]]
            w = int(w_o[a])
            windows = kst.windows
            state = windows.get(w)
            if state is None:
                state = windows[w] = _WindowState()
                heappush(heap, (float(end_o[a]), kst.rank, w))
            smin = seg_min[si]
            smax = seg_max[si]
            if state.count:
                if smin < state.vmin:
                    state.vmin = smin
                if smax > state.vmax:
                    state.vmax = smax
            else:
                state.vmin = smin
                state.vmax = smax
            state.count += b - a
            state.vsum = sequential_sum(state.vsum, vals_o[a:b])
            if seg_org[si] < state.min_origin:
                state.min_origin = seg_org[si]

    def _get_key_state(self, key) -> _KeyState:
        kst = self._state.get(key)
        if kst is None:
            kst = self._state[key] = _KeyState(len(self._keys_by_rank))
            self._keys_by_rank.append(key)
        return kst

    def _fire_event_batch(
        self, wm, m_now, m_is_tick, lateness
    ) -> list[tuple[float, bool, StreamTuple]]:
        heap = self._fire_heap
        final_wm = wm[-1]
        if not heap or heap[0][0] + lateness > final_wm:
            return []
        states = self._state
        keys_by_rank = self._keys_by_rank
        popped: list[tuple[int, int, int]] = []
        while heap and heap[0][0] + lateness <= final_wm:
            end, rank, w = heappop(heap)
            if w in states[keys_by_rank[rank]].windows:
                # First opportunity whose watermark reaches the window.
                p = int(np.searchsorted(wm, end + lateness, side="left"))
                popped.append((p, rank, w))
        out: list[tuple[float, bool, StreamTuple]] = []
        i = 0
        total = len(popped)
        while i < total:
            p = popped[i][0]
            j = i
            while j < total and popped[j][0] == p:
                j += 1
            group = sorted((rank, w) for _, rank, w in popped[i:j])
            fire_now = float(m_now[p])
            is_tick = bool(m_is_tick[p])
            for rank, w in group:
                key = keys_by_rank[rank]
                state = states[key].windows.pop(w)
                out.append((fire_now, is_tick, self._emit(key, state, fire_now)))
            i = j
        return out

    def _emit(
        self, key: object, state: _WindowState, now: float
    ) -> StreamTuple:
        self.windows_fired += 1
        if self._is_min:
            aggregate = state.vmin
        elif self._is_max:
            aggregate = state.vmax
        elif self._is_count:
            aggregate = float(state.count)
        elif self._is_sum:
            aggregate = state.vsum
        else:
            aggregate = state.vsum / state.count  # AVG and MEAN
        out_key = None if key is _GLOBAL_KEY else key
        return StreamTuple(
            values=(out_key, aggregate),
            event_time=now,
            origin_time=state.min_origin,
            key=out_key,
            size_bytes=40.0,
        )
