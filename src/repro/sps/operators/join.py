"""Windowed equi-join logic (slice-buffered).

A symmetric hash join over processing-time windows: each arriving tuple
is buffered once in the *slice* shared by all tuples with the same
covering window-index interval (see
:meth:`~repro.sps.windows.SlidingTimeWindows.assign_index_range`), not
once per overlapping window, and immediately probes the opposite side's
slices covered by each of its windows — ascending window order, slice
arrival order, so the match sequence is bit-identical to the former
per-window buffering. Expired slices are popped from the front of the
slice deque on arrivals and on the recurring timer; no full-state rescan
is needed because the slice deque is ordered by creation time.
Multi-way joins in the workload are cascades of these 2-way joins, as in
Flink.

Work units grow with the number of matches produced, so join cost is
data-dependent — a key ingredient of the paper's observation that join
parallelism has a tipping point (O2). ``work_units`` reads the match
count of the *previous* probe (the engine bills service time before
running the logic); it is maintained on every return path, including
raising ones.
"""

from __future__ import annotations

import copy
from collections import deque

from repro.common.errors import ConfigurationError
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple, merge_origin
from repro.sps.windows import WindowAssigner

__all__ = ["WindowJoinLogic"]


class _JoinSlice:
    """Both sides' buffers for one run of same-interval tuples."""

    __slots__ = ("lo", "hi", "end_hi", "sides")

    def __init__(self, lo: int, hi: int, end_hi: float) -> None:
        self.lo = lo
        self.hi = hi
        #: end of the newest covered window: once the clock passes it,
        #: every window of this slice has expired
        self.end_hi = end_hi
        #: per side: key -> list[StreamTuple], in arrival order
        self.sides: tuple[dict, dict] = ({}, {})


class WindowJoinLogic(OperatorLogic):
    """Two-input windowed equi-join on per-side key fields.

    ``left_key_field``/``right_key_field`` index into the values of the
    respective input (port 0 = left, port 1 = right). ``None`` uses the
    tuple's pre-assigned key, which is how the physical plan's hash
    exchanges deliver co-partitioned inputs.
    """

    #: joins buffer both sides per (key, slice); migrating that state
    #: would also have to split in-flight probe order across two input
    #: ports, which the drain barrier does not order — not supported
    rescale_supported = False

    def __init__(
        self,
        assigner: WindowAssigner,
        left_key_field: int | None = None,
        right_key_field: int | None = None,
        max_matches_per_probe: int = 64,
    ) -> None:
        if not assigner.is_time_based:
            raise ConfigurationError(
                "window joins require time-based windows (Table 3 joins are "
                "time-windowed)"
            )
        self.assigner = assigner
        self.key_fields = (left_key_field, right_key_field)
        self.max_matches_per_probe = max_matches_per_probe
        # live slices, ordered by creation time (== by (lo, hi))
        self._slices: deque[_JoinSlice] = deque()
        # smallest window index that has not expired yet; None until the
        # first slice exists.  Windows below it are dead.
        self._cut: int | None = None
        # earliest future window end: expiry work is skipped entirely
        # until the clock reaches it (not on every probe)
        self._next_expire = float("inf")
        self.matches_emitted = 0
        self._last_matches = 0
        interval = getattr(assigner, "slide", None) or getattr(
            assigner, "duration"
        )
        self.timer_interval = float(interval)

    def _key_of(self, tup: StreamTuple, port: int) -> object:
        key_field = self.key_fields[port]
        if key_field is not None:
            return tup.values[key_field]
        if tup.key is None:
            raise ConfigurationError(
                "join input has no key; set key fields or key upstream"
            )
        return tup.key

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        outputs: list[StreamTuple] = []
        matches = 0
        try:
            if port not in (0, 1):
                raise ConfigurationError(
                    f"join port must be 0 or 1, got {port}"
                )
            self._expire(now)
            key = self._key_of(tup, port)
            assigner = self.assigner
            lo, hi = assigner.assign_index_range(now)
            if lo > hi:  # rounding left no containing window
                return outputs
            slices = self._slices
            # The clock is non-decreasing, so a tuple extends the newest
            # slice or opens the next one.
            if slices:
                sl = slices[-1]
                if sl.lo != lo or sl.hi != hi:
                    sl = _JoinSlice(lo, hi, assigner.window_end(hi))
                    slices.append(sl)
            else:
                sl = _JoinSlice(lo, hi, assigner.window_end(hi))
                slices.append(sl)
                if self._cut is None:
                    self._cut = lo
                    self._next_expire = assigner.window_end(lo)
            side = sl.sides[port]
            bucket = side.get(key)
            if bucket is None:
                bucket = side[key] = []
            bucket.append(tup)
            # Probe: windows ascending, covering slices in arrival
            # order — the exact match sequence per-window buffering
            # produced (a pair sharing k windows matches k times, as
            # before).  One bucket lookup per overlapping slice; the
            # bucket is then fanned out to the windows it covers.
            opposite = 1 - port
            cap = self.max_matches_per_probe
            n_w = hi - lo + 1
            per_window: list[list | None] = [None] * n_w
            for s in slices:
                if s.lo > hi:
                    break
                if s.hi < lo:
                    continue
                candidates = s.sides[opposite].get(key)
                if candidates:
                    a = s.lo - lo
                    if a < 0:
                        a = 0
                    z = s.hi - lo
                    if z > n_w - 1:
                        z = n_w - 1
                    for wi in range(a, z + 1):
                        cell = per_window[wi]
                        if cell is None:
                            per_window[wi] = [candidates]
                        else:
                            cell.append(candidates)
            for cell in per_window:
                if cell is None:
                    continue
                for candidates in cell:
                    for candidate in candidates:
                        if matches >= cap:
                            return outputs
                        outputs.append(
                            self._join(tup, candidate, port, now, key)
                        )
                        matches += 1
            return outputs
        finally:
            # Billed by work_units on the *next* probe; maintained on
            # raising paths too so cost accounting never reads a stale
            # match count.
            self._last_matches = matches
            self.matches_emitted += matches

    def _join(
        self,
        probe: StreamTuple,
        build: StreamTuple,
        probe_port: int,
        now: float,
        key: object,
    ) -> StreamTuple:
        left, right = (build, probe) if probe_port == 1 else (probe, build)
        return StreamTuple(
            values=left.values + right.values,
            event_time=now,
            origin_time=merge_origin(left, right),
            key=key,
            size_bytes=left.size_bytes + right.size_bytes,
        )

    def _expire(self, now: float) -> None:
        if now < self._next_expire:
            return  # no live window has ended yet: skip entirely
        assigner = self.assigner
        cut = self._cut
        # Advance the expiry cut to the first window still open.  The
        # cut only ever moves forward, so this is amortised O(1).
        while assigner.window_end(cut) <= now:
            cut += 1
        self._cut = cut
        self._next_expire = assigner.window_end(cut)
        slices = self._slices
        while slices and slices[0].hi < cut:
            slices.popleft()

    def on_time(self, now: float) -> list[StreamTuple]:
        self._expire(now)
        return []

    def flush(self, now: float) -> list[StreamTuple]:
        self._slices.clear()
        self._cut = None
        self._next_expire = float("inf")
        return []

    def work_units(self, tup: StreamTuple) -> float:
        # Probing and emitting matches dominates join cost.
        return 1.0 + 0.5 * self._last_matches

    # Join state is buffered per (slice, side, key), not exported by the
    # keyed-migration pair (rescale_supported stays False), so checkpoints
    # copy the slice deque and cursors wholesale.
    def snapshot_state(self):
        """Deep copy of live slices, expiry cursors and match counters."""
        if not self._slices and self._cut is None:
            return None
        return copy.deepcopy(
            (
                list(self._slices),
                self._cut,
                self._next_expire,
                self.matches_emitted,
                self._last_matches,
            )
        )

    def restore_state(self, snapshot) -> None:
        if snapshot is None:
            return
        slices, cut, next_expire, emitted, last = copy.deepcopy(snapshot)
        self._slices = deque(slices)
        self._cut = cut
        self._next_expire = next_expire
        self.matches_emitted = emitted
        self._last_matches = last

    @property
    def buffered_windows(self) -> int:
        """Number of live (non-expired) windows holding buffered tuples."""
        total = 0
        floor = self._cut if self._cut is not None else -(1 << 62)
        for s in self._slices:
            lo = s.lo if s.lo > floor else floor
            if s.hi >= lo:
                total += s.hi - lo + 1
                floor = s.hi + 1
        return total

    @property
    def live_slices(self) -> int:
        """Live slice buffers held in state (observability)."""
        return len(self._slices)
