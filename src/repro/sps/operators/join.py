"""Windowed equi-join logic.

A symmetric hash join over processing-time windows: both inputs are buffered
per (window, key); each arriving tuple immediately probes the opposite
side's buffer of every window it falls into and emits the concatenated
matches. Expired windows are garbage-collected on arrivals and on the
recurring timer. Multi-way joins in the workload are cascades of these
2-way joins, as in Flink.

Work units grow with the number of matches produced, so join cost is
data-dependent — a key ingredient of the paper's observation that join
parallelism has a tipping point (O2).
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple, merge_origin
from repro.sps.windows import WindowAssigner

__all__ = ["WindowJoinLogic"]


class WindowJoinLogic(OperatorLogic):
    """Two-input windowed equi-join on per-side key fields.

    ``left_key_field``/``right_key_field`` index into the values of the
    respective input (port 0 = left, port 1 = right). ``None`` uses the
    tuple's pre-assigned key, which is how the physical plan's hash
    exchanges deliver co-partitioned inputs.
    """

    def __init__(
        self,
        assigner: WindowAssigner,
        left_key_field: int | None = None,
        right_key_field: int | None = None,
        max_matches_per_probe: int = 64,
    ) -> None:
        if not assigner.is_time_based:
            raise ConfigurationError(
                "window joins require time-based windows (Table 3 joins are "
                "time-windowed)"
            )
        self.assigner = assigner
        self.key_fields = (left_key_field, right_key_field)
        self.max_matches_per_probe = max_matches_per_probe
        # window_start -> (end, [left buffer, right buffer])
        # each buffer: key -> list[StreamTuple]
        self._windows: dict[
            float, tuple[float, list[dict[object, list[StreamTuple]]]]
        ] = {}
        # earliest end among live windows, so expiry scans only run when
        # something can actually expire (not on every probe)
        self._min_end = float("inf")
        self.matches_emitted = 0
        self._last_matches = 0
        interval = getattr(assigner, "slide", None) or getattr(
            assigner, "duration"
        )
        self.timer_interval = float(interval)

    def _key_of(self, tup: StreamTuple, port: int) -> object:
        key_field = self.key_fields[port]
        if key_field is not None:
            return tup.values[key_field]
        if tup.key is None:
            raise ConfigurationError(
                "join input has no key; set key fields or key upstream"
            )
        return tup.key

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        if port not in (0, 1):
            raise ConfigurationError(f"join port must be 0 or 1, got {port}")
        self._expire(now)
        key = self._key_of(tup, port)
        outputs: list[StreamTuple] = []
        matches = 0
        for window in self.assigner.assign(now):
            entry = self._windows.get(window.start)
            if entry is None:
                entry = (window.end, [{}, {}])
                self._windows[window.start] = entry
                if window.end < self._min_end:
                    self._min_end = window.end
            _, buffers = entry
            side = buffers[port]
            bucket = side.get(key)
            if bucket is None:
                bucket = side[key] = []
            bucket.append(tup)
            other = buffers[1 - port].get(key, ())
            for candidate in other:
                if matches >= self.max_matches_per_probe:
                    break
                outputs.append(self._join(tup, candidate, port, now, key))
                matches += 1
        self._last_matches = matches
        self.matches_emitted += matches
        return outputs

    def _join(
        self,
        probe: StreamTuple,
        build: StreamTuple,
        probe_port: int,
        now: float,
        key: object,
    ) -> StreamTuple:
        left, right = (build, probe) if probe_port == 1 else (probe, build)
        return StreamTuple(
            values=left.values + right.values,
            event_time=now,
            origin_time=merge_origin(left, right),
            key=key,
            size_bytes=left.size_bytes + right.size_bytes,
        )

    def _expire(self, now: float) -> None:
        if now < self._min_end:
            return  # no live window has ended yet: skip the scan
        expired = [
            start for start, (end, _) in self._windows.items() if end <= now
        ]
        for start in expired:
            del self._windows[start]
        self._min_end = min(
            (end for end, _ in self._windows.values()),
            default=float("inf"),
        )

    def on_time(self, now: float) -> list[StreamTuple]:
        self._expire(now)
        return []

    def flush(self, now: float) -> list[StreamTuple]:
        self._windows.clear()
        self._min_end = float("inf")
        return []

    def work_units(self, tup: StreamTuple) -> float:
        # Probing and emitting matches dominates join cost.
        return 1.0 + 0.5 * self._last_matches

    @property
    def buffered_windows(self) -> int:
        """Number of live (non-expired) windows held in state."""
        return len(self._windows)
