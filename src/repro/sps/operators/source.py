"""Source logic.

Sources do not consume tuples; the engine polls them through
:meth:`SourceLogic.generate` each time the subtask's arrival process fires.
The tuple generator is any callable ``(rng, event_time) -> StreamTuple`` —
the workload layer supplies synthetic and application-specific generators.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple

__all__ = ["SourceLogic"]

TupleGenerator = Callable[[np.random.Generator, float], StreamTuple]

#: Columnar form used by batch mode: ``(rng, nows) -> (columns, sizes)``
#: where ``columns`` is a tuple of arrays (one per value field) and
#: ``sizes`` is a float or per-tuple array of tuple sizes in bytes.  To
#: keep runs batch-size invariant the callable must consume the RNG
#: per-element sequentially (one tuple's draws before the next tuple's),
#: e.g. ``rng.integers(64, size=n)`` — never draws whose layout depends
#: on ``len(nows)``.
VectorTupleGenerator = Callable[[np.random.Generator, np.ndarray], tuple]


class SourceLogic(OperatorLogic):
    """Wraps a tuple generator; one instance per source subtask."""

    def __init__(
        self,
        generator: TupleGenerator,
        vector_generator: VectorTupleGenerator | None = None,
    ) -> None:
        self._generator = generator
        self._vector_generator = vector_generator
        self.emitted = 0

    @property
    def has_vector_generator(self) -> bool:
        """Whether batch mode can generate whole micro-batches at once."""
        return self._vector_generator is not None

    def generate_columns(self, nows: np.ndarray) -> tuple:
        """Columns + sizes for one micro-batch of arrivals (batch mode)."""
        columns, sizes = self._vector_generator(self.ctx.rng, nows)
        self.emitted += len(nows)
        return columns, sizes

    def generate(self, now: float) -> StreamTuple:
        """Produce the next tuple at simulated time ``now``."""
        tup = self._generator(self.ctx.rng, now)
        tup.origin_time = now
        tup.event_time = now
        self.emitted += 1
        return tup

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        raise RuntimeError("sources are polled via generate(), not process()")
