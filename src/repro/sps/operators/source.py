"""Source logic.

Sources do not consume tuples; the engine polls them through
:meth:`SourceLogic.generate` each time the subtask's arrival process fires.
The tuple generator is any callable ``(rng, event_time) -> StreamTuple`` —
the workload layer supplies synthetic and application-specific generators.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple

__all__ = ["SourceLogic"]

TupleGenerator = Callable[[np.random.Generator, float], StreamTuple]


class SourceLogic(OperatorLogic):
    """Wraps a tuple generator; one instance per source subtask."""

    def __init__(self, generator: TupleGenerator) -> None:
        self._generator = generator
        self.emitted = 0

    def generate(self, now: float) -> StreamTuple:
        """Produce the next tuple at simulated time ``now``."""
        tup = self._generator(self.ctx.rng, now)
        tup.origin_time = now
        tup.event_time = now
        self.emitted += 1
        return tup

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        raise RuntimeError("sources are polled via generate(), not process()")
