"""Windowed aggregation logic (slice-based, incremental).

Supports all four window combinations of Table 3 (tumbling/sliding x
time/count) and the aggregate functions min/max/avg/mean/sum/count, keyed or
global. Time windows use processing-time semantics (Flink's default): a
tuple joins the window(s) covering its arrival time at the operator, and a
window fires once the subtask's clock passes its end — either on the next
arrival or on the operator's recurring timer, whichever comes first.

**Slicing.** Instead of appending every tuple into each of its
``duration/slide`` overlapping windows, processing time is partitioned
into non-overlapping *slices*: maximal runs of tuples sharing the same
covering window-index interval ``[lo, hi]`` (see
:meth:`~repro.sps.windows.SlidingTimeWindows.assign_index_range`).  Each
tuple updates exactly one slice accumulator (count/sum/min/max plus the
running earliest origin), so per-tuple cost is O(1) regardless of window
overlap — the Scotty / Cutty stream-slicing idea.  A firing window ``w``
is assembled by combining the (few) slices whose interval contains ``w``,
in slice-creation order, which equals tuple-arrival order because the
subtask clock is non-decreasing.

**Heap-scheduled firing.** Pending windows are tracked in a global
min-heap of ``(end, key_rank, window_index)`` entries, so firing pops
exactly the ready windows instead of scanning every key's state dict.
Ready windows are emitted in ``(key-first-seen, window_start)`` order —
bit-identical to the order the previous scan-based implementation
produced.

**Float exactness.** ``min``/``max``/``count`` combine across slices
exactly (order-insensitive).  Float ``sum``/``avg`` are only
reproducible when folded in arrival order, so on genuinely overlapping
sliding windows each slice also keeps its raw value list and a window's
sum is folded as *first slice's running sum, then the later slices'
individual values in order* — bit-identical to summing the window's
value list.  Pass ``exact_sums=False`` to combine per-slice partial sums
instead (O(slices) per fire, but re-associated: results can differ in
the last ulp from the reference fold).

Output tuples carry ``(key, aggregate)`` values and inherit the *earliest*
origin time of the window's contributors, matching the paper's end-to-end
latency definition (window time counts toward latency).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sps.columnar import sequential_sum
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.windows import (
    AggregateFunction,
    SlidingCountWindows,
    SlidingTimeWindows,
    TumblingCountWindows,
    WindowAssigner,
    index_range_arrays as _index_range_arrays,
)

__all__ = ["WindowAggregateLogic"]

_GLOBAL_KEY = "__global__"

_INF = float("inf")


class _Slice:
    """Accumulator over one run of tuples sharing a window interval.

    ``values`` is only populated when the exact arrival-order fold is
    required (float sum/avg on overlapping sliding windows); otherwise
    the four scalar accumulators fully describe the slice.
    """

    __slots__ = (
        "lo",
        "hi",
        "count",
        "vsum",
        "vmin",
        "vmax",
        "min_origin",
        "values",
    )

    def __init__(self, lo: int, hi: int, keep_values: bool) -> None:
        self.lo = lo
        self.hi = hi
        self.count = 0
        self.vsum = 0.0
        self.vmin = _INF
        self.vmax = -_INF
        self.min_origin = _INF
        self.values: list[float] | None = [] if keep_values else None


class _KeyTimeState:
    """Per-key slice deque plus pending-window bookkeeping."""

    __slots__ = ("rank", "slices", "pending", "next_mark")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.slices: deque[_Slice] = deque()
        self.pending: set[int] = set()
        # Window indices below this are already marked (or fired);
        # marking only ever moves forward because the clock does.
        self.next_mark: int | None = None


class _KeyCountState:
    """Per-key count-window accumulator.

    Tumbling count windows reset the scalar accumulators on every fire,
    so no buffer is kept at all.  Sliding count windows keep the value
    deque (the window's contents) plus monotonic front-min/front-max
    deques so every fire is O(1) for min/max/count/origin instead of the
    former ``list(buffer)`` copy and O(n) ``min`` scans; only float
    sum/avg still fold the deque in order (exactness — see module doc).
    """

    __slots__ = (
        "count",
        "vsum",
        "vmin",
        "vmax",
        "min_origin",
        "values",
        "origins",
        "minq",
        "maxq",
        "seq",
    )

    def __init__(self, sliding: bool, track_min: bool, track_max: bool):
        self.count = 0
        self.vsum = 0.0
        self.vmin = _INF
        self.vmax = -_INF
        self.min_origin = _INF
        self.values: deque[float] | None = deque() if sliding else None
        # (arrival index, origin) with non-decreasing origins: front is
        # the earliest-arriving minimum of the live window.
        self.origins: deque[tuple[int, float]] = deque()
        self.minq: deque[tuple[int, float]] | None = (
            deque() if (sliding and track_min) else None
        )
        self.maxq: deque[tuple[int, float]] | None = (
            deque() if (sliding and track_max) else None
        )
        self.seq = 0


class WindowAggregateLogic(OperatorLogic):
    """Aggregates ``value_field`` over windows, grouped by ``key_field``.

    ``key_field=None`` groups by the tuple's pre-assigned key (set by an
    upstream keyBy/hash exchange) or globally when the tuple has no key.

    ``exact_sums`` (default ``True``) keeps float sum/avg bit-identical
    to the per-window reference fold; see the module docstring.
    """

    #: slice accumulators migrate wholesale per key (export/import below)
    rescale_supported = True

    def __init__(
        self,
        assigner: WindowAssigner,
        function: AggregateFunction,
        value_field: int,
        key_field: int | None = None,
        exact_sums: bool = True,
    ) -> None:
        if value_field < 0:
            raise ConfigurationError("value_field must be non-negative")
        self.assigner = assigner
        self.function = function
        self.value_field = value_field
        self.key_field = key_field
        self.exact_sums = exact_sums
        # time-window state: key -> _KeyTimeState, in key-first-seen
        # order (dict insertion order doubles as the rank order)
        self._time_state: dict[object, _KeyTimeState] = {}
        self._keys_by_rank: list[object] = []
        # min-heap of (window end, key rank, window index): only keys
        # with a ready window are touched at fire time
        self._fire_heap: list[tuple[float, int, int]] = []
        # count-window state: key -> _KeyCountState
        self._count_state: dict[object, _KeyCountState] = {}
        self._count_since_fire: dict[object, int] = {}
        self.windows_fired = 0
        # Resolved once: these decide the per-tuple branch.
        self._time_based = assigner.is_time_based
        self._count_tumbling = isinstance(assigner, TumblingCountWindows)
        self._count_sliding = isinstance(assigner, SlidingCountWindows)
        fn = function
        self._is_min = fn is AggregateFunction.MIN
        self._is_max = fn is AggregateFunction.MAX
        self._is_count = fn is AggregateFunction.COUNT
        self._is_sum = fn is AggregateFunction.SUM
        # Raw values are only needed for the exact cross-slice sum fold:
        # float sum/avg, and only when windows can actually span more
        # than one slice (genuinely overlapping sliding time windows).
        sum_shaped = not (self._is_min or self._is_max or self._is_count)
        self._keep_values = (
            exact_sums
            and sum_shaped
            and isinstance(assigner, SlidingTimeWindows)
            and assigner.slide < assigner.duration
        )
        if assigner.is_time_based:
            interval = getattr(assigner, "slide", None) or getattr(
                assigner, "duration"
            )
            self.timer_interval = float(interval)

    # ---------------------------------------------------------------- keys

    def _key_of(self, tup: StreamTuple) -> object:
        if self.key_field is not None:
            return tup.values[self.key_field]
        if tup.key is not None:
            return tup.key
        return _GLOBAL_KEY

    # ------------------------------------------------------------- process

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        key = self._key_of(tup)
        value = float(tup.values[self.value_field])
        if self._time_based:
            st = self._time_state.get(key)
            if st is None:
                st = self._time_state[key] = _KeyTimeState(
                    len(self._keys_by_rank)
                )
                self._keys_by_rank.append(key)
            lo, hi = self.assigner.assign_index_range(now)
            if lo <= hi:
                slices = st.slices
                # The clock is non-decreasing, so (lo, hi) intervals are
                # too: a tuple either extends the newest slice or opens
                # the next one.
                if slices:
                    sl = slices[-1]
                    if sl.lo != lo or sl.hi != hi:
                        sl = _Slice(lo, hi, self._keep_values)
                        slices.append(sl)
                else:
                    sl = _Slice(lo, hi, self._keep_values)
                    slices.append(sl)
                if sl.count:
                    if value < sl.vmin:
                        sl.vmin = value
                    if value > sl.vmax:
                        sl.vmax = value
                else:
                    sl.vmin = value
                    sl.vmax = value
                sl.count += 1
                sl.vsum += value
                origin = tup.origin_time
                if origin < sl.min_origin:
                    sl.min_origin = origin
                if sl.values is not None:
                    sl.values.append(value)
                # Mark newly-seen windows as pending on the fire heap.
                mark = st.next_mark
                w = lo if (mark is None or mark < lo) else mark
                if w <= hi:
                    pending = st.pending
                    heap = self._fire_heap
                    rank = st.rank
                    window_end = self.assigner.window_end
                    while w <= hi:
                        pending.add(w)
                        heappush(heap, (window_end(w), rank, w))
                        w += 1
                    st.next_mark = hi + 1
            return self._fire_time_windows(now)
        return self._process_count(key, value, tup.origin_time, now)

    # ------------------------------------------------------- count windows

    def _process_count(
        self, key: object, value: float, origin: float, now: float
    ) -> list[StreamTuple]:
        st = self._count_state.get(key)
        if st is None:
            st = self._count_state[key] = _KeyCountState(
                self._count_sliding, self._is_min, self._is_max
            )
        assigner = self.assigner
        if self._count_tumbling:
            if st.count:
                if value < st.vmin:
                    st.vmin = value
                if value > st.vmax:
                    st.vmax = value
            else:
                st.vmin = value
                st.vmax = value
            st.count += 1
            st.vsum += value
            if origin < st.min_origin:
                st.min_origin = origin
            if st.count >= assigner.length:
                out = self._emit_tumbling_count(key, st, now)
                st.count = 0
                st.vsum = 0.0
                st.min_origin = _INF
                return [out]
            return []
        if self._count_sliding:
            values = st.values
            i = st.seq
            st.seq = i + 1
            values.append(value)
            origins = st.origins
            while origins and origins[-1][1] > origin:
                origins.pop()
            origins.append((i, origin))
            minq = st.minq
            if minq is not None:
                while minq and minq[-1][1] > value:
                    minq.pop()
                minq.append((i, value))
            maxq = st.maxq
            if maxq is not None:
                while maxq and maxq[-1][1] < value:
                    maxq.pop()
                maxq.append((i, value))
            while len(values) > assigner.length:
                values.popleft()
            head = st.seq - len(values)
            while origins[0][0] < head:
                origins.popleft()
            if minq is not None:
                while minq[0][0] < head:
                    minq.popleft()
            if maxq is not None:
                while maxq[0][0] < head:
                    maxq.popleft()
            count = self._count_since_fire.get(key, 0) + 1
            if len(values) >= assigner.length and count >= assigner.slide:
                self._count_since_fire[key] = 0
                return [self._emit_sliding_count(key, st, now)]
            self._count_since_fire[key] = count
            return []
        raise ConfigurationError(
            f"unsupported count assigner {type(assigner).__name__}"
        )

    # ---------------------------------------------------------- time firing

    def _fire_time_windows(self, now: float) -> list[StreamTuple]:
        heap = self._fire_heap
        if not heap or heap[0][0] > now:
            return []  # nothing ready: the common case on every tuple
        states = self._time_state
        keys_by_rank = self._keys_by_rank
        ready: list[tuple[int, int]] = []
        while heap and heap[0][0] <= now:
            _end, rank, w = heappop(heap)
            st = states[keys_by_rank[rank]]
            if w in st.pending:
                st.pending.discard(w)
                ready.append((rank, w))
        if not ready:
            return []
        # Emission order is pinned: key-first-seen major, window minor —
        # exactly what the former all-keys scan produced.
        ready.sort()
        outputs: list[StreamTuple] = []
        for rank, w in ready:
            key = keys_by_rank[rank]
            outputs.append(self._emit_window(key, states[key], w, now))
        return outputs

    def on_time(self, now: float) -> list[StreamTuple]:
        if not self._time_based:
            return []
        return self._fire_time_windows(now)

    def flush(self, now: float) -> list[StreamTuple]:
        outputs: list[StreamTuple] = []
        if self._time_based:
            for key, st in self._time_state.items():
                for w in sorted(st.pending):
                    st.pending.discard(w)
                    outputs.append(self._emit_window(key, st, w, now))
            self._time_state.clear()
            self._keys_by_rank.clear()
            self._fire_heap.clear()
        else:
            for key, st in self._count_state.items():
                if st.values is not None:
                    if st.values:
                        outputs.append(self._emit_sliding_count(key, st, now))
                elif st.count:
                    outputs.append(self._emit_tumbling_count(key, st, now))
            self._count_state.clear()
        return outputs

    # ------------------------------------------------------------ migration

    def export_keyed_state(self):
        """Move every key's live accumulators out for a rescale.

        Slices make the handoff cheap: each key's payload is its slice
        deque, pending-window set and watermark — moved by reference,
        never rescanned. Keys leave in rank (first-seen) order, and this
        instance is left empty.
        """
        items: list[tuple[object, tuple]] = []
        if self._time_based:
            for key in self._keys_by_rank:
                st = self._time_state[key]
                items.append(
                    (key, ("time", st.slices, sorted(st.pending), st.next_mark))
                )
            self._time_state = {}
            self._keys_by_rank = []
            self._fire_heap = []
        else:
            for key, st in self._count_state.items():
                items.append(
                    (key, ("count", st, self._count_since_fire.get(key, 0)))
                )
            self._count_state = {}
            self._count_since_fire = {}
        return items

    def import_keyed_state(self, items) -> None:
        """Adopt migrated keys, pinning their ranks in arrival order."""
        for key, payload in items:
            if payload[0] == "time":
                _, slices, pending, next_mark = payload
                st = _KeyTimeState(len(self._keys_by_rank))
                self._keys_by_rank.append(key)
                st.slices = slices
                st.pending = set(pending)
                st.next_mark = next_mark
                self._time_state[key] = st
                window_end = self.assigner.window_end
                for w in pending:
                    heappush(
                        self._fire_heap, (window_end(w), st.rank, w)
                    )
            else:
                _, st, since_fire = payload
                self._count_state[key] = st
                if since_fire:
                    self._count_since_fire[key] = since_fire

    # -------------------------------------------------------------- emission

    def _emit_window(
        self, key: object, st: _KeyTimeState, w: int, fire_time: float
    ) -> StreamTuple:
        slices = st.slices
        # Slices wholly before the oldest pending window are dead; the
        # fire order (ascending per key) makes this safe to pop eagerly.
        while slices and slices[0].hi < w:
            slices.popleft()
        first = slices[0]
        total = first.count
        min_origin = first.min_origin
        if self._is_min:
            acc = first.vmin
            for sl in slices:
                if sl is first:
                    continue
                if sl.lo > w:
                    break
                total += sl.count
                if sl.min_origin < min_origin:
                    min_origin = sl.min_origin
                if sl.vmin < acc:
                    acc = sl.vmin
            aggregate = acc
        elif self._is_max:
            acc = first.vmax
            for sl in slices:
                if sl is first:
                    continue
                if sl.lo > w:
                    break
                total += sl.count
                if sl.min_origin < min_origin:
                    min_origin = sl.min_origin
                if sl.vmax > acc:
                    acc = sl.vmax
            aggregate = acc
        else:
            # sum-shaped: SUM, AVG, MEAN, COUNT
            acc = first.vsum
            for sl in slices:
                if sl is first:
                    continue
                if sl.lo > w:
                    break
                total += sl.count
                if sl.min_origin < min_origin:
                    min_origin = sl.min_origin
                if sl.values is not None:
                    # exact fold: replay this slice's values in order
                    for v in sl.values:
                        acc += v
                else:
                    acc += sl.vsum
            if self._is_count:
                aggregate = float(total)
            elif self._is_sum:
                aggregate = acc
            else:
                aggregate = acc / total  # AVG and MEAN
        self.windows_fired += 1
        out_key = None if key is _GLOBAL_KEY else key
        return StreamTuple(
            values=(out_key, aggregate),
            event_time=fire_time,
            origin_time=min_origin,
            key=out_key,
            size_bytes=40.0,
        )

    def _emit_tumbling_count(
        self, key: object, st: _KeyCountState, now: float
    ) -> StreamTuple:
        if self._is_min:
            aggregate = st.vmin
        elif self._is_max:
            aggregate = st.vmax
        elif self._is_count:
            aggregate = float(st.count)
        elif self._is_sum:
            aggregate = st.vsum
        else:
            aggregate = st.vsum / st.count
        return self._emit_count(key, aggregate, st.min_origin, now)

    def _emit_sliding_count(
        self, key: object, st: _KeyCountState, now: float
    ) -> StreamTuple:
        values = st.values
        if self._is_min:
            aggregate = st.minq[0][1]
        elif self._is_max:
            aggregate = st.maxq[0][1]
        elif self._is_count:
            aggregate = float(len(values))
        else:
            # Ordered fold over the live window keeps float sums
            # bit-identical to the reference (see module docstring).
            total = float(sum(values))
            aggregate = total if self._is_sum else total / len(values)
        return self._emit_count(key, aggregate, st.origins[0][1], now)

    def _emit_count(
        self, key: object, aggregate: float, min_origin: float, now: float
    ) -> StreamTuple:
        self.windows_fired += 1
        out_key = None if key is _GLOBAL_KEY else key
        return StreamTuple(
            values=(out_key, aggregate),
            event_time=now,
            origin_time=min_origin,
            key=out_key,
            size_bytes=40.0,
        )

    # --------------------------------------------------------- batch kernel

    def supports_batch(self) -> bool:
        # Count windows fire on per-key arrival counts with ring-buffer
        # state; they stay on the scalar fallback (see repro.sps.batch).
        return self._time_based

    def process_time_batch(
        self, keys, values, nows, origins, ticks
    ) -> list[tuple[float, bool, StreamTuple]]:
        """Fold one micro-batch into the slice state, vectorized.

        ``keys`` is a list of per-row group keys (or ``None`` when every
        row is global), ``values``/``nows``/``origins`` float64 arrays
        with ``nows`` non-decreasing, and ``ticks`` this instance's full
        timer-tick schedule (sorted array) used to attribute fire times.

        Updates the *same* per-key slice/pending/heap state the scalar
        path uses — segments of rows sharing a (key, slice) pair are
        reduced at once (``cumsum`` for the order-exact sum fold,
        ``reduceat`` for the order-free min/max/origin) — then fires every
        window whose end the batch's clock passed, each at the earliest
        tuple-or-tick opportunity ``>=`` its end, exactly where the scalar
        event loop would have fired it.  Returns
        ``(fire_time, tick_triggered, tuple)`` triples in emission order.
        """
        n = len(values)
        if n:
            lo, hi = _index_range_arrays(self.assigner, nows)
            valid = lo <= hi
            if keys is None:
                st = self._get_time_state(_GLOBAL_KEY)
                idxs = np.flatnonzero(valid)
                self._fold_key_rows(st, idxs, values, origins, lo, hi)
            else:
                codes, firsts, uniques = _group_codes(keys)
                # Ranks are assigned at key-first-seen, in arrival order
                # (scalar creates the key state on its first tuple even
                # when rounding leaves that tuple without a window).
                states = [None] * len(uniques)
                for gi in np.argsort(firsts, kind="stable").tolist():
                    states[gi] = self._get_time_state(uniques[gi])
                order = np.argsort(codes, kind="stable")
                order = order[valid[order]]
                if len(order):
                    codes_o = codes[order]
                    bounds = np.flatnonzero(codes_o[1:] != codes_o[:-1])
                    starts = np.concatenate(([0], bounds + 1)).tolist()
                    stops = np.concatenate(
                        (bounds + 1, [len(order)])
                    ).tolist()
                    for a, b in zip(starts, stops):
                        self._fold_key_rows(
                            states[codes_o[a]],
                            order[a:b],
                            values,
                            origins,
                            lo,
                            hi,
                        )
        return self._fire_batch(nows, ticks)

    def _get_time_state(self, key) -> _KeyTimeState:
        st = self._time_state.get(key)
        if st is None:
            st = self._time_state[key] = _KeyTimeState(
                len(self._keys_by_rank)
            )
            self._keys_by_rank.append(key)
        return st

    def _fold_key_rows(self, st, idxs, values, origins, lo, hi) -> None:
        """Fold rows ``idxs`` (arrival order, one key) into its slices.

        ``lo``/``hi`` are the whole batch's index-interval arrays; the
        rows are cut into runs sharing one (lo, hi) — the slices — and
        each run is reduced at once.
        """
        count = len(idxs)
        if count == 0:
            return
        vals = values[idxs]
        lo_r = lo[idxs]
        hi_r = hi[idxs]
        if lo_r[0] == lo_r[count - 1] and hi_r[0] == hi_r[count - 1]:
            # Fast path: the whole run lands in one slice — the common
            # case for tumbling windows, where only the chunks straddling
            # a window boundary ever split.
            self._fold_segment(
                st,
                int(lo_r[0]),
                int(hi_r[0]),
                vals.min(),
                vals.max(),
                origins[idxs].min(),
                vals,
            )
            return
        orgs = origins[idxs]
        bounds = np.flatnonzero(
            (lo_r[1:] != lo_r[:-1]) | (hi_r[1:] != hi_r[:-1])
        )
        starts = np.concatenate(([0], bounds + 1))
        stops = np.concatenate((bounds + 1, [count]))
        seg_min = np.minimum.reduceat(vals, starts)
        seg_max = np.maximum.reduceat(vals, starts)
        seg_org = np.minimum.reduceat(orgs, starts)
        for si in range(len(starts)):
            a = int(starts[si])
            b = int(stops[si])
            self._fold_segment(
                st,
                int(lo_r[a]),
                int(hi_r[a]),
                seg_min[si],
                seg_max[si],
                seg_org[si],
                vals[a:b],
            )

    def _fold_segment(
        self, st, s_lo: int, s_hi: int, smin, smax, sorg, vals
    ) -> None:
        """Fold one same-(lo, hi) run of values into its slice state."""
        slices = st.slices
        if slices:
            sl = slices[-1]
            if sl.lo != s_lo or sl.hi != s_hi:
                sl = _Slice(s_lo, s_hi, self._keep_values)
                slices.append(sl)
        else:
            sl = _Slice(s_lo, s_hi, self._keep_values)
            slices.append(sl)
        if sl.count:
            if smin < sl.vmin:
                sl.vmin = smin
            if smax > sl.vmax:
                sl.vmax = smax
        else:
            sl.vmin = smin
            sl.vmax = smax
        sl.count += len(vals)
        sl.vsum = sequential_sum(sl.vsum, vals)
        if sorg < sl.min_origin:
            sl.min_origin = sorg
        if sl.values is not None:
            sl.values.extend(vals.tolist())
        mark = st.next_mark
        w = s_lo if (mark is None or mark < s_lo) else mark
        if w <= s_hi:
            pending = st.pending
            heap = self._fire_heap
            rank = st.rank
            window_end = self.assigner.window_end
            while w <= s_hi:
                pending.add(w)
                heappush(heap, (window_end(w), rank, w))
                w += 1
            st.next_mark = s_hi + 1

    def _fire_batch(
        self, nows, ticks
    ) -> list[tuple[float, bool, StreamTuple]]:
        heap = self._fire_heap
        n = len(nows)
        if not heap or n == 0 or heap[0][0] > nows[n - 1]:
            return []
        last_now = nows[n - 1]
        states = self._time_state
        keys_by_rank = self._keys_by_rank
        n_ticks = len(ticks)
        popped: list[tuple[float, bool, int, int]] = []
        while heap and heap[0][0] <= last_now:
            end, rank, w = heappop(heap)
            st = states[keys_by_rank[rank]]
            if w in st.pending:
                st.pending.discard(w)
                ti = int(np.searchsorted(nows, end, side="left"))
                t_tuple = float(nows[ti])  # exists: end <= last_now
                tk = int(np.searchsorted(ticks, end, side="left"))
                if tk < n_ticks and float(ticks[tk]) < t_tuple:
                    popped.append((float(ticks[tk]), True, rank, w))
                else:
                    popped.append((t_tuple, False, rank, w))
        return self._emit_fire_groups(popped)

    def _emit_fire_groups(
        self, popped: list[tuple[float, bool, int, int]]
    ) -> list[tuple[float, bool, StreamTuple]]:
        """Emit pops grouped by fire opportunity, (rank, window) within.

        Pops arrive end-ascending, hence fire-time non-decreasing; each
        equal-fire-time run is one scalar ``_fire_time_windows`` call,
        whose ``ready.sort()`` order is reproduced here.
        """
        out: list[tuple[float, bool, StreamTuple]] = []
        states = self._time_state
        keys_by_rank = self._keys_by_rank
        i = 0
        total = len(popped)
        while i < total:
            fire_time = popped[i][0]
            is_tick = popped[i][1]
            j = i
            while j < total and popped[j][0] == fire_time:
                j += 1
            group = sorted((rank, w) for _, _, rank, w in popped[i:j])
            for rank, w in group:
                key = keys_by_rank[rank]
                out.append(
                    (
                        fire_time,
                        is_tick,
                        self._emit_window(key, states[key], w, fire_time),
                    )
                )
            i = j
        return out

    def finalize_time_batch(
        self, ticks
    ) -> list[tuple[float, bool, StreamTuple]]:
        """Fire the windows the remaining timer ticks would still reach.

        Called once after the last micro-batch; anything left after this
        is end-of-stream state for :meth:`flush`.
        """
        heap = self._fire_heap
        if not heap or len(ticks) == 0:
            return []
        t_max = float(ticks[-1])
        states = self._time_state
        keys_by_rank = self._keys_by_rank
        popped: list[tuple[float, bool, int, int]] = []
        while heap and heap[0][0] <= t_max:
            end, rank, w = heappop(heap)
            st = states[keys_by_rank[rank]]
            if w in st.pending:
                st.pending.discard(w)
                tk = int(np.searchsorted(ticks, end, side="left"))
                popped.append((float(ticks[tk]), True, rank, w))
        return self._emit_fire_groups(popped)

    # ------------------------------------------------------------- obs hooks

    @property
    def live_slices(self) -> int:
        """Total live slice accumulators (observability)."""
        return sum(len(st.slices) for st in self._time_state.values())

    @property
    def pending_windows(self) -> int:
        """Windows marked but not yet fired (observability)."""
        return sum(len(st.pending) for st in self._time_state.values())


def _group_codes(keys):
    """Group a key array: per-row group codes, first-occurrence index per
    group, and the group key values as plain Python objects."""
    uniques, codes = np.unique(keys, return_inverse=True)
    order = np.argsort(codes, kind="stable")
    codes_o = codes[order]
    bounds = np.flatnonzero(codes_o[1:] != codes_o[:-1])
    firsts = order[np.concatenate(([0], bounds + 1))]
    return codes, firsts, uniques.tolist()
