"""Windowed aggregation logic.

Supports all four window combinations of Table 3 (tumbling/sliding x
time/count) and the aggregate functions min/max/avg/mean/sum/count, keyed or
global. Time windows use processing-time semantics (Flink's default): a
tuple joins the window(s) covering its arrival time at the operator, and a
window fires once the subtask's clock passes its end — either on the next
arrival or on the operator's recurring timer, whichever comes first.

Output tuples carry ``(key, aggregate)`` values and inherit the *earliest*
origin time of the window's contributors, matching the paper's end-to-end
latency definition (window time counts toward latency).
"""

from __future__ import annotations

from collections import deque

from repro.common.errors import ConfigurationError
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.windows import (
    AggregateFunction,
    SlidingCountWindows,
    TumblingCountWindows,
    WindowAssigner,
)

__all__ = ["WindowAggregateLogic"]

_GLOBAL_KEY = "__global__"


class _TimeWindowState:
    """Accumulated values of one (key, window) pair."""

    __slots__ = ("values", "min_origin", "end")

    def __init__(self, end: float) -> None:
        self.values: list[float] = []
        self.min_origin = float("inf")
        self.end = end

    def add(self, value: float, origin: float) -> None:
        self.values.append(value)
        if origin < self.min_origin:
            self.min_origin = origin


class WindowAggregateLogic(OperatorLogic):
    """Aggregates ``value_field`` over windows, grouped by ``key_field``.

    ``key_field=None`` groups by the tuple's pre-assigned key (set by an
    upstream keyBy/hash exchange) or globally when the tuple has no key.
    """

    def __init__(
        self,
        assigner: WindowAssigner,
        function: AggregateFunction,
        value_field: int,
        key_field: int | None = None,
    ) -> None:
        if value_field < 0:
            raise ConfigurationError("value_field must be non-negative")
        self.assigner = assigner
        self.function = function
        self.value_field = value_field
        self.key_field = key_field
        # time-window state: key -> {window_start -> _TimeWindowState}
        self._time_state: dict[object, dict[float, _TimeWindowState]] = {}
        # earliest pending window end across all keys: firing scans the
        # whole state, so skip the scan entirely until the clock reaches
        # the earliest end (the common case on every tuple)
        self._min_end = float("inf")
        # count-window state: key -> deque[(value, origin)]
        self._count_state: dict[object, deque[tuple[float, float]]] = {}
        self._count_since_fire: dict[object, int] = {}
        self.windows_fired = 0
        # Resolved once: the count-window branch runs per tuple.
        self._count_tumbling = isinstance(assigner, TumblingCountWindows)
        self._count_sliding = isinstance(assigner, SlidingCountWindows)
        if assigner.is_time_based:
            interval = getattr(assigner, "slide", None) or getattr(
                assigner, "duration"
            )
            self.timer_interval = float(interval)

    # ---------------------------------------------------------------- keys

    def _key_of(self, tup: StreamTuple) -> object:
        if self.key_field is not None:
            return tup.values[self.key_field]
        if tup.key is not None:
            return tup.key
        return _GLOBAL_KEY

    # ------------------------------------------------------------- process

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        key = self._key_of(tup)
        value = float(tup.values[self.value_field])
        if self.assigner.is_time_based:
            per_key = self._time_state.get(key)
            if per_key is None:
                per_key = self._time_state[key] = {}
            for window in self.assigner.assign(now):
                state = per_key.get(window.start)
                if state is None:
                    state = _TimeWindowState(window.end)
                    per_key[window.start] = state
                    if window.end < self._min_end:
                        self._min_end = window.end
                state.add(value, tup.origin_time)
            return self._fire_time_windows(now)
        return self._process_count(key, value, tup.origin_time, now)

    def _process_count(
        self, key: object, value: float, origin: float, now: float
    ) -> list[StreamTuple]:
        buffer = self._count_state.get(key)
        if buffer is None:
            buffer = self._count_state[key] = deque()
        buffer.append((value, origin))
        assigner = self.assigner
        if self._count_tumbling:
            if len(buffer) >= assigner.length:
                out = self._emit(key, list(buffer), now)
                buffer.clear()
                return [out]
            return []
        if self._count_sliding:
            while len(buffer) > assigner.length:
                buffer.popleft()
            count = self._count_since_fire.get(key, 0) + 1
            if len(buffer) >= assigner.length and count >= assigner.slide:
                self._count_since_fire[key] = 0
                return [self._emit(key, list(buffer), now)]
            self._count_since_fire[key] = count
            return []
        raise ConfigurationError(
            f"unsupported count assigner {type(assigner).__name__}"
        )

    # ---------------------------------------------------------- time firing

    def _fire_time_windows(self, now: float) -> list[StreamTuple]:
        if now < self._min_end:
            return []  # nothing can be ready yet: skip the state scan
        outputs: list[StreamTuple] = []
        next_min = float("inf")
        for key, per_key in self._time_state.items():
            ready = [
                start for start, st in per_key.items() if st.end <= now
            ]
            for start in sorted(ready):
                state = per_key.pop(start)
                outputs.append(
                    self._emit_state(key, state, fire_time=now)
                )
            for st in per_key.values():
                if st.end < next_min:
                    next_min = st.end
        self._min_end = next_min
        return outputs

    def on_time(self, now: float) -> list[StreamTuple]:
        if not self.assigner.is_time_based:
            return []
        return self._fire_time_windows(now)

    def flush(self, now: float) -> list[StreamTuple]:
        outputs: list[StreamTuple] = []
        if self.assigner.is_time_based:
            for key, per_key in self._time_state.items():
                for start in sorted(per_key):
                    outputs.append(
                        self._emit_state(key, per_key[start], fire_time=now)
                    )
            self._time_state.clear()
            self._min_end = float("inf")
        else:
            for key, buffer in self._count_state.items():
                if buffer:
                    outputs.append(self._emit(key, list(buffer), now))
            self._count_state.clear()
        return outputs

    # -------------------------------------------------------------- emission

    def _emit_state(
        self, key: object, state: _TimeWindowState, fire_time: float
    ) -> StreamTuple:
        self.windows_fired += 1
        aggregate = self.function.apply(state.values)
        out_key = None if key is _GLOBAL_KEY else key
        return StreamTuple(
            values=(out_key, aggregate),
            event_time=fire_time,
            origin_time=state.min_origin,
            key=out_key,
            size_bytes=40.0,
        )

    def _emit(
        self, key: object, items: list[tuple[float, float]], now: float
    ) -> StreamTuple:
        self.windows_fired += 1
        values = [value for value, _ in items]
        min_origin = min(origin for _, origin in items)
        aggregate = self.function.apply(values)
        out_key = None if key is _GLOBAL_KEY else key
        return StreamTuple(
            values=(out_key, aggregate),
            event_time=now,
            origin_time=min_origin,
            key=out_key,
            size_bytes=40.0,
        )
