"""Operator logics: the per-subtask code that actually processes tuples."""

from repro.sps.operators.aggregate import WindowAggregateLogic
from repro.sps.operators.base import OperatorContext, OperatorLogic
from repro.sps.operators.filter_op import FilterLogic
from repro.sps.operators.join import WindowJoinLogic
from repro.sps.operators.map_op import FlatMapLogic, MapLogic
from repro.sps.operators.sink import SinkLogic
from repro.sps.operators.source import SourceLogic
from repro.sps.operators.udo import FunctionUDO

__all__ = [
    "OperatorContext",
    "OperatorLogic",
    "SourceLogic",
    "FilterLogic",
    "MapLogic",
    "FlatMapLogic",
    "WindowAggregateLogic",
    "WindowJoinLogic",
    "FunctionUDO",
    "SinkLogic",
]
