"""Map and flatMap logics."""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple

__all__ = ["MapLogic", "FlatMapLogic"]


class MapLogic(OperatorLogic):
    """1-to-1 value transformation.

    ``fn`` maps a values tuple to a new values tuple; provenance timestamps
    are preserved by :meth:`StreamTuple.with_values`.

    ``vector_fn``, when given, is the column-wise form for batch mode: it
    maps a tuple of NumPy column arrays to a new tuple of column arrays
    (same row count, any arity) and must agree elementwise with ``fn``.
    Without it, batch mode falls back to per-tuple ``fn`` calls.
    """

    rescale_supported = True  # pure per-tuple transformation

    def __init__(
        self,
        fn: Callable[[tuple[Any, ...]], tuple[Any, ...]],
        vector_fn: Callable[[tuple], tuple] | None = None,
    ):
        self._fn = fn
        self._vector_fn = vector_fn

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        return [tup.with_values(self._fn(tup.values))]

    @property
    def has_vector_fn(self) -> bool:
        return self._vector_fn is not None

    def supports_batch(self) -> bool:
        return self._vector_fn is not None

    def process_batch(self, batch, now: float):
        """Vectorized path: transform whole columns at once."""
        return batch.with_columns(self._vector_fn(batch.columns))


class FlatMapLogic(OperatorLogic):
    """1-to-N value transformation (e.g. tokenising a line into words).

    ``fn`` maps a values tuple to an iterable of values tuples. The work
    units of a tuple scale with its fan-out, modelling that a line producing
    many words costs more than an empty one.

    ``vector_fn``, when given, is the columnar form batch mode uses: it
    maps a tuple of column arrays to ``(out_columns, counts)`` where row
    ``i`` of the input expands into ``counts[i]`` consecutive output
    rows, and must agree row-by-row with ``fn``. Without it, batch mode
    falls back to per-tuple ``fn`` calls.
    """

    rescale_supported = True  # pure per-tuple expansion

    def __init__(
        self,
        fn: Callable[[tuple[Any, ...]], list[tuple[Any, ...]]],
        expected_fanout: float = 1.0,
        vector_fn: Callable[[tuple], tuple] | None = None,
    ):
        self._fn = fn
        self._vector_fn = vector_fn
        self._expected_fanout = max(expected_fanout, 1e-9)
        self._last_fanout = 1.0

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        outputs = [tup.with_values(values) for values in self._fn(tup.values)]
        self._last_fanout = max(len(outputs), 1)
        return outputs

    def work_units(self, tup: StreamTuple) -> float:
        return max(self._last_fanout / self._expected_fanout, 0.25)

    @property
    def has_vector_fn(self) -> bool:
        return self._vector_fn is not None

    def supports_batch(self) -> bool:
        return self._vector_fn is not None

    def expand_batch(self, batch):
        """Vectorized path: expand a whole batch's rows at once.

        Returns ``(out_batch, work_units)``.  Work mirrors the scalar
        accounting exactly: tuple ``i`` is charged for the *previous*
        tuple's fan-out (``work_units`` runs before ``process``), so the
        per-row fan-outs enter the sum shifted by one, clamped at 1 when
        stored and at 0.25 work units when charged.
        """
        columns, counts = self._vector_fn(batch.columns)
        counts = np.asarray(counts, dtype=np.int64)
        n = len(counts)
        fan = np.empty(n, dtype=np.float64)
        fan[0] = self._last_fanout
        fan[1:] = counts[:-1]
        np.maximum(fan, 1.0, out=fan)
        self._last_fanout = max(int(counts[-1]), 1)
        work = float(
            np.maximum(fan / self._expected_fanout, 0.25).sum()
        )
        return batch.repeat_rows(counts, columns), work
