"""Map and flatMap logics."""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple

__all__ = ["MapLogic", "FlatMapLogic"]


class MapLogic(OperatorLogic):
    """1-to-1 value transformation.

    ``fn`` maps a values tuple to a new values tuple; provenance timestamps
    are preserved by :meth:`StreamTuple.with_values`.
    """

    def __init__(self, fn: Callable[[tuple[Any, ...]], tuple[Any, ...]]):
        self._fn = fn

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        return [tup.with_values(self._fn(tup.values))]


class FlatMapLogic(OperatorLogic):
    """1-to-N value transformation (e.g. tokenising a line into words).

    ``fn`` maps a values tuple to an iterable of values tuples. The work
    units of a tuple scale with its fan-out, modelling that a line producing
    many words costs more than an empty one.
    """

    def __init__(
        self,
        fn: Callable[[tuple[Any, ...]], list[tuple[Any, ...]]],
        expected_fanout: float = 1.0,
    ):
        self._fn = fn
        self._expected_fanout = max(expected_fanout, 1e-9)
        self._last_fanout = 1.0

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        outputs = [tup.with_values(values) for values in self._fn(tup.values)]
        self._last_fanout = max(len(outputs), 1)
        return outputs

    def work_units(self, tup: StreamTuple) -> float:
        return max(self._last_fanout / self._expected_fanout, 0.25)
