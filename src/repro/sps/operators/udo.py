"""User-defined operators.

The paper's real-world applications mix standard operators with UDOs whose
"custom logic, state handling and coordination needs" make their scaling
behaviour less predictable (O3). :class:`FunctionUDO` wraps an arbitrary
stateful function; the application suite (:mod:`repro.apps`) also subclasses
:class:`~repro.sps.operators.base.OperatorLogic` directly for richer UDOs.
"""

from __future__ import annotations

import copy
from collections.abc import Callable
from typing import Any

from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple

__all__ = ["FunctionUDO"]

UDOFunction = Callable[[dict[str, Any], StreamTuple, float], list[StreamTuple]]


class FunctionUDO(OperatorLogic):
    """A UDO defined by a function over (state, tuple, now).

    ``state`` is a per-instance dict the function may mutate freely;
    ``work_profile`` optionally maps a tuple to its work units, letting
    applications express data-dependent compute intensity.
    """

    #: the state dict is opaque to the engine — it cannot be split by
    #: key, so migrating it across a parallelism change is unsound
    rescale_supported = False

    def __init__(
        self,
        fn: UDOFunction,
        work_profile: Callable[[StreamTuple], float] | None = None,
        timer_fn: Callable[[dict[str, Any], float], list[StreamTuple]]
        | None = None,
        timer_interval: float | None = None,
    ) -> None:
        self._fn = fn
        self._work_profile = work_profile
        self._timer_fn = timer_fn
        if timer_interval is not None:
            self.timer_interval = timer_interval
        self.state: dict[str, Any] = {}

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        return self._fn(self.state, tup, now)

    def on_time(self, now: float) -> list[StreamTuple]:
        if self._timer_fn is None:
            return []
        return self._timer_fn(self.state, now)

    def work_units(self, tup: StreamTuple) -> float:
        if self._work_profile is None:
            return self.work_factor
        return self._work_profile(tup)

    # The state dict is opaque to keyed migration but perfectly
    # checkpointable: snapshots copy the whole dict.
    def snapshot_state(self):
        """Deep copy of the opaque state dict (None when empty)."""
        if not self.state:
            return None
        return copy.deepcopy(self.state)

    def restore_state(self, snapshot) -> None:
        if snapshot:
            self.state = copy.deepcopy(snapshot)

    def dsan_targets(self) -> tuple[Callable | None, ...]:
        """Callables the determinism sanitizer should scan.

        The static AST pass (:mod:`repro.analysis.sanitizer`) cannot see
        through ``FunctionUDO`` to the wrapped user function; this
        protocol hands it the actual callables whose source matters.
        """
        return (self._fn, self._work_profile, self._timer_fn)
