"""Filter logic: drops tuples failing a predicate."""

from __future__ import annotations

from repro.sps.operators.base import OperatorLogic
from repro.sps.predicates import Predicate
from repro.sps.tuples import StreamTuple

__all__ = ["FilterLogic"]


class FilterLogic(OperatorLogic):
    """Evaluates a :class:`Predicate` on every tuple."""

    #: per-tuple decisions carry no cross-tuple state; the seen/passed
    #: counters are statistics, summed across instances by the observer
    rescale_supported = True

    def __init__(self, predicate: Predicate) -> None:
        self.predicate = predicate
        self.seen = 0
        self.passed = 0

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        self.seen += 1
        if self.predicate.evaluate(tup):
            self.passed += 1
            return [tup]
        return []

    def supports_batch(self) -> bool:
        return True

    def process_batch(self, batch, now: float):
        """Vectorized path: one boolean mask per micro-batch.

        Counter updates mirror per-tuple :meth:`process` exactly, so
        ``observed_selectivity`` is identical across execution modes.
        """
        mask = self.predicate.mask(batch.columns[self.predicate.field_index])
        self.seen += len(batch)
        kept = int(mask.sum())
        self.passed += kept
        if kept == len(batch):
            return batch
        return batch.compress(mask)

    @property
    def observed_selectivity(self) -> float:
        """Fraction of tuples passed so far (1.0 before any input)."""
        if self.seen == 0:
            return 1.0
        return self.passed / self.seen
