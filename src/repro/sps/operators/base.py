"""Operator logic interface.

One :class:`OperatorLogic` instance exists per *subtask* (parallel operator
instance); its state is therefore naturally partitioned, as in Flink. The
engine drives the instance through :meth:`process` for each delivered tuple,
:meth:`on_time` on its recurring timer (if it requests one via
:attr:`timer_interval`) and :meth:`flush` at end of stream.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.sps.tuples import StreamTuple

__all__ = ["OperatorContext", "OperatorLogic"]


@dataclass(frozen=True)
class OperatorContext:
    """Runtime information handed to a logic instance at setup."""

    op_id: str
    subtask_index: int
    parallelism: int
    rng: np.random.Generator


class OperatorLogic:
    """Base class for all operator logics."""

    #: If set, the engine fires :meth:`on_time` every ``timer_interval``
    #: simulated seconds (used by time-window operators to emit results even
    #: when input pauses).
    timer_interval: float | None = None

    #: Relative per-tuple work factor; the engine multiplies the operator's
    #: base cost by this. Logics may override :meth:`work_units` for
    #: data-dependent costs instead.
    work_factor: float = 1.0

    #: Whether the engine may change this operator's parallelism mid-run.
    #: False by default: a logic must opt in, either because it holds no
    #: cross-tuple state or because it implements the keyed-state
    #: migration pair below. Opting in with hidden instance state would
    #: silently drop that state at a rescale, so the conservative default
    #: protects arbitrary user logics.
    rescale_supported: bool = False

    def setup(self, ctx: OperatorContext) -> None:
        """Bind the logic to its subtask. Default: store the context."""
        self.ctx = ctx

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        """Handle one input tuple; return output tuples (possibly empty)."""
        raise NotImplementedError

    def on_time(self, now: float) -> list[StreamTuple]:
        """Timer callback; return output tuples. Default: nothing."""
        return []

    def flush(self, now: float) -> list[StreamTuple]:
        """End-of-stream: emit whatever is still buffered. Default: nothing."""
        return []

    def work_units(self, tup: StreamTuple) -> float:
        """Per-tuple work multiplier (default: :attr:`work_factor`)."""
        return self.work_factor

    # --------------------------------------------------- rescale protocol
    #
    # Live rescaling (DESIGN.md §12) drains an operator's subtasks to a
    # barrier, exports every old instance's keyed state, re-partitions the
    # keys by the same stable hash the HashPartitioner routes with, and
    # imports each bucket into a fresh instance — moving state, replaying
    # nothing. Stateless logics keep the default no-op pair and simply set
    # ``rescale_supported = True``.

    def export_keyed_state(self):
        """Hand off per-key state for migration, clearing it locally.

        Returns ``[(key, payload), ...]`` in this instance's
        deterministic key order (first-seen rank), or ``None`` when the
        logic is stateless. Payloads are moved, never copied — after
        export this instance must hold no keyed state.
        """
        return None

    def import_keyed_state(self, items) -> None:
        """Adopt migrated ``(key, payload)`` pairs into a fresh instance.

        Called at most once, before the instance serves any tuple, with
        the keys hash-assigned to this subtask in old-subtask-major
        order (which pins the new first-seen ranks deterministically).
        """
        if items:
            raise NotImplementedError(
                f"{type(self).__name__} does not implement keyed-state "
                "import; it must not set rescale_supported"
            )

    # ---------------------------------------------------- checkpoint protocol
    #
    # Aligned-barrier checkpointing (DESIGN.md §13) snapshots a subtask's
    # state when a barrier has arrived on all of its input channels and
    # restores it after a failure. The defaults piggyback on the rescale
    # migration pair: ``export_keyed_state`` is *destructive*, so the
    # snapshot round-trips the state back in, and ``restore_state`` deep
    # copies so one checkpoint can seed several recoveries. Logics with
    # non-keyed state (join buffers, UDO dicts) override both.

    def snapshot_state(self):
        """Non-destructive deep copy of this instance's state (or None)."""
        exported = self.export_keyed_state()
        if exported is None:
            return None
        snapshot = copy.deepcopy(exported)
        self.import_keyed_state(exported)
        return snapshot

    def restore_state(self, snapshot) -> None:
        """Adopt a checkpoint snapshot into a fresh instance."""
        if snapshot:
            self.import_keyed_state(copy.deepcopy(snapshot))

    # ------------------------------------------------------- batch protocol
    #
    # Batch mode (repro.sps.batch) probes each logic for a vectorized form
    # via ``supports_batch``; instances answering True are driven through
    # ``process_batch`` with whole TupleBatch inputs, all others through the
    # automatic per-tuple scalar fallback (``process``/``on_time``/``flush``
    # exactly as the scalar engine calls them). The base class opts out, so
    # arbitrary UDOs are batch-safe by construction.

    def supports_batch(self) -> bool:
        """Whether this instance has a vectorized batch form."""
        return False
