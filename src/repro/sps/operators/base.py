"""Operator logic interface.

One :class:`OperatorLogic` instance exists per *subtask* (parallel operator
instance); its state is therefore naturally partitioned, as in Flink. The
engine drives the instance through :meth:`process` for each delivered tuple,
:meth:`on_time` on its recurring timer (if it requests one via
:attr:`timer_interval`) and :meth:`flush` at end of stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sps.tuples import StreamTuple

__all__ = ["OperatorContext", "OperatorLogic"]


@dataclass(frozen=True)
class OperatorContext:
    """Runtime information handed to a logic instance at setup."""

    op_id: str
    subtask_index: int
    parallelism: int
    rng: np.random.Generator


class OperatorLogic:
    """Base class for all operator logics."""

    #: If set, the engine fires :meth:`on_time` every ``timer_interval``
    #: simulated seconds (used by time-window operators to emit results even
    #: when input pauses).
    timer_interval: float | None = None

    #: Relative per-tuple work factor; the engine multiplies the operator's
    #: base cost by this. Logics may override :meth:`work_units` for
    #: data-dependent costs instead.
    work_factor: float = 1.0

    def setup(self, ctx: OperatorContext) -> None:
        """Bind the logic to its subtask. Default: store the context."""
        self.ctx = ctx

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        """Handle one input tuple; return output tuples (possibly empty)."""
        raise NotImplementedError

    def on_time(self, now: float) -> list[StreamTuple]:
        """Timer callback; return output tuples. Default: nothing."""
        return []

    def flush(self, now: float) -> list[StreamTuple]:
        """End-of-stream: emit whatever is still buffered. Default: nothing."""
        return []

    def work_units(self, tup: StreamTuple) -> float:
        """Per-tuple work multiplier (default: :attr:`work_factor`)."""
        return self.work_factor

    # ------------------------------------------------------- batch protocol
    #
    # Batch mode (repro.sps.batch) probes each logic for a vectorized form
    # via ``supports_batch``; instances answering True are driven through
    # ``process_batch`` with whole TupleBatch inputs, all others through the
    # automatic per-tuple scalar fallback (``process``/``on_time``/``flush``
    # exactly as the scalar engine calls them). The base class opts out, so
    # arbitrary UDOs are batch-safe by construction.

    def supports_batch(self) -> bool:
        """Whether this instance has a vectorized batch form."""
        return False
