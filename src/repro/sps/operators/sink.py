"""Sink logic: terminates the dataflow and records result latencies."""

from __future__ import annotations

from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple

__all__ = ["SinkLogic"]


class SinkLogic(OperatorLogic):
    """Collects end-to-end latency samples.

    Latency of a result = sink arrival time - origin time of the earliest
    source tuple contributing to it (the paper's end-to-end definition).
    ``keep_values`` optionally retains result values for correctness tests.
    """

    def __init__(self, keep_values: bool = False, max_kept: int = 100_000):
        self.latencies: list[float] = []
        self.arrival_times: list[float] = []
        self.keep_values = keep_values
        self.max_kept = max_kept
        self.results: list[tuple] = []
        self.received = 0

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        self.received += 1
        self.latencies.append(now - tup.origin_time)
        self.arrival_times.append(now)
        if self.keep_values and len(self.results) < self.max_kept:
            self.results.append(tup.values)
        return []

    def supports_batch(self) -> bool:
        return True

    def absorb_batch(self, batch, arrival_times, latencies) -> None:
        """Vectorized path: record a whole batch of results at once.

        ``arrival_times``/``latencies`` are arrays computed by the batch
        executor (arrival = the batch's completion time at this sink
        instance, latency = arrival − origin per tuple).
        """
        n = len(batch)
        self.received += n
        self.latencies.extend(latencies.tolist())
        self.arrival_times.extend(arrival_times.tolist())
        if self.keep_values and len(self.results) < self.max_kept:
            room = self.max_kept - len(self.results)
            if batch.columns is not None:
                rows = list(zip(*[c.tolist() for c in batch.columns]))[:room]
            else:
                rows = list(batch.rows[:room])
            self.results.extend(rows)
