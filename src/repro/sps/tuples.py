"""Stream tuples.

A :class:`StreamTuple` carries real values — operators filter, join and
aggregate them for real — plus the timestamps the metrics layer needs:
``event_time`` (logical time of the event) and ``origin_time`` (simulation
time at which the *earliest contributing source tuple* was produced, which is
what the paper's end-to-end latency definition measures against).

``prov`` is the fault-tolerance provenance stamp: a ``(producer_gid,
emit_seq)`` pair assigned to sink-bound results when checkpointing is on
(DESIGN.md §13), which the engine's sink ledger dedupes against under
``delivery="exactly_once"``. It stays ``None`` on every other path.
"""

from __future__ import annotations

from typing import Any

__all__ = ["StreamTuple"]


class StreamTuple:
    """One data tuple flowing through the dataflow graph."""

    __slots__ = (
        "values",
        "key",
        "event_time",
        "origin_time",
        "size_bytes",
        "prov",
    )

    def __init__(
        self,
        values: tuple[Any, ...],
        event_time: float,
        origin_time: float | None = None,
        key: Any = None,
        size_bytes: float = 64.0,
    ) -> None:
        self.values = values
        self.key = key
        self.event_time = event_time
        self.origin_time = event_time if origin_time is None else origin_time
        self.size_bytes = size_bytes
        self.prov = None

    def with_values(
        self, values: tuple[Any, ...], size_bytes: float | None = None
    ) -> "StreamTuple":
        """Copy of this tuple with new values, preserving provenance times.

        Copies assign slots directly instead of going through
        ``__init__``: these run once per tuple per keyed exchange, which
        makes them one of the hottest allocation sites in the simulator.
        """
        clone = StreamTuple.__new__(StreamTuple)
        clone.values = values
        clone.key = self.key
        clone.event_time = self.event_time
        clone.origin_time = self.origin_time
        clone.size_bytes = (
            self.size_bytes if size_bytes is None else size_bytes
        )
        clone.prov = self.prov
        return clone

    def with_key(self, key: Any) -> "StreamTuple":
        """Copy of this tuple re-keyed for hash partitioning."""
        clone = StreamTuple.__new__(StreamTuple)
        clone.values = self.values
        clone.key = key
        clone.event_time = self.event_time
        clone.origin_time = self.origin_time
        clone.size_bytes = self.size_bytes
        clone.prov = self.prov
        return clone

    def with_prov(self, prov: tuple[int, int]) -> "StreamTuple":
        """Copy stamped with a ``(producer_gid, emit_seq)`` provenance id."""
        clone = StreamTuple.__new__(StreamTuple)
        clone.values = self.values
        clone.key = self.key
        clone.event_time = self.event_time
        clone.origin_time = self.origin_time
        clone.size_bytes = self.size_bytes
        clone.prov = prov
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamTuple(values={self.values!r}, key={self.key!r}, "
            f"event_time={self.event_time:.6f})"
        )


def merge_origin(*tuples: StreamTuple) -> float:
    """Origin time of a derived tuple: the earliest contributor.

    The paper defines end-to-end latency from the production of the *first*
    data tuple contributing to a result, so joins and window aggregates
    propagate the minimum origin time of their inputs.
    """
    return min(t.origin_time for t in tuples)
