"""The discrete-event stream processing engine.

This is the simulated System Under Test. Every subtask is a single-core
server with a FIFO input queue; sources emit tuples following an arrival
process (Poisson by default, as the paper models its data); tuples pay a
CPU service time scaled by the hosting core's speed and contention, plus
serialization and channel-management overhead on shuffle exchanges and
network latency/bandwidth on cross-node channels. End-to-end latency and
throughput therefore *emerge* from queueing dynamics rather than being
postulated — which is what lets the simulator reproduce the paper's
observations (speedup from parallelism, its paradox, non-linearity).

Event kinds:

- ``ARRIVAL`` — a source subtask's arrival process fires: generate a tuple,
  enqueue it locally, schedule the next arrival.
- ``DELIVER`` — a tuple reaches a subtask's input queue.
- ``BEGIN``   — a server starts serving the head-of-queue tuple.
- ``DONE``    — service completes: run the operator logic, route outputs.
- ``TIMER``   — recurring callback for window operators.
- ``STALL``   — an injected transient fault pauses a subtask.

Termination: when all sources are exhausted and no work events remain, the
engine flushes stateful operators in rounds (remaining windows fire), then
stops once a flush round produces nothing.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import RngFactory
from repro.sps.costs import COORD_LOG_COST_S, SERDE_COST_S
from repro.sps.logical import LogicalPlan, OperatorKind
from repro.sps.metrics import LatencyStats, RunMetrics
from repro.sps.operators.base import OperatorContext
from repro.sps.operators.sink import SinkLogic
from repro.sps.partitioning import HashPartitioner
from repro.sps.physical import PhysicalPlan
from repro.sps.placement import PlacementStrategy, RoundRobinPlacement
from repro.sps.tuples import StreamTuple

__all__ = ["SimulationConfig", "StallInjection", "StreamEngine"]

_ARRIVAL, _DELIVER, _BEGIN, _DONE, _TIMER, _STALL = range(6)


@dataclass(frozen=True)
class StallInjection:
    """A transient fault: one operator's subtasks freeze for a while.

    Models GC pauses, noisy neighbours or brief node hiccups — the
    perturbations distributed SPS deployments absorb routinely. All
    subtasks of ``op_id`` stop serving at ``at_time`` for ``duration``
    simulated seconds; queued tuples wait and drain afterwards, so the
    latency distribution shows the spike and the recovery.
    """

    at_time: float
    op_id: str
    duration: float

    def __post_init__(self) -> None:
        if self.at_time < 0 or self.duration <= 0:
            raise ConfigurationError(
                "stall needs at_time >= 0 and duration > 0"
            )


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulated run.

    ``max_tuples_per_source`` bounds the run (the paper bounds runs by wall
    time; a tuple budget keeps simulated work proportional across event
    rates). ``warmup_fraction`` of the earliest sink samples is discarded,
    as the paper's measurements skip ramp-up.

    ``backpressure_queue_limit`` enables credit-style flow control: once
    any subtask's input queue exceeds the limit, sources pause until the
    congested queue drains below half the limit (hysteresis), as Flink's
    bounded network buffers throttle sources. With backpressure, latency
    is bounded and overload shows up as reduced source throughput
    instead; without it (None, the default), queues grow unboundedly and
    overload shows up as growing latency.
    """

    max_tuples_per_source: int = 4000
    max_sim_time: float = 120.0
    warmup_fraction: float = 0.1
    keep_sink_values: bool = False
    max_events: int = 30_000_000
    backpressure_queue_limit: int | None = None
    stalls: tuple[StallInjection, ...] = ()

    def __post_init__(self) -> None:
        if self.max_tuples_per_source < 1:
            raise ConfigurationError("max_tuples_per_source must be >= 1")
        if self.max_sim_time <= 0:
            raise ConfigurationError("max_sim_time must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")
        if (
            self.backpressure_queue_limit is not None
            and self.backpressure_queue_limit < 2
        ):
            raise ConfigurationError(
                "backpressure_queue_limit must be >= 2"
            )


@dataclass
class _SubtaskRuntime:
    """Mutable per-subtask simulation state."""

    gid: int
    op_id: str
    index: int
    logic: object
    node_id: int
    base_service: float
    noise_sigma: float
    shuffle_cost_per_output: float
    is_source: bool
    is_sink: bool
    queue: list = field(default_factory=list)
    queue_head: int = 0
    busy: bool = False
    busy_time: float = 0.0
    queue_peak: int = 0
    emitted: int = 0
    wait_time: float = 0.0
    served: int = 0


class StreamEngine:
    """Runs one physical plan on one cluster and returns metrics."""

    def __init__(
        self,
        plan: LogicalPlan,
        cluster: Cluster,
        placement: PlacementStrategy | None = None,
        config: SimulationConfig | None = None,
        rng_factory: RngFactory | None = None,
        chaining: bool = False,
        preflight: bool = True,
    ) -> None:
        self.logical = plan
        self.cluster = cluster
        self.config = config or SimulationConfig()
        if preflight:
            # Static analysis gate: refuse plans with ERROR diagnostics
            # before building anything. Tests that intentionally build
            # broken plans opt out with preflight=False.
            from repro.analysis.analyzer import preflight as run_preflight

            self.preflight_report = run_preflight(plan, cluster=cluster)
        else:
            self.preflight_report = None
        self.physical = PhysicalPlan.from_logical(plan, chaining=chaining)
        strategy = placement or RoundRobinPlacement()
        self.placement = strategy.place(self.physical, cluster)
        self._rngs = rng_factory or RngFactory(seed=0)
        self._runtimes: list[_SubtaskRuntime] = []
        self._sinks: list[SinkLogic] = []
        self._build_runtimes()

    # ----------------------------------------------------------- build-time

    def _build_runtimes(self) -> None:
        for subtask in self.physical.subtasks:
            op = self.logical.operator(subtask.op_id)
            cost = self.physical.effective_cost(subtask.op_id)
            rng = self._rngs.fresh("engine", op.op_id, str(subtask.index))
            logic = self.physical.effective_factory(subtask.op_id)()
            logic.setup(
                OperatorContext(
                    op_id=op.op_id,
                    subtask_index=subtask.index,
                    parallelism=subtask.parallelism,
                    rng=rng,
                )
            )
            node = self.cluster.node(self.placement.node_of(subtask.gid))
            load = self.placement.load_of(subtask.gid)
            coord = cost.coordination_factor(op.parallelism)
            base_service = (
                cost.base_cpu_s * coord * load / node.speed_factor
            )
            cv = cost.cost_noise
            sigma = math.sqrt(math.log(1.0 + cv * cv)) if cv > 0 else 0.0
            shuffle_cost = 0.0
            for group in self.physical.out_channels[subtask.gid]:
                if group.is_shuffle:
                    shuffle_cost += SERDE_COST_S + COORD_LOG_COST_S * math.log2(
                        max(group.num_channels, 2)
                    )
            runtime = _SubtaskRuntime(
                gid=subtask.gid,
                op_id=op.op_id,
                index=subtask.index,
                logic=logic,
                node_id=node.node_id,
                base_service=base_service,
                noise_sigma=sigma,
                shuffle_cost_per_output=shuffle_cost,
                is_source=op.kind is OperatorKind.SOURCE,
                is_sink=op.kind is OperatorKind.SINK,
            )
            self._runtimes.append(runtime)
            if isinstance(logic, SinkLogic):
                logic.keep_values = self.config.keep_sink_values
                self._sinks.append(logic)
        if not self._sinks:
            raise SimulationError(
                "plan has no SinkLogic sink; use builders.sink()"
            )

    # ------------------------------------------------------------- run-time

    def run(self) -> RunMetrics:
        """Execute the simulation and compute metrics."""
        self._heap: list = []
        self._seq = 0
        self._work = 0
        self._events_processed = 0
        self._now = 0.0
        self._finished = False
        self._flush_rounds = 0
        self._flush_time: float | None = None
        self._last_source_time = 0.0
        self._congested: set[int] = set()
        self._throttled_arrivals = 0
        self._rng_arrivals = self._rngs.fresh("engine", "arrivals")

        for runtime in self._runtimes:
            if runtime.is_source:
                self._schedule_next_arrival(runtime, 0.0)
            interval = getattr(runtime.logic, "timer_interval", None)
            if interval:
                self._push(interval, _TIMER, runtime.gid, None, 0)

        for stall in self.config.stalls:
            if stall.op_id not in self.physical.op_subtasks:
                raise SimulationError(
                    f"stall targets unknown operator {stall.op_id!r}"
                )
            if stall.at_time > self.config.max_sim_time:
                continue
            for gid in self.physical.op_subtasks[stall.op_id]:
                self._push(
                    stall.at_time, _STALL, gid, stall.duration, 0
                )

        max_ops = len(self.logical.operators) + 2
        while self._heap:
            if self._events_processed > self.config.max_events:
                raise SimulationError(
                    f"event budget exceeded ({self.config.max_events}); "
                    "the configuration likely diverged"
                )
            time, _, kind, gid, payload, port = heapq.heappop(self._heap)
            self._events_processed += 1
            self._now = time
            if kind == _TIMER:
                if not self._finished:
                    self._handle_timer(gid)
                continue
            self._work -= 1
            if kind == _ARRIVAL:
                self._handle_arrival(gid)
            elif kind == _DELIVER:
                self._handle_deliver(gid, payload, port)
            elif kind == _BEGIN:
                self._begin_service(gid)
            elif kind == _DONE:
                self._handle_done(gid, payload, port)
            elif kind == _STALL:
                self._handle_stall(gid, payload)
            if self._work == 0:
                if self._flush_rounds < max_ops and self._flush_all():
                    self._flush_rounds += 1
                else:
                    self._finished = True
                    break
        return self._collect_metrics()

    # -------------------------------------------------------------- events

    def _push(
        self, time: float, kind: int, gid: int, payload, port: int
    ) -> None:
        self._seq += 1
        if kind != _TIMER:
            self._work += 1
        heapq.heappush(self._heap, (time, self._seq, kind, gid, payload, port))

    def _schedule_next_arrival(
        self, runtime: _SubtaskRuntime, now: float
    ) -> None:
        if runtime.emitted >= self._source_budget(runtime):
            return
        op = self.logical.operator(runtime.op_id)
        rate = float(op.metadata.get("event_rate", 1000.0))
        per_instance = rate / max(op.parallelism, 1)
        if per_instance <= 0:
            raise SimulationError(f"{runtime.op_id}: event rate must be > 0")
        process = op.metadata.get("arrival", "poisson")
        if process == "poisson":
            gap = self._rng_arrivals.exponential(1.0 / per_instance)
        elif process == "constant":
            gap = 1.0 / per_instance
        elif process == "bursty":
            # On/off: bursts at 4x rate for 50ms, then silence balancing it.
            phase = (now * 10.0) % 1.0
            busy = phase < 0.25
            gap = self._rng_arrivals.exponential(
                1.0 / (per_instance * (4.0 if busy else 0.25))
            )
        elif process == "profile":
            # Non-stationary Poisson: the instantaneous rate comes from a
            # time profile (e.g. a diurnal curve replaying a recorded
            # trace's load pattern).
            profile = op.metadata.get("rate_profile")
            if profile is None:
                raise ConfigurationError(
                    f"{runtime.op_id}: arrival 'profile' needs a "
                    "'rate_profile' callable in the source metadata"
                )
            instant = max(
                float(profile(now)) / max(op.parallelism, 1), 1e-9
            )
            gap = self._rng_arrivals.exponential(1.0 / instant)
        else:
            raise ConfigurationError(
                f"unknown arrival process {process!r} "
                "(use poisson, constant, bursty or profile)"
            )
        at = now + gap
        if at > self.config.max_sim_time:
            return
        self._push(at, _ARRIVAL, runtime.gid, None, 0)

    def _source_budget(self, runtime: _SubtaskRuntime) -> int:
        op = self.logical.operator(runtime.op_id)
        # Distribute the per-source budget over its parallel instances.
        budget = self.config.max_tuples_per_source / max(op.parallelism, 1)
        return max(int(budget), 1)

    def _handle_arrival(self, gid: int) -> None:
        runtime = self._runtimes[gid]
        if self._congested:
            # Backpressure: hold the arrival without emitting; retry
            # shortly. The event stays "work" so the run cannot end
            # while sources are merely paused.
            self._throttled_arrivals += 1
            retry = self._now + 1e-3
            if retry <= self.config.max_sim_time:
                self._push(retry, _ARRIVAL, gid, None, 0)
            return
        tup = runtime.logic.generate(self._now)
        runtime.emitted += 1
        self._last_source_time = max(self._last_source_time, self._now)
        self._enqueue(runtime, tup, 0)
        self._schedule_next_arrival(runtime, self._now)

    def _handle_deliver(self, gid: int, tup: StreamTuple, port: int) -> None:
        self._enqueue(self._runtimes[gid], tup, port)

    def _enqueue(
        self, runtime: _SubtaskRuntime, tup: StreamTuple, port: int
    ) -> None:
        runtime.queue.append((tup, port, self._now))
        depth = len(runtime.queue) - runtime.queue_head
        if depth > runtime.queue_peak:
            runtime.queue_peak = depth
        limit = self.config.backpressure_queue_limit
        if limit is not None and depth >= limit:
            self._congested.add(runtime.gid)
        if not runtime.busy:
            self._begin_service_now(runtime)

    def _begin_service(self, gid: int) -> None:
        runtime = self._runtimes[gid]
        runtime.busy = False
        if len(runtime.queue) > runtime.queue_head:
            self._begin_service_now(runtime)

    def _begin_service_now(self, runtime: _SubtaskRuntime) -> None:
        tup, port, enqueued_at = runtime.queue[runtime.queue_head]
        runtime.wait_time += self._now - enqueued_at
        runtime.served += 1
        runtime.queue_head += 1
        if runtime.queue_head > 256 and runtime.queue_head * 2 >= len(
            runtime.queue
        ):
            del runtime.queue[: runtime.queue_head]
            runtime.queue_head = 0
        limit = self.config.backpressure_queue_limit
        if limit is not None and runtime.gid in self._congested:
            depth = len(runtime.queue) - runtime.queue_head
            if depth <= limit // 2:
                self._congested.discard(runtime.gid)
        runtime.busy = True
        service = runtime.base_service * runtime.logic.work_units(tup)
        if runtime.noise_sigma > 0:
            sigma = runtime.noise_sigma
            service *= self._rng_arrivals.lognormal(
                -0.5 * sigma * sigma, sigma
            )
        runtime.busy_time += service
        self._push(self._now + service, _DONE, runtime.gid, tup, port)

    def _handle_done(self, gid: int, tup: StreamTuple, port: int) -> None:
        runtime = self._runtimes[gid]
        if runtime.is_source:
            outputs = [tup]
        else:
            outputs = runtime.logic.process(tup, self._now, port)
        overhead = self._route(runtime, outputs)
        runtime.busy_time += overhead
        if overhead > 0:
            self._push(self._now + overhead, _BEGIN, gid, None, 0)
        else:
            runtime.busy = False
            if len(runtime.queue) > runtime.queue_head:
                self._begin_service_now(runtime)

    def _handle_stall(self, gid: int, duration: float) -> None:
        runtime = self._runtimes[gid]
        if runtime.busy:
            # Pause begins once the in-flight tuple completes.
            self._push(self._now + 1e-4, _STALL, gid, duration, 0)
            return
        runtime.busy = True
        self._push(self._now + duration, _BEGIN, gid, None, 0)

    def _handle_timer(self, gid: int) -> None:
        runtime = self._runtimes[gid]
        outputs = runtime.logic.on_time(self._now)
        overhead = self._route(runtime, outputs)
        runtime.busy_time += overhead
        interval = runtime.logic.timer_interval
        next_time = self._now + interval
        horizon = self.config.max_sim_time + 10.0 * interval
        if next_time <= horizon:
            self._push(next_time, _TIMER, gid, None, 0)

    # -------------------------------------------------------------- routing

    def _route(
        self, runtime: _SubtaskRuntime, outputs: list[StreamTuple]
    ) -> float:
        """Send outputs downstream; return sender CPU overhead (serde)."""
        if not outputs:
            return 0.0
        groups = self.physical.out_channels[runtime.gid]
        if not groups:
            return 0.0
        network = self.cluster.network
        src_node = runtime.node_id
        total_overhead = 0.0
        for group in groups:
            partitioner = group.partitioner
            rekey = (
                partitioner.extract_key
                if isinstance(partitioner, HashPartitioner)
                and partitioner.key_field is not None
                else None
            )
            for tup in outputs:
                out = tup.with_key(rekey(tup)) if rekey else tup
                indices = partitioner.select(out, group.num_channels)
                if group.is_shuffle:
                    total_overhead += runtime.shuffle_cost_per_output * len(
                        indices
                    )
                for idx in indices:
                    consumer = group.consumer_gids[idx]
                    dst_node = self._runtimes[consumer].node_id
                    delay = network.transfer_delay(
                        src_node, dst_node, out.size_bytes
                    )
                    self._push(
                        self._now + delay + total_overhead,
                        _DELIVER,
                        consumer,
                        out,
                        group.port,
                    )
        return total_overhead

    # ---------------------------------------------------------------- flush

    def _flush_all(self) -> bool:
        """Flush stateful logics once; True if anything was emitted."""
        if self._flush_time is None:
            self._flush_time = self._now
        emitted = False
        for op_id in self.logical.topological_order():
            # Fused chain tails have no subtasks of their own; their
            # flush runs inside the chain head's ChainedLogic.
            if op_id not in self.physical.op_subtasks:
                continue
            for gid in self.physical.op_subtasks[op_id]:
                runtime = self._runtimes[gid]
                outputs = runtime.logic.flush(self._now)
                if outputs:
                    emitted = True
                    self._route(runtime, outputs)
        return emitted

    # -------------------------------------------------------------- metrics

    def _collect_metrics(self) -> RunMetrics:
        samples: list[tuple[float, float]] = []
        for sink in self._sinks:
            samples.extend(zip(sink.arrival_times, sink.latencies))
        samples.sort()
        total_results = len(samples)
        # Results forced out by the end-of-stream flush carry artificially
        # short window residence; exclude them from latency stats unless
        # they are all we have (e.g. windows longer than the whole run).
        if self._flush_time is not None:
            steady = [s for s in samples if s[0] <= self._flush_time]
            if steady:
                samples = steady
        skip = int(len(samples) * self.config.warmup_fraction)
        kept = [latency for _, latency in samples[skip:]]
        latency = LatencyStats.from_samples(kept)
        span = max(self._now, 1e-9)
        first = samples[0][0] if samples else 0.0
        window = max(span - first, 1e-9)
        throughput = total_results / window
        utilization: dict[str, list[float]] = {}
        queue_peaks: dict[str, int] = {}
        wait_sums: dict[str, float] = {}
        served_sums: dict[str, int] = {}
        source_events = 0
        for runtime in self._runtimes:
            utilization.setdefault(runtime.op_id, []).append(
                runtime.busy_time / span
            )
            previous = queue_peaks.get(runtime.op_id, 0)
            queue_peaks[runtime.op_id] = max(previous, runtime.queue_peak)
            wait_sums[runtime.op_id] = (
                wait_sums.get(runtime.op_id, 0.0) + runtime.wait_time
            )
            served_sums[runtime.op_id] = (
                served_sums.get(runtime.op_id, 0) + runtime.served
            )
            if runtime.is_source:
                source_events += runtime.emitted
        avg_wait = {
            op_id: wait_sums[op_id] / served
            for op_id, served in served_sums.items()
            if served > 0
        }
        return RunMetrics(
            latency=latency,
            throughput=throughput,
            results=total_results,
            source_events=source_events,
            sim_duration=span,
            operator_utilization={
                op_id: float(sum(vals) / len(vals))
                for op_id, vals in utilization.items()
            },
            operator_queue_peak=queue_peaks,
            operator_avg_wait=avg_wait,
            extras={
                "events_processed": self._events_processed,
                "throttled_arrivals": self._throttled_arrivals,
            },
        )
