"""The discrete-event stream processing engine.

This is the simulated System Under Test. Every subtask is a single-core
server with a FIFO input queue; sources emit tuples following an arrival
process (Poisson by default, as the paper models its data); tuples pay a
CPU service time scaled by the hosting core's speed and contention, plus
serialization and channel-management overhead on shuffle exchanges and
network latency/bandwidth on cross-node channels. End-to-end latency and
throughput therefore *emerge* from queueing dynamics rather than being
postulated — which is what lets the simulator reproduce the paper's
observations (speedup from parallelism, its paradox, non-linearity).

Event kinds:

- ``ARRIVAL`` — a source subtask's arrival process fires: generate a tuple,
  enqueue it locally, schedule the next arrival.
- ``DELIVER`` — a tuple reaches a subtask's input queue.
- ``BEGIN``   — a server starts serving the head-of-queue tuple.
- ``DONE``    — service completes: run the operator logic, route outputs.
- ``TIMER``   — recurring callback for window operators.
- ``STALL``   — an injected transient fault pauses a subtask.
- ``RESCALE`` — change one operator's parallelism mid-run: drain its
  subtasks to a barrier, migrate keyed state, rewire channels.
- ``CONTROL`` — the autoscaler's periodic tick: snapshot per-operator
  load, ask the policy for targets, emit ``RESCALE`` events.
- ``REPLAY`` — post-recovery redelivery of one logged source tuple
  (fault tolerance, DESIGN.md §13).
- ``SCENARIO``— a chaos-scenario action fires (load spike on/off,
  straggler on/off, network degradation on/off, node failure).
- ``FT``      — checkpoint control: a barrier trigger fires at the
  sources, or a recovery pause completes.

``RESCALE``/``CONTROL``/``SCENARIO``/``FT`` are *control-plane* events:
like ``TIMER`` they carry no work accounting, so a pending control tick
never keeps a finished run alive. ``REPLAY`` redelivers real tuples and
counts as work. The elastic machinery (DESIGN.md §12) and the
checkpointing machinery (§13) only activate when the config asks for
them; the default path stays bit-identical to engines built before they
existed.

Termination: when all sources are exhausted and no work events remain, the
engine flushes stateful operators in rounds (remaining windows fire), then
stops once a flush round produces nothing.

**Hot-path design.** The per-event loop is the simulator's bottleneck, so
everything that is constant for the lifetime of one engine is resolved at
build time rather than per event:

- *Arrival state*: each source runtime carries its per-instance rate, its
  arrival-process kind and its tuple budget, so scheduling the next
  arrival never consults the logical plan or its metadata dictionaries.
- *Routing tables*: each runtime carries one precompiled entry per
  outgoing channel group — the bound ``select`` method, the resolved
  re-key function, consumer gids, and per-channel ``(latency, bandwidth)``
  pairs (``(0, inf)`` for same-node channels). Because the network delay
  model is affine in payload size, ``latency + size / bandwidth``
  reproduces ``Network.transfer_delay`` bit-for-bit without any per-tuple
  node lookups. Plans driven by a network subclass that overrides
  ``transfer_delay`` fall back to calling it per delivery.
- *Service state*: logics that do not override ``work_units`` have their
  constant work factor captured once, skipping a method call per tuple.
- *Timer path*: the window logics schedule firing through min-heaps of
  pending window ends (see :mod:`repro.sps.operators.aggregate`), so the
  recurring ``TIMER`` event is O(1) when nothing is ready and the timer
  handler skips routing when a tick fires no window. Timer cadence is
  unchanged — ``TIMER`` events still count toward ``events_processed``.

None of the precomputation changes any simulated result: the same RNG
draws happen in the same order, and every floating-point expression keeps
the exact operand order of the straightforward implementation. The golden
determinism tests (``tests/test_golden_determinism.py``) pin this down.

**Observability.** Passing an :class:`repro.obs.EngineObserver` lets the
run be traced and metered without perturbing it: every hook only *reads*
simulation state (no RNG draws, no heap pushes), sampling is lazy (the
loop checks ``now`` against the next sampling deadline instead of
scheduling sampler events), and with no observer each hook site is a
single ``is not None`` test. ``tests/test_obs.py`` pins the on/off
bit-identity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.network import Network
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import RngFactory
from repro.kernel.core import BudgetExceededError, Kernel
from repro.ft.store import StateStore, estimate_items, validate_delivery
from repro.sps.costs import COORD_LOG_COST_S, SERDE_COST_S
from repro.sps.logical import LogicalPlan, OperatorKind
from repro.sps.metrics import LatencyStats, RunMetrics
from repro.sps.operators.base import OperatorContext, OperatorLogic
from repro.sps.operators.sink import SinkLogic
from repro.sps.partitioning import (
    ForwardPartitioner,
    HashPartitioner,
    _stable_hash,
)
from repro.sps.physical import ChannelGroup, PhysicalPlan
from repro.sps.placement import PlacementStrategy, RoundRobinPlacement
from repro.sps.tuples import StreamTuple

__all__ = [
    "RescaleEvent",
    "SimulationConfig",
    "StallInjection",
    "StreamEngine",
]

(
    _ARRIVAL,
    _DELIVER,
    _BEGIN,
    _DONE,
    _TIMER,
    _STALL,
    _REPLAY,
    _RESCALE,
    _CONTROL,
    _SCENARIO,
    _FT,
) = range(11)

#: Data-plane kinds for the kernel's work accounting: everything except
#: TIMER and the control-plane kinds at RESCALE and above keeps the run
#: alive (REPLAY redelivers real tuples, so it counts).
_WORK_MASK = tuple(
    kind != _TIMER and kind < _RESCALE for kind in range(11)
)

# Recovery pause model (DESIGN.md §13): restoring from a checkpoint pays
# a coordination handshake plus per-item state rehydration, with mild
# lognormal noise drawn from the dedicated ("engine", "ft") stream.
_RECOVERY_BASE_S = 2e-3
_RECOVERY_PER_ITEM_S = 2e-6
#: pacing of post-recovery source replay relative to the source's mean
#: inter-arrival gap (replay is faster than live generation, as a real
#: source re-reads its durable log without waiting on the clock)
_REPLAY_GAP_FRACTION = 0.25

# Migration pause model: a fixed coordination handshake plus per-key
# state transfer and per-tuple queue re-delivery costs, with mild
# lognormal noise drawn from the dedicated ("engine", "rescale") stream.
_MIGRATION_BASE_S = 1e-3
_MIGRATION_PER_KEY_S = 2e-6
_MIGRATION_PER_TUPLE_S = 1e-6

# Arrival-process kinds, resolved once at build time.
_ARR_POISSON, _ARR_CONSTANT, _ARR_BURSTY, _ARR_PROFILE = range(4)

_ARRIVAL_KINDS = {
    "poisson": _ARR_POISSON,
    "constant": _ARR_CONSTANT,
    "bursty": _ARR_BURSTY,
    "profile": _ARR_PROFILE,
}


class _Barrier:
    """A checkpoint barrier riding the data channels (DESIGN.md §13).

    Barriers are enqueued like tuples but consumed at zero service
    cost; a subtask snapshots when it has dequeued the barrier of the
    same checkpoint from every input channel (alignment).
    """

    __slots__ = ("ckpt_id",)

    def __init__(self, ckpt_id: int) -> None:
        self.ckpt_id = ckpt_id


@dataclass(frozen=True)
class StallInjection:
    """A transient fault: one operator's subtasks freeze for a while.

    Models GC pauses, noisy neighbours or brief node hiccups — the
    perturbations distributed SPS deployments absorb routinely. All
    subtasks of ``op_id`` stop serving at ``at_time`` for ``duration``
    simulated seconds; queued tuples wait and drain afterwards, so the
    latency distribution shows the spike and the recovery.
    """

    at_time: float
    op_id: str
    duration: float

    def __post_init__(self) -> None:
        if self.at_time < 0 or self.duration <= 0:
            raise ConfigurationError(
                "stall needs at_time >= 0 and duration > 0"
            )


@dataclass(frozen=True)
class RescaleEvent:
    """A planned reconfiguration: ``op_id`` runs at ``parallelism``

    from ``at_time`` on. The engine drains the operator's subtasks to a
    barrier, migrates keyed state onto fresh instances and rewires the
    channels — in-flight tuples are re-routed, nothing is replayed."""

    at_time: float
    op_id: str
    parallelism: int

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise ConfigurationError("rescale needs at_time >= 0")
        if self.parallelism < 1:
            raise ConfigurationError("rescale parallelism must be >= 1")


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulated run.

    ``max_tuples_per_source`` bounds the run (the paper bounds runs by wall
    time; a tuple budget keeps simulated work proportional across event
    rates). ``warmup_fraction`` of the earliest sink samples is discarded,
    as the paper's measurements skip ramp-up.

    ``backpressure_queue_limit`` enables credit-style flow control: once
    any subtask's input queue exceeds the limit, sources pause until the
    congested queue drains below half the limit (hysteresis), as Flink's
    bounded network buffers throttle sources. With backpressure, latency
    is bounded and overload shows up as reduced source throughput
    instead; without it (None, the default), queues grow unboundedly and
    overload shows up as growing latency.

    ``batch_size`` switches the run to the columnar micro-batch executor
    (:mod:`repro.sps.batch`): operators consume fixed-size tuple batches
    through vectorized kernels where available, which is roughly an
    order of magnitude faster to simulate.  Results stay deterministic
    and batch-size invariant on the data plane; timing becomes
    batch-granular.  Requires numpy, and is incompatible with stall
    injection and backpressure (both are per-event feedback loops).

    ``checkpoint_interval`` turns on aligned-barrier checkpointing
    (DESIGN.md §13): barriers injected at the sources every interval
    flow through the DAG with input-channel alignment, stateful
    subtasks snapshot into an in-simulation state store, and a chaos
    node failure triggers actual recovery — restart from the last
    completed checkpoint and replay source offsets. ``delivery``
    selects the guarantee: ``"exactly_once"`` dedupes replayed results
    at the sinks by ``(producer, seq)`` provenance; ``"at_least_once"``
    delivers duplicates and accounts them. Checkpointing is scalar-
    engine only and incompatible with batch mode, rescaling,
    autoscaling and backpressure (each would need its own barrier
    interaction; rejected at config time).
    """

    max_tuples_per_source: int = 4000
    max_sim_time: float = 120.0
    warmup_fraction: float = 0.1
    keep_sink_values: bool = False
    max_events: int = 30_000_000
    backpressure_queue_limit: int | None = None
    stalls: tuple[StallInjection, ...] = ()
    batch_size: int | None = None
    #: planned mid-run reconfigurations (DESIGN.md §12)
    rescales: tuple[RescaleEvent, ...] = ()
    #: autoscaling policy spec ("none", "reactive:...", "predictive:...")
    #: or an AutoscalePolicy instance; None disables the control loop
    autoscale: object | None = None
    #: cadence of the autoscaler's control tick, simulated seconds
    autoscale_interval: float = 0.5
    #: chaos scenario spec string or repro.elastic.Scenario; None = calm
    scenario: object | None = None
    #: end-to-end latency SLO in simulated seconds; when set, metrics
    #: report SLO-violation-seconds in extras["slo_violation_s"]
    slo_latency: float | None = None
    #: aligned-barrier checkpoint cadence in simulated seconds
    #: (DESIGN.md §13); None disables fault tolerance entirely
    checkpoint_interval: float | None = None
    #: delivery guarantee under recovery: "exactly_once" (sink dedupe by
    #: provenance) or "at_least_once" (duplicates delivered + accounted)
    delivery: str = "exactly_once"
    #: conservative parallel execution (DESIGN.md §14): partition the
    #: simulated cluster by placement node into this many shards, one
    #: kernel per shard, synchronized by epoch windows whose width is
    #: the inter-node network latency (the lookahead). ``None`` (the
    #: default) keeps the single-kernel loop bit-identical to engines
    #: built before sharding existed. Sharded runs use per-subtask
    #: arrival/noise RNG streams and producer-local tie-breaks, so the
    #: results are identical for every shard count (including 1) but
    #: form a distinct deterministic universe from ``shards=None``.
    shards: int | None = None

    def __post_init__(self) -> None:
        if self.max_tuples_per_source < 1:
            raise ConfigurationError("max_tuples_per_source must be >= 1")
        if self.max_sim_time <= 0:
            raise ConfigurationError("max_sim_time must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")
        if (
            self.backpressure_queue_limit is not None
            and self.backpressure_queue_limit < 2
        ):
            raise ConfigurationError("backpressure_queue_limit must be >= 2")
        if self.batch_size is not None:
            if self.batch_size < 1:
                raise ConfigurationError("batch_size must be >= 1")
            if self.stalls:
                raise ConfigurationError(
                    "batch mode does not support stall injection; "
                    "unset batch_size to use the scalar engine"
                )
            if self.backpressure_queue_limit is not None:
                raise ConfigurationError(
                    "batch mode does not support backpressure_queue_limit; "
                    "unset batch_size to use the scalar engine"
                )
            if self.rescales or self.autoscale or self.scenario:
                raise ConfigurationError(
                    "batch mode does not support the elastic runtime "
                    "(rescales/autoscale/scenario); unset batch_size to "
                    "use the scalar engine"
                )
        if self.autoscale_interval <= 0:
            raise ConfigurationError("autoscale_interval must be positive")
        if self.slo_latency is not None and self.slo_latency <= 0:
            raise ConfigurationError("slo_latency must be positive")
        validate_delivery(self.delivery)
        if self.checkpoint_interval is not None:
            if self.checkpoint_interval <= 0:
                raise ConfigurationError(
                    "checkpoint_interval must be positive"
                )
            if self.batch_size is not None:
                raise ConfigurationError(
                    "checkpointing does not support batch mode; barriers "
                    "are per-tuple queue items (unset batch_size)"
                )
            if self.rescales or self.autoscale:
                raise ConfigurationError(
                    "checkpointing does not support rescaling/autoscaling; "
                    "a rescale would invalidate snapshot ownership"
                )
            if self.backpressure_queue_limit is not None:
                raise ConfigurationError(
                    "checkpointing does not support backpressure; barrier "
                    "alignment and source throttling would deadlock"
                )
        if self.shards is not None:
            if self.shards < 1:
                raise ConfigurationError("shards must be >= 1")
            if self.batch_size is not None:
                raise ConfigurationError(
                    "sharded execution does not support batch mode; "
                    "unset batch_size to use shards"
                )
            if self.backpressure_queue_limit is not None:
                raise ConfigurationError(
                    "sharded execution does not support backpressure; "
                    "source throttling is a global feedback loop"
                )
            if self.rescales or self.autoscale or self.scenario:
                raise ConfigurationError(
                    "sharded execution does not support the elastic "
                    "runtime (rescales/autoscale/scenario); unset shards"
                )
            if self.checkpoint_interval is not None:
                raise ConfigurationError(
                    "sharded execution does not support checkpointing; "
                    "barrier alignment would need a global channel view"
                )


@dataclass(slots=True)
class _SubtaskRuntime:
    """Mutable per-subtask simulation state plus precomputed constants."""

    gid: int
    op_id: str
    index: int
    logic: object
    node_id: int
    base_service: float
    noise_sigma: float
    shuffle_cost_per_output: float
    is_source: bool
    is_sink: bool
    #: constant work multiplier when the logic keeps the base
    #: ``work_units`` implementation; None forces the dynamic call
    static_work: float | None = None
    #: arrival process (sources only), resolved from metadata at build
    arrival_kind: int = _ARR_POISSON
    arrival_budget: int = 0
    mean_gap: float = 0.0
    burst_fast_gap: float = 0.0
    burst_slow_gap: float = 0.0
    rate_profile: object | None = None
    profile_divisor: float = 1.0
    #: precomputed lognormal location parameter (-sigma^2/2)
    noise_mu: float = 0.0
    #: slot contention multiplier from placement, carried on the runtime
    #: so rescale generations (whose gids the placement never saw) can
    #: inherit it from their donor subtask
    slot_load: float = 1.0
    #: precompiled routing, one entry per outgoing channel group:
    #: (select, fixed_indices, rekey, consumer_gids, num_channels,
    #:  latencies, bandwidths, port, shuffle_cost) — fixed_indices
    #: replaces the select call for forward/broadcast exchanges whose
    #: fan-out is constant; latencies/bandwidths are None when the
    #: network overrides ``transfer_delay``
    route_table: list = field(default_factory=list)
    queue: list = field(default_factory=list)
    queue_head: int = 0
    busy: bool = False
    busy_time: float = 0.0
    queue_peak: int = 0
    emitted: int = 0
    wait_time: float = 0.0
    served: int = 0
    #: rescale lifecycle (DESIGN.md §12): ``draining`` while the subtask
    #: runs toward the drain barrier, ``retired`` once replaced — a
    #: retired runtime is a forwarding tombstone for in-flight tuples
    draining: bool = False
    retired: bool = False
    #: which reconfiguration generation built this runtime (0 = initial);
    #: disambiguates RNG streams and race-ledger labels across rescales
    epoch: int = 0
    #: chaos node failure without FT: sources drop generated tuples
    #: (counted as lost) until the clock passes this mark
    fail_until: float = 0.0
    #: fault-tolerance lifecycle (DESIGN.md §13). ``ft_incarnation``
    #: counts restarts of this subtask (labels recovery RNG streams and
    #: race-ledger entries); sources keep a durable log of generated
    #: tuples (``ft_log``) with ``ft_head`` the next offset to deliver;
    #: ``ft_emit_seq`` numbers sink-bound emissions for provenance;
    #: ``ft_ckpt``/``ft_aligned``/``ft_buffer`` track barrier alignment.
    ft_incarnation: int = 0
    ft_log: list | None = None
    ft_head: int = 0
    ft_emit_seq: int = 0
    ft_ckpt: int | None = None
    ft_aligned: set | None = None
    ft_buffer: list | None = None


class StreamEngine:
    """Runs one physical plan on one cluster and returns metrics."""

    def __init__(
        self,
        plan: LogicalPlan,
        cluster: Cluster,
        placement: PlacementStrategy | None = None,
        config: SimulationConfig | None = None,
        rng_factory: RngFactory | None = None,
        chaining: bool = False,
        preflight: bool = True,
        observer=None,
        sanitize: bool = False,
    ) -> None:
        self.logical = plan
        self.cluster = cluster
        self.config = config or SimulationConfig()
        #: optional EngineObserver; hooks fire only when not None
        self.observer = observer
        #: RaceDetector when sanitize=True, else None; it wraps the
        #: observer so user-facing observation is unchanged, and like
        #: the observer it only reads — sanitize=False runs stay
        #: bit-identical (tests/test_racecheck.py pins this).
        self.race_detector = None
        if sanitize:
            from repro.analysis.racecheck import RaceDetector

            self.race_detector = RaceDetector(inner=observer)
            self._obs = self.race_detector
        else:
            self._obs = observer
        if preflight:
            # Static analysis gate: refuse plans with ERROR diagnostics
            # before building anything. Tests that intentionally build
            # broken plans opt out with preflight=False.
            from repro.analysis.analyzer import preflight as run_preflight

            self.preflight_report = run_preflight(plan, cluster=cluster)
        else:
            self.preflight_report = None
        self.physical = PhysicalPlan.from_logical(plan, chaining=chaining)
        strategy = placement or RoundRobinPlacement()
        self.placement = strategy.place(self.physical, cluster)
        self._rngs = rng_factory or RngFactory(seed=0)
        self._runtimes: list[_SubtaskRuntime] = []
        self._sinks: list[SinkLogic] = []
        # Elastic-runtime state. The live-gid map and channel dict are
        # maintained even on the default path (they start as copies of
        # the physical plan's and are only mutated by rescales), so the
        # hot path never branches on whether elasticity is on.
        self._op_gids: dict[str, list[int]] = {}
        self._out_channels: dict[int, list[ChannelGroup]] = {}
        self._op_epoch: dict[str, int] = {}
        self._op_forwarders: dict[str, dict[int, object]] = {}
        self._rescale_refusals: dict[str, str | None] = {}
        self._pending_rescale: dict[str, list] = {}
        self._rescale_count = 0
        self._migrated_keys_total = 0
        self._rescale_log: list[dict] = []
        scenario_spec = self.config.scenario
        if scenario_spec:
            from repro.elastic.scenarios import make_scenario

            self._scenario = make_scenario(scenario_spec)
        else:
            self._scenario = None
        self._elastic = bool(
            self.config.rescales
            or self.config.autoscale
            or (self._scenario is not None and self._scenario.injections)
        )
        if self._elastic and self.physical.chains:
            raise ConfigurationError(
                "the elastic runtime does not support operator chaining; "
                "disable chaining to use rescales/autoscale/scenarios"
            )
        self._ft = self.config.checkpoint_interval is not None
        if self._ft and self.physical.chains:
            raise ConfigurationError(
                "checkpointing does not support operator chaining; "
                "barrier alignment needs per-subtask queues (disable "
                "chaining to use checkpoint_interval)"
            )
        if self.config.shards is not None:
            if observer is not None:
                raise ConfigurationError(
                    "sharded execution does not support an observer; "
                    "hooks would need cross-process event ordering"
                )
            if self.physical.chains:
                raise ConfigurationError(
                    "sharded execution does not support operator "
                    "chaining; disable chaining to use shards"
                )
        #: force the sharded controller onto in-process workers even
        #: where fork is available (the serial reference of the DET609
        #: cross-check, and the property tests' fast path)
        self.shard_force_inline = False
        #: the discrete-event kernel; reset at every run() and shared
        #: with the batch executor through the _now/_events_processed
        #: properties below
        self._k = Kernel(_WORK_MASK)
        self._build_runtimes()

    # Compatibility mirrors: the kernel owns the clock and the event
    # counter, but the batch executor and observers address them as
    # plain engine attributes.
    @property
    def _now(self) -> float:
        return self._k.now

    @_now.setter
    def _now(self, value: float) -> None:
        self._k.now = value

    @property
    def _events_processed(self) -> int:
        return self._k.events_processed

    @_events_processed.setter
    def _events_processed(self, value: int) -> None:
        self._k.events_processed = value

    # ----------------------------------------------------------- build-time

    def _build_runtimes(self) -> None:
        for subtask in self.physical.subtasks:
            op = self.logical.operator(subtask.op_id)
            cost = self.physical.effective_cost(subtask.op_id)
            rng = self._rngs.fresh("engine", op.op_id, str(subtask.index))
            logic = self.physical.effective_factory(subtask.op_id)()
            logic.setup(
                OperatorContext(
                    op_id=op.op_id,
                    subtask_index=subtask.index,
                    parallelism=subtask.parallelism,
                    rng=rng,
                )
            )
            node = self.cluster.node(self.placement.node_of(subtask.gid))
            load = self.placement.load_of(subtask.gid)
            coord = cost.coordination_factor(op.parallelism)
            base_service = cost.base_cpu_s * coord * load / node.speed_factor
            cv = cost.cost_noise
            sigma = math.sqrt(math.log(1.0 + cv * cv)) if cv > 0 else 0.0
            shuffle_cost = 0.0
            for group in self.physical.out_channels[subtask.gid]:
                if group.is_shuffle:
                    shuffle_cost += (
                        SERDE_COST_S
                        + COORD_LOG_COST_S
                        * math.log2(max(group.num_channels, 2))
                    )
            runtime = _SubtaskRuntime(
                gid=subtask.gid,
                op_id=op.op_id,
                index=subtask.index,
                logic=logic,
                node_id=node.node_id,
                base_service=base_service,
                noise_sigma=sigma,
                shuffle_cost_per_output=shuffle_cost,
                is_source=op.kind is OperatorKind.SOURCE,
                is_sink=op.kind is OperatorKind.SINK,
                static_work=(
                    logic.work_factor
                    if type(logic).work_units is OperatorLogic.work_units
                    else None
                ),
                noise_mu=-0.5 * sigma * sigma,
                slot_load=load,
            )
            if runtime.is_source:
                self._build_arrival_state(runtime, op)
            self._runtimes.append(runtime)
            if isinstance(logic, SinkLogic):
                logic.keep_values = self.config.keep_sink_values
                self._sinks.append(logic)
        if not self._sinks:
            raise SimulationError(
                "plan has no SinkLogic sink; use builders.sink()"
            )
        self._op_gids = {
            op_id: list(gids)
            for op_id, gids in self.physical.op_subtasks.items()
        }
        self._out_channels = {
            gid: list(groups)
            for gid, groups in self.physical.out_channels.items()
        }
        self._build_route_tables()

    def _build_arrival_state(self, runtime: _SubtaskRuntime, op) -> None:
        """Resolve a source's arrival process once, not per arrival."""
        rate = float(op.metadata.get("event_rate", 1000.0))
        per_instance = rate / max(op.parallelism, 1)
        if per_instance <= 0:
            raise SimulationError(f"{runtime.op_id}: event rate must be > 0")
        process = op.metadata.get("arrival", "poisson")
        kind = _ARRIVAL_KINDS.get(process)
        if kind is None:
            raise ConfigurationError(
                f"unknown arrival process {process!r} "
                "(use poisson, constant, bursty or profile)"
            )
        runtime.arrival_kind = kind
        runtime.mean_gap = 1.0 / per_instance
        # On/off bursts: 4x rate for a quarter phase, silence balancing it.
        runtime.burst_fast_gap = 1.0 / (per_instance * 4.0)
        runtime.burst_slow_gap = 1.0 / (per_instance * 0.25)
        # A missing rate_profile stays a *run-time* error (the engine can
        # be constructed; scheduling the first arrival reports it).
        runtime.rate_profile = op.metadata.get("rate_profile")
        runtime.profile_divisor = float(max(op.parallelism, 1))
        budget = self.config.max_tuples_per_source / max(op.parallelism, 1)
        runtime.arrival_budget = max(int(budget), 1)

    def _build_route_tables(self) -> None:
        """Precompile per-channel-group routing state.

        Resolves, once per channel group: the bound partitioner ``select``,
        the hash re-key function (or None), consumer gids, and per-channel
        network delay terms. ``Network.transfer_delay`` is affine in the
        payload size — ``base_latency + size / bandwidth``, zero for
        same-node channels — so the table stores ``(latency, bandwidth)``
        per channel and the hot path evaluates the identical expression
        without node lookups. Network subclasses overriding
        ``transfer_delay`` disable the cache (entries store None) and are
        called per delivery instead.
        """
        network = self.cluster.network
        self._net_affine = (
            type(network).transfer_delay is Network.transfer_delay
        )
        self._net_base_latency = network.spec.base_latency_s
        for runtime in self._runtimes:
            self._compile_route_table(runtime)

    def _compile_route_table(self, runtime: _SubtaskRuntime) -> None:
        """(Re)compile one runtime's routing table from its channel

        groups. Called at build time for every runtime and again by
        :meth:`_perform_rescale` for producers whose consumer set
        changed."""
        network = self.cluster.network
        affine = self._net_affine
        base_latency = self._net_base_latency
        inf = float("inf")
        src_node = runtime.node_id
        table = []
        for group in self._out_channels[runtime.gid]:
            partitioner = group.partitioner
            rekey = (
                partitioner.extract_key
                if isinstance(partitioner, HashPartitioner)
                and partitioner.key_field is not None
                else None
            )
            consumers = list(group.consumer_gids)
            if affine:
                latencies = []
                bandwidths = []
                for gid in consumers:
                    dst_node = self._runtimes[gid].node_id
                    if dst_node == src_node:
                        latencies.append(0.0)
                        bandwidths.append(inf)
                    else:
                        latencies.append(base_latency)
                        bandwidths.append(
                            network.link_bandwidth(src_node, dst_node)
                        )
            else:
                latencies = None
                bandwidths = None
            table.append(
                (
                    partitioner.select,
                    partitioner.constant_indices(len(consumers)),
                    rekey,
                    consumers,
                    len(consumers),
                    latencies,
                    bandwidths,
                    group.port,
                    (
                        runtime.shuffle_cost_per_output
                        if group.is_shuffle
                        else 0.0
                    ),
                )
            )
        runtime.route_table = table

    # ------------------------------------------------------------- run-time

    def run(self) -> RunMetrics:
        """Execute the simulation and compute metrics."""
        if self.config.batch_size is not None:
            from repro.sps.batch import ColumnarExecutor

            return ColumnarExecutor(self).run()
        if self.config.shards is not None:
            from repro.sps.shard_exec import run_sharded

            return run_sharded(self)
        k = self._k
        k.reset()
        self._finished = False
        self._flush_rounds = 0
        self._flush_time: float | None = None
        self._last_source_time = 0.0
        self._congested: set[int] = set()
        self._throttled_arrivals = 0
        self._bp_limit = self.config.backpressure_queue_limit
        self._rng_arrivals = self._rngs.fresh("engine", "arrivals")
        # Bound RNG methods: the service and arrival paths draw from the
        # generator once per tuple, so skip the attribute walk each time.
        self._lognormal = self._rng_arrivals.lognormal
        self._exponential = self._rng_arrivals.exponential
        # Routed-path indirection: the default path binds the plain
        # implementations here, so checkpointing can swap in its FT
        # variants without a branch inside the hot path. FT-off runs
        # make byte-identical calls through these bindings.
        self._route_live = self._route
        self._serve_next = self._begin_service_now
        self._state_loss: dict | None = None
        # Instance binding: event producers schedule through the kernel
        # directly, skipping the class-level _push delegation frame.
        self._push = k.push
        if self._ft:
            self._ft_init()

        for runtime in self._runtimes:
            if runtime.is_source:
                self._schedule_next_arrival(runtime, 0.0)
            interval = getattr(runtime.logic, "timer_interval", None)
            if interval:
                self._push(interval, _TIMER, runtime.gid, None, 0)

        for stall in self.config.stalls:
            if stall.op_id not in self.physical.op_subtasks:
                raise SimulationError(
                    f"stall targets unknown operator {stall.op_id!r}"
                )
            if stall.at_time > self.config.max_sim_time:
                continue
            for gid in self.physical.op_subtasks[stall.op_id]:
                self._push(stall.at_time, _STALL, gid, stall.duration, 0)

        if self._elastic:
            self._start_elastic()

        self._max_flush_rounds = len(self.logical.operators) + 2
        max_events = self.config.max_events
        obs = self._obs
        if obs is not None:
            obs.on_run_start(self)
            k.sampler = obs.sample
            k.sample_next = obs.next_sample
        try:
            k.run(
                self._make_handlers(),
                max_events=max_events,
                on_idle=self._on_idle,
            )
        except BudgetExceededError:
            raise SimulationError(
                f"event budget exceeded ({max_events}); "
                "the configuration likely diverged"
            ) from None
        if obs is not None:
            obs.on_run_end(k.now)
        return self._collect_metrics()

    def _make_handlers(self) -> list:
        """The kernel's dispatch table, one entry per event kind."""
        runtimes = self._runtimes
        enqueue = self._ft_enqueue if self._ft else self._enqueue

        def deliver(gid: int, payload, port: int) -> None:
            enqueue(runtimes[gid], payload, port)

        def arrival(gid: int, payload, port: int) -> None:
            self._handle_arrival(gid)

        def begin(gid: int, payload, port: int) -> None:
            self._begin_service(gid)

        def timer(gid: int, payload, port: int) -> None:
            if not self._finished:
                self._handle_timer(gid)

        def stall(gid: int, payload, port: int) -> None:
            self._handle_stall(gid, payload)

        def replay(gid: int, payload, port: int) -> None:
            self._handle_replay(gid)

        def rescale(gid: int, payload, port: int) -> None:
            self._handle_rescale(payload)

        def control(gid: int, payload, port: int) -> None:
            self._handle_control()

        def scenario(gid: int, payload, port: int) -> None:
            self._handle_scenario(payload)

        def ft(gid: int, payload, port: int) -> None:
            self._handle_ft(payload)

        handlers: list = [None] * 11
        handlers[_ARRIVAL] = arrival
        handlers[_DELIVER] = deliver
        handlers[_BEGIN] = begin
        handlers[_DONE] = self._handle_done
        handlers[_TIMER] = timer
        handlers[_STALL] = stall
        handlers[_REPLAY] = replay
        handlers[_RESCALE] = rescale
        handlers[_CONTROL] = control
        handlers[_SCENARIO] = scenario
        handlers[_FT] = ft
        return handlers

    def _on_idle(self) -> bool:
        """Work counter hit zero: flush rounds, recovery, or stop."""
        if self._ft and self._ft_recovering:
            # A recovery pause drained the last in-flight work; the
            # scheduled ("restored", ...) control event will re-arm the
            # source replay, so neither flush nor terminate yet.
            return True
        if self._flush_rounds < self._max_flush_rounds and self._flush_all():
            self._flush_rounds += 1
            return True
        self._finished = True
        return False

    # -------------------------------------------------------------- events

    def _push(
        self, time: float, kind: int, gid: int, payload, port: int
    ) -> None:
        # Class-level fallback; run() shadows this with the bound
        # kernel push so scheduling skips the delegation frame.
        self._k.push(time, kind, gid, payload, port)

    def _schedule_next_arrival(
        self, runtime: _SubtaskRuntime, now: float
    ) -> None:
        if runtime.emitted >= runtime.arrival_budget:
            return
        kind = runtime.arrival_kind
        if kind == _ARR_POISSON:
            gap = self._exponential(runtime.mean_gap)
        elif kind == _ARR_CONSTANT:
            gap = runtime.mean_gap
        elif kind == _ARR_BURSTY:
            # On/off: bursts at 4x rate for 50ms, then silence balancing it.
            phase = (now * 10.0) % 1.0
            gap = self._exponential(
                runtime.burst_fast_gap
                if phase < 0.25
                else runtime.burst_slow_gap
            )
        else:
            # Non-stationary Poisson: the instantaneous rate comes from a
            # time profile (e.g. a diurnal curve replaying a recorded
            # trace's load pattern).
            profile = runtime.rate_profile
            if profile is None:
                raise ConfigurationError(
                    f"{runtime.op_id}: arrival 'profile' needs a "
                    "'rate_profile' callable in the source metadata"
                )
            instant = max(float(profile(now)) / runtime.profile_divisor, 1e-9)
            gap = self._rng_arrivals.exponential(1.0 / instant)
        at = now + gap
        if at > self.config.max_sim_time:
            return
        self._push(at, _ARRIVAL, runtime.gid, None, 0)

    def _handle_arrival(self, gid: int) -> None:
        runtime = self._runtimes[gid]
        now = self._k.now
        if self._congested:
            # Backpressure: hold the arrival without emitting; retry
            # shortly. The event stays "work" so the run cannot end
            # while sources are merely paused.
            self._throttled_arrivals += 1
            retry = now + 1e-3
            if retry <= self.config.max_sim_time:
                self._push(retry, _ARRIVAL, gid, None, 0)
            return
        tup = runtime.logic.generate(now)
        runtime.emitted += 1
        if now < runtime.fail_until:
            # Failed source (chaos, FT off): the tuple is generated for
            # RNG parity but never delivered — an explicit data loss.
            self._state_loss["lost_source_tuples"] += 1
            self._schedule_next_arrival(runtime, now)
            return
        if now > self._last_source_time:
            self._last_source_time = now
        if self._ft:
            # Durable source log (DESIGN.md §13): every generated tuple
            # is appended; delivery advances ft_head, and recovery
            # rewinds ft_head to the checkpoint offset and replays.
            log = runtime.ft_log
            log.append(tup)
            if not self._ft_recovering and runtime.ft_head == len(log) - 1:
                runtime.ft_head = len(log)
                self._ft_enqueue(runtime, (tup, -1), 0)
        else:
            self._enqueue(runtime, tup, 0)
        self._schedule_next_arrival(runtime, now)

    def _enqueue(
        self, runtime: _SubtaskRuntime, tup: StreamTuple, port: int
    ) -> None:
        if runtime.retired:
            # Forwarding tombstone: a tuple was in flight toward a
            # subtask that a rescale replaced. Re-partition it across
            # the operator's live subtasks (chaining correctly across
            # multiple rescales, since the live set is looked up fresh).
            runtime = self._runtimes[self._forward_gid(runtime, tup, port)]
        obs = self._obs
        k = self._k
        now = k.now
        if obs is not None:
            obs.tuples_in[runtime.gid] += 1
        queue = runtime.queue
        if not runtime.busy and runtime.queue_head == len(queue):
            # Idle server, empty queue: start service directly, skipping
            # the append/pop round-trip. Bookkeeping stays equivalent —
            # the depth would be 1 (peak), the wait exactly 0.0, and an
            # empty queue always clears this subtask's congestion flag.
            if runtime.queue_peak < 1:
                runtime.queue_peak = 1
            if self._bp_limit is not None:
                if obs is not None and runtime.gid in self._congested:
                    obs.on_backpressure(runtime, now, False)
                self._congested.discard(runtime.gid)
            runtime.served += 1
            runtime.busy = True
            work = runtime.static_work
            if work is None:
                work = runtime.logic.work_units(tup)
            service = runtime.base_service * work
            sigma = runtime.noise_sigma
            if sigma > 0:
                service *= self._lognormal(runtime.noise_mu, sigma)
            runtime.busy_time += service
            if obs is not None:
                obs.on_serve(runtime, now, service, 0.0)
            k.seq += 1
            k.work += 1
            heappush(
                k.heap,
                (
                    now + service,
                    k.seq,
                    _DONE,
                    runtime.gid,
                    tup,
                    port,
                ),
            )
            return
        queue.append((tup, port, now))
        depth = len(queue) - runtime.queue_head
        if depth > runtime.queue_peak:
            runtime.queue_peak = depth
        limit = self._bp_limit
        if limit is not None and depth >= limit:
            if obs is not None and runtime.gid not in self._congested:
                obs.on_backpressure(runtime, now, True)
            self._congested.add(runtime.gid)
        if not runtime.busy:
            self._serve_next(runtime)

    def _begin_service(self, gid: int) -> None:
        runtime = self._runtimes[gid]
        if runtime.draining or runtime.retired:
            self._drain_step(runtime)
            return
        runtime.busy = False
        if len(runtime.queue) > runtime.queue_head:
            self._serve_next(runtime)

    def _begin_service_now(self, runtime: _SubtaskRuntime) -> None:
        queue = runtime.queue
        head = runtime.queue_head
        tup, port, enqueued_at = queue[head]
        k = self._k
        now = k.now
        wait = now - enqueued_at
        runtime.wait_time += wait
        runtime.served += 1
        head += 1
        runtime.queue_head = head
        if head > 256 and head * 2 >= len(queue):
            del queue[:head]
            runtime.queue_head = 0
        limit = self._bp_limit
        if limit is not None and runtime.gid in self._congested:
            depth = len(queue) - runtime.queue_head
            if depth <= limit // 2:
                if self._obs is not None:
                    self._obs.on_backpressure(runtime, now, False)
                self._congested.discard(runtime.gid)
        runtime.busy = True
        work = runtime.static_work
        if work is None:
            work = runtime.logic.work_units(tup)
        service = runtime.base_service * work
        sigma = runtime.noise_sigma
        if sigma > 0:
            service *= self._lognormal(runtime.noise_mu, sigma)
        runtime.busy_time += service
        if self._obs is not None:
            self._obs.on_serve(runtime, now, service, wait)
        k.seq += 1
        k.work += 1
        heappush(
            k.heap,
            (now + service, k.seq, _DONE, runtime.gid, tup, port),
        )

    def _handle_done(self, gid: int, tup: StreamTuple, port: int) -> None:
        runtime = self._runtimes[gid]
        now = self._k.now
        if runtime.is_source:
            outputs = [tup]
        else:
            outputs = runtime.logic.process(tup, now, port)
        if self._obs is not None:
            self._obs.on_done(runtime, now, tup, outputs)
        overhead = self._route_live(runtime, outputs)
        runtime.busy_time += overhead
        if runtime.draining:
            # The in-flight tuple this drain was waiting on is done;
            # once its routing overhead is paid, step the barrier. The
            # subtask stays busy so no further service starts.
            if overhead > 0:
                self._push(now + overhead, _BEGIN, gid, None, 0)
            else:
                self._drain_step(runtime)
            return
        if overhead > 0:
            self._push(now + overhead, _BEGIN, gid, None, 0)
        else:
            runtime.busy = False
            if len(runtime.queue) > runtime.queue_head:
                self._serve_next(runtime)

    def _handle_stall(self, gid: int, duration: float) -> None:
        runtime = self._runtimes[gid]
        now = self._k.now
        if runtime.retired:
            # The targeted subtask was replaced by a rescale; its
            # successors were built fresh, so the fault evaporates.
            # (Retired runtimes are permanently busy — retrying would
            # spin forever.)
            return
        if runtime.busy:
            # Pause begins once the in-flight tuple completes.
            self._push(now + 1e-4, _STALL, gid, duration, 0)
            return
        runtime.busy = True
        if self._obs is not None:
            self._obs.on_stall(runtime, now, duration)
        self._push(now + duration, _BEGIN, gid, None, 0)

    def _handle_timer(self, gid: int) -> None:
        runtime = self._runtimes[gid]
        now = self._k.now
        if runtime.retired:
            # Replacement subtasks re-armed their own timers at the
            # swap; let this one lapse without rescheduling.
            return
        logic = runtime.logic
        outputs = logic.on_time(now)
        # Window logics fire through an end-ordered heap, so an idle
        # timer tick returns [] in O(1); skip routing entirely then
        # (identical result: routing nothing adds 0.0 busy time).
        if outputs:
            if self._obs is not None:
                self._obs.on_window_fire(runtime, now, len(outputs))
            overhead = self._route_live(runtime, outputs)
            runtime.busy_time += overhead
        interval = logic.timer_interval
        next_time = now + interval
        horizon = self.config.max_sim_time + 10.0 * interval
        if next_time <= horizon:
            self._push(next_time, _TIMER, gid, None, 0)

    # ------------------------------------------------------ elastic runtime

    def _start_elastic(self) -> None:
        """Arm the elastic machinery for this run.

        The dedicated ``("engine", "rescale")`` stream exists so
        migration-pause noise never touches the arrival or operator
        streams: a run with rescales draws exactly the same arrival and
        service sequence (modulo queueing order) as one without.
        """
        from repro.elastic.policy import OpSnapshot, make_policy

        self._snapshot_cls = OpSnapshot
        self._rng_rescale = self._rngs.fresh("engine", "rescale")
        for event in self.config.rescales:
            reason = self._rescale_refusal(event.op_id)
            if reason is not None:
                raise SimulationError(
                    f"cannot rescale {event.op_id!r}: {reason}"
                )
            if event.at_time <= self.config.max_sim_time:
                self._push(
                    event.at_time,
                    _RESCALE,
                    0,
                    (event.op_id, event.parallelism),
                    0,
                )
        if self.config.autoscale:
            self._policy = make_policy(self.config.autoscale)
            self._autoscale_ops = [
                op_id
                for op_id in self.logical.topological_order()
                if self._rescale_refusal(op_id) is None
            ]
            self._control_prev: dict[str, tuple[float, int]] = {}
            interval = self.config.autoscale_interval
            if interval <= self.config.max_sim_time:
                self._push(interval, _CONTROL, 0, None, 0)
        if self._scenario is not None:
            self._schedule_scenario()

    def _schedule_scenario(self) -> None:
        """Compile the scenario's injections onto the event heap."""
        from repro.elastic.scenarios import (
            LoadSpike,
            NetworkDegradation,
            NodeFailure,
            Straggler,
        )

        horizon = self.config.max_sim_time
        for injection in self._scenario.injections:
            if injection.at > horizon:
                continue
            if isinstance(injection, NodeFailure):
                node = injection.node
                if node is None:
                    node = self._default_failure_node()
                hit = [
                    runtime.gid
                    for runtime in self._runtimes
                    if runtime.node_id == node
                ]
                if not hit:
                    raise SimulationError(
                        f"node failure targets node {node}, "
                        "which hosts no subtasks"
                    )
                self._push(
                    injection.at,
                    _SCENARIO,
                    0,
                    ("fail", node, injection.duration),
                    0,
                )
            elif isinstance(injection, LoadSpike):
                self._push(
                    injection.at,
                    _SCENARIO,
                    0,
                    ("spike", injection.factor, injection.duration),
                    0,
                )
            elif isinstance(injection, Straggler):
                op_id = injection.op or self._default_straggler_op()
                if op_id not in self._op_gids:
                    raise SimulationError(
                        f"straggler targets unknown operator {op_id!r}"
                    )
                self._push(
                    injection.at,
                    _SCENARIO,
                    0,
                    (
                        "straggle",
                        op_id,
                        injection.subtask,
                        injection.factor,
                        injection.duration,
                    ),
                    0,
                )
            elif isinstance(injection, NetworkDegradation):
                self._push(
                    injection.at,
                    _SCENARIO,
                    0,
                    (
                        "degrade",
                        injection.latency_factor,
                        injection.bandwidth_factor,
                        injection.duration,
                    ),
                    0,
                )
            else:
                raise SimulationError(
                    f"unknown injection type {type(injection).__name__}"
                )

    def _default_failure_node(self) -> int:
        """The node hosting the first processing subtask (deterministic)."""
        for runtime in self._runtimes:
            if not runtime.is_source and not runtime.is_sink:
                return runtime.node_id
        return self._runtimes[0].node_id

    def _default_straggler_op(self) -> str:
        """The plan's bottleneck: highest cost-model service time."""
        best_op = None
        best = -1.0
        for op_id in self.logical.topological_order():
            gids = self._op_gids.get(op_id)
            if not gids:
                continue
            runtime = self._runtimes[gids[0]]
            if runtime.is_source or runtime.is_sink:
                continue
            if runtime.base_service > best:
                best = runtime.base_service
                best_op = op_id
        if best_op is None:
            raise SimulationError(
                "plan has no processing operator to straggle"
            )
        return best_op

    def _handle_scenario(self, action) -> None:
        kind = action[0]
        if kind == "spike":
            _, factor, duration = action
            saved = []
            for runtime in self._runtimes:
                if runtime.is_source:
                    saved.append(
                        (
                            runtime.gid,
                            runtime.mean_gap,
                            runtime.burst_fast_gap,
                            runtime.burst_slow_gap,
                        )
                    )
                    runtime.mean_gap /= factor
                    runtime.burst_fast_gap /= factor
                    runtime.burst_slow_gap /= factor
            self._push(
                self._now + duration, _SCENARIO, 0, ("spike_end", saved), 0
            )
        elif kind == "spike_end":
            # Restore the exact pre-spike gaps (saved, not re-derived).
            for gid, mean_gap, fast_gap, slow_gap in action[1]:
                runtime = self._runtimes[gid]
                runtime.mean_gap = mean_gap
                runtime.burst_fast_gap = fast_gap
                runtime.burst_slow_gap = slow_gap
        elif kind == "straggle":
            _, op_id, index, factor, duration = action
            gids = self._op_gids[op_id]
            runtime = self._runtimes[gids[index % len(gids)]]
            original = runtime.base_service
            runtime.base_service = original * factor
            self._push(
                self._now + duration,
                _SCENARIO,
                0,
                ("unstraggle", runtime.gid, original),
                0,
            )
        elif kind == "unstraggle":
            # Float-exact recovery: the saved value, not a division. A
            # runtime retired in between was already replaced by clean
            # cost-model instances — rescaling repaired the straggler.
            _, gid, original = action
            runtime = self._runtimes[gid]
            if not runtime.retired:
                runtime.base_service = original
        elif kind == "degrade":
            _, latency_factor, bandwidth_factor, duration = action
            saved = []
            for runtime in self._runtimes:
                if runtime.retired:
                    continue
                for entry in runtime.route_table:
                    latencies = entry[5]
                    if latencies is None:
                        continue  # custom network model: not cacheable
                    bandwidths = entry[6]
                    saved.append(
                        (
                            latencies,
                            tuple(latencies),
                            bandwidths,
                            tuple(bandwidths),
                        )
                    )
                    for i, latency in enumerate(latencies):
                        if latency > 0.0:  # same-node channels stay free
                            latencies[i] = latency * latency_factor
                    for i, bandwidth in enumerate(bandwidths):
                        bandwidths[i] = bandwidth * bandwidth_factor
            self._push(
                self._now + duration,
                _SCENARIO,
                0,
                ("restore_net", saved),
                0,
            )
        elif kind == "restore_net":
            # Lists mutate in place, so tables recompiled by a rescale
            # mid-degradation simply drop out (they were rebuilt clean).
            for latencies, lat0, bandwidths, bw0 in action[1]:
                latencies[:] = lat0
                bandwidths[:] = bw0
        elif kind == "fail":
            _, node, duration = action
            if self._ft:
                self._ft_failure(node, duration)
            else:
                self._fail_node_now(node, duration)
        else:
            raise SimulationError(f"unknown scenario action {kind!r}")

    def _fail_node_now(self, node_id: int, duration: float) -> None:
        """Chaos node failure with checkpointing OFF: state is lost.

        Every processing subtask on the node loses its operator state
        and its queued input (both counted in
        ``extras["elastic"]["state_loss"]``) and restarts as a fresh
        logic instance after ``duration`` of downtime; failed sources
        generate-and-drop for the downtime so the loss is explicit.
        Sinks model transactional external systems and do not fail —
        matching the FT path, so the two are comparable. A tuple
        in service at the instant of failure completes into the fresh
        logic (the simulator has no mid-service abort).
        """
        if self._state_loss is None:
            self._state_loss = {
                "failed_subtasks": 0,
                "lost_keys": 0,
                "lost_tuples": 0,
                "lost_source_tuples": 0,
            }
        loss = self._state_loss
        for runtime in self._runtimes:
            if runtime.retired or runtime.node_id != node_id:
                continue
            if runtime.is_sink:
                continue
            loss["failed_subtasks"] += 1
            if runtime.is_source:
                mark = self._now + duration
                if mark > runtime.fail_until:
                    runtime.fail_until = mark
                continue
            loss["lost_keys"] += estimate_items(
                runtime.logic.snapshot_state()
            )
            loss["lost_tuples"] += len(runtime.queue) - runtime.queue_head
            runtime.ft_incarnation += 1
            logic = self.physical.effective_factory(runtime.op_id)()
            rng = self._rngs.fresh(
                "engine",
                runtime.op_id,
                str(runtime.index),
                f"r{runtime.ft_incarnation}",
            )
            logic.setup(
                OperatorContext(
                    op_id=runtime.op_id,
                    subtask_index=runtime.index,
                    parallelism=len(self._op_gids[runtime.op_id]),
                    rng=rng,
                )
            )
            runtime.logic = logic
            runtime.static_work = (
                logic.work_factor
                if type(logic).work_units is OperatorLogic.work_units
                else None
            )
            runtime.queue = []
            runtime.queue_head = 0
            # Downtime enforcement reuses the stall machinery: it waits
            # for any in-flight tuple, fires on_stall, and wakes the
            # subtask with a BEGIN after the outage.
            self._handle_stall(runtime.gid, duration)

    def _rescale_refusal(self, op_id: str) -> str | None:
        """Why ``op_id`` cannot rescale, or None when it can (cached —

        the answer depends only on the plan and the logic classes)."""
        if op_id in self._rescale_refusals:
            return self._rescale_refusals[op_id]
        reason = self._compute_rescale_refusal(op_id)
        self._rescale_refusals[op_id] = reason
        return reason

    def _compute_rescale_refusal(self, op_id: str) -> str | None:
        from repro.analysis.rules import _is_keyed_stateful

        if op_id not in self.logical.operators:
            return "unknown operator"
        if op_id not in self._op_gids:
            return "operator is fused into a chain"
        op = self.logical.operator(op_id)
        if op.kind is OperatorKind.SOURCE:
            return "sources own the arrival process"
        if op.kind is OperatorKind.SINK:
            return "sinks accumulate the run's result samples"
        for edge in self.logical.in_edges(op_id):
            if isinstance(edge.partitioner, ForwardPartitioner):
                return f"forward input from {edge.src!r} pins parallelism"
            if edge.partitioner.is_broadcast:
                return (
                    f"broadcast input from {edge.src!r}: replicated "
                    "deliveries cannot be re-routed"
                )
        for edge in self.logical.out_edges(op_id):
            if isinstance(edge.partitioner, ForwardPartitioner):
                return f"forward output to {edge.dst!r} pins parallelism"
        sample = self._runtimes[self._op_gids[op_id][0]].logic
        if not getattr(sample, "rescale_supported", False):
            return (
                f"{type(sample).__name__} does not support state "
                "migration (rescale_supported is False)"
            )
        stateful = op.cost.stateful or op.kind is OperatorKind.WINDOW_AGG
        if stateful:
            if not _is_keyed_stateful(op):
                return (
                    "stateful but not keyed: state cannot be "
                    "re-partitioned"
                )
            for edge in self.logical.in_edges(op_id):
                if not isinstance(edge.partitioner, HashPartitioner):
                    return (
                        "keyed state needs hash-partitioned input, got "
                        f"{edge.partitioner.name!r} from {edge.src!r}"
                    )
        return None

    def _handle_rescale(self, payload) -> None:
        """Initiate the drain barrier toward a new parallelism.

        Busy subtasks finish their in-flight tuple and are then locked;
        idle subtasks lock immediately (``busy = True`` keeps tuples
        delivered before the swap queued behind the barrier). The swap
        itself (:meth:`_perform_rescale`) runs when the last busy
        subtask completes — synchronously here when all are idle.
        """
        op_id, new_parallelism = payload
        reason = self._rescale_refusal(op_id)
        if reason is not None:
            raise SimulationError(f"cannot rescale {op_id!r}: {reason}")
        if op_id in self._pending_rescale:
            return  # already draining toward an earlier target
        live = self._op_gids[op_id]
        if new_parallelism < 1 or new_parallelism == len(live):
            return
        pending = 0
        for gid in live:
            runtime = self._runtimes[gid]
            runtime.draining = True
            if runtime.busy:
                pending += 1
            else:
                runtime.busy = True
        if pending == 0:
            self._perform_rescale(op_id, new_parallelism)
        else:
            self._pending_rescale[op_id] = [new_parallelism, pending]

    def _drain_step(self, runtime: _SubtaskRuntime) -> None:
        """One draining subtask reached quiescence; swap at the last."""
        if runtime.retired:
            return  # stray BEGIN scheduled before the swap
        runtime.busy = True  # hold the server through the swap
        entry = self._pending_rescale.get(runtime.op_id)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] == 0:
            del self._pending_rescale[runtime.op_id]
            self._perform_rescale(runtime.op_id, entry[0])

    def _perform_rescale(self, op_id: str, new_parallelism: int) -> None:
        """Swap an operator's drained generation for a fresh one.

        Runs synchronously at the drain barrier: every old subtask is
        quiescent (locked busy), so the only events still referencing
        them are in-flight ``DELIVER``s — which the retired runtimes
        forward — and stale timers/stalls, which are dropped.

        Invariants (pinned by tests/test_elastic_properties.py):

        - keyed state moves exactly once, in old-subtask-major key-rank
          order, re-bucketed by the same stable hash the partitioners
          route with — so post-swap deliveries land on the subtask that
          now owns their key;
        - queued tuples are re-delivered FIFO with their original
          enqueue timestamps (waiting time is preserved, not reset);
        - new subtasks stay busy for a migration pause whose noise comes
          from the dedicated rescale stream, then drain their queues.
        """
        now = self._now
        old_gids = self._op_gids[op_id]
        old_runtimes = [self._runtimes[gid] for gid in old_gids]
        epoch = self._op_epoch.get(op_id, 0) + 1
        self._op_epoch[op_id] = epoch
        cost = self.physical.effective_cost(op_id)
        coord = cost.coordination_factor(new_parallelism)
        cv = cost.cost_noise
        sigma = math.sqrt(math.log(1.0 + cv * cv)) if cv > 0 else 0.0

        new_runtimes: list[_SubtaskRuntime] = []
        new_gids: list[int] = []
        for index in range(new_parallelism):
            gid = len(self._runtimes)
            rng = self._rngs.fresh("engine", op_id, str(index), f"e{epoch}")
            logic = self.physical.effective_factory(op_id)()
            logic.setup(
                OperatorContext(
                    op_id=op_id,
                    subtask_index=index,
                    parallelism=new_parallelism,
                    rng=rng,
                )
            )
            # Nodes are reused cyclically from the drained generation:
            # the cluster stays fixed, only the degree changes.
            donor = old_runtimes[index % len(old_runtimes)]
            node = self.cluster.node(donor.node_id)
            load = donor.slot_load
            runtime = _SubtaskRuntime(
                gid=gid,
                op_id=op_id,
                index=index,
                logic=logic,
                node_id=donor.node_id,
                base_service=(
                    cost.base_cpu_s * coord * load / node.speed_factor
                ),
                noise_sigma=sigma,
                shuffle_cost_per_output=0.0,
                is_source=False,
                is_sink=False,
                static_work=(
                    logic.work_factor
                    if type(logic).work_units is OperatorLogic.work_units
                    else None
                ),
                noise_mu=-0.5 * sigma * sigma,
                slot_load=load,
                epoch=epoch,
            )
            self._runtimes.append(runtime)
            new_runtimes.append(runtime)
            new_gids.append(gid)

        # Outgoing channels: same logical edges, fresh partitioner
        # clones, consumers looked up from the current live sets.
        for runtime in new_runtimes:
            groups = []
            shuffle_cost = 0.0
            for edge in self.logical.out_edges(op_id):
                group = ChannelGroup(
                    edge=edge,
                    producer_gid=runtime.gid,
                    partitioner=edge.partitioner.clone(),
                    consumer_gids=list(self._op_gids[edge.dst]),
                    port=edge.port,
                    is_shuffle=True,  # forward out-edges refuse rescale
                )
                groups.append(group)
                shuffle_cost += SERDE_COST_S + COORD_LOG_COST_S * math.log2(
                    max(group.num_channels, 2)
                )
            self._out_channels[runtime.gid] = groups
            runtime.shuffle_cost_per_output = shuffle_cost
            self._compile_route_table(runtime)

        # In-flight forwarding state: one partitioner clone per input
        # port, consulted by retired tombstones and queue re-delivery.
        forwarders = {
            edge.port: edge.partitioner.clone()
            for edge in self.logical.in_edges(op_id)
        }
        self._op_forwarders[op_id] = forwarders

        # Keyed-state migration, old-subtask-major, hash re-bucketed.
        exported: list = []
        for runtime in old_runtimes:
            items = runtime.logic.export_keyed_state()
            if items:
                exported.extend(items)
        migrated_keys = len(exported)
        if exported:
            buckets: list[list] = [[] for _ in range(new_parallelism)]
            for key, payload in exported:
                buckets[_stable_hash(key) % new_parallelism].append(
                    (key, payload)
                )
            for index, bucket in enumerate(buckets):
                if bucket:
                    new_runtimes[index].logic.import_keyed_state(bucket)

        # Queue re-delivery: FIFO per old subtask, original timestamps.
        moved_tuples = 0
        for runtime in old_runtimes:
            queue = runtime.queue
            for tup, port, enqueued_at in queue[runtime.queue_head :]:
                part = forwarders.get(port)
                index = (
                    part.select(tup, new_parallelism)[0]
                    if part is not None
                    else 0
                )
                new_runtimes[index].queue.append((tup, port, enqueued_at))
                moved_tuples += 1
            runtime.queue = []
            runtime.queue_head = 0
            runtime.retired = True
            runtime.draining = False
            runtime.busy = True

        self._op_gids[op_id] = new_gids

        # Rewire every live producer feeding this operator: mutate the
        # channel groups in place (preserving partitioner instances and
        # their round-robin/hash-cache state) and recompile.
        for producer in self._runtimes:
            if producer.retired or producer.op_id == op_id:
                continue
            changed = False
            for group in self._out_channels[producer.gid]:
                if group.edge.dst == op_id:
                    group.consumer_gids = list(new_gids)
                    changed = True
            if changed:
                shuffle_cost = 0.0
                for group in self._out_channels[producer.gid]:
                    if group.is_shuffle:
                        shuffle_cost += (
                            SERDE_COST_S
                            + COORD_LOG_COST_S
                            * math.log2(max(group.num_channels, 2))
                        )
                producer.shuffle_cost_per_output = shuffle_cost
                self._compile_route_table(producer)

        if self._bp_limit is not None:
            for gid in old_gids:
                self._congested.discard(gid)
            for runtime in new_runtimes:
                if len(runtime.queue) >= self._bp_limit:
                    self._congested.add(runtime.gid)

        # Migration pause: fixed handshake + per-key and per-tuple
        # transfer costs, noised from the dedicated rescale stream. New
        # subtasks activate via BEGIN (a work event, so the run cannot
        # end with migrated tuples stranded) and re-arm their timers.
        pause = (
            _MIGRATION_BASE_S
            + _MIGRATION_PER_KEY_S * migrated_keys
            + _MIGRATION_PER_TUPLE_S * moved_tuples
        )
        pause *= self._rng_rescale.lognormal(-0.02, 0.2)
        for runtime in new_runtimes:
            runtime.busy = True
            self._push(now + pause, _BEGIN, runtime.gid, None, 0)
            interval = getattr(runtime.logic, "timer_interval", None)
            if interval:
                self._push(
                    now + pause + interval, _TIMER, runtime.gid, None, 0
                )

        if self.config.autoscale:
            self._control_prev.pop(op_id, None)
        self._rescale_count += 1
        self._migrated_keys_total += migrated_keys
        self._rescale_log.append(
            {
                "t": now,
                "op": op_id,
                "from": len(old_gids),
                "to": new_parallelism,
                "keys": migrated_keys,
                "tuples": moved_tuples,
                "pause_s": pause,
            }
        )
        if self._obs is not None:
            self._obs.on_rescale(
                self, now, op_id, old_gids, new_gids, migrated_keys, pause
            )

    def _forward_gid(
        self, runtime: _SubtaskRuntime, tup: StreamTuple, port: int
    ) -> int:
        """Where a tuple in flight toward a retired subtask goes now."""
        live = self._op_gids[runtime.op_id]
        part = self._op_forwarders[runtime.op_id].get(port)
        if part is None:
            return live[0]
        return live[part.select(tup, len(live))[0]]

    def _handle_control(self) -> None:
        """One autoscaler tick: snapshot, decide, emit rescales."""
        now = self._now
        interval = self.config.autoscale_interval
        make_snapshot = self._snapshot_cls
        snapshots = []
        for op_id in self._autoscale_ops:
            if op_id in self._pending_rescale:
                continue  # mid-drain: skip until the swap lands
            gids = self._op_gids[op_id]
            depth = 0
            busy = 0.0
            served = 0
            for gid in gids:
                runtime = self._runtimes[gid]
                depth += len(runtime.queue) - runtime.queue_head
                busy += runtime.busy_time
                served += runtime.served
            prev_busy, prev_served = self._control_prev.get(op_id, (0.0, 0))
            self._control_prev[op_id] = (busy, served)
            parallelism = len(gids)
            snapshots.append(
                make_snapshot(
                    op_id=op_id,
                    parallelism=parallelism,
                    queue_depth=depth,
                    utilization=(
                        (busy - prev_busy) / (interval * parallelism)
                    ),
                    service_rate=(served - prev_served) / interval,
                    base_service_s=self._runtimes[gids[0]].base_service,
                )
            )
        targets = self._policy.decide(now, snapshots)
        for op_id in sorted(targets):
            target = int(targets[op_id])
            if (
                target >= 1
                and op_id not in self._pending_rescale
                and target != len(self._op_gids[op_id])
                and self._rescale_refusal(op_id) is None
            ):
                self._push(now, _RESCALE, 0, (op_id, target), 0)
        next_tick = now + interval
        if next_tick <= self.config.max_sim_time:
            self._push(next_tick, _CONTROL, 0, None, 0)

    def _resource_seconds(self, span: float) -> float:
        """∫ total subtask count dt — the resource-cost numerator."""
        current = {
            op_id: len(gids)
            for op_id, gids in self.physical.op_subtasks.items()
        }
        total = 0.0
        prev_t = 0.0
        for event in self._rescale_log:
            t = min(event["t"], span)
            total += sum(current.values()) * (t - prev_t)
            current[event["op"]] = event["to"]
            prev_t = t
        total += sum(current.values()) * (span - prev_t)
        return total

    # ------------------------------------------------ fault tolerance (§13)

    def _ft_init(self) -> None:
        """Arm checkpointing for this run.

        The dedicated ``("engine", "ft")`` stream keeps recovery noise
        off the arrival/service streams, and every FT data structure is
        built here so checkpoint-off runs carry none of it.
        """
        self._rng_ft = self._rngs.fresh("engine", "ft")
        self._ft_store = StateStore()
        self._ft_interval = self.config.checkpoint_interval
        self._ft_exactly_once = self.config.delivery == "exactly_once"
        #: (producer_gid, emit_seq) provenance ids admitted at the sinks
        self._ft_seen: set[tuple[int, int]] = set()
        #: per-channel FIFO clock: (src_gid, dst_gid, port) -> last
        #: scheduled delivery time; clamps keep barriers ordered w.r.t.
        #: the data around them
        self._ft_chan_clock: dict[tuple[int, int, int], float] = {}
        self._ft_recovering = False
        self._ft_restore_token = 0
        self._ft_pending = 0
        self._ft_recoveries = 0
        self._ft_recovery_time = 0.0
        self._ft_replayed = 0
        self._ft_dupes_dropped = 0
        self._ft_dup_results = 0
        # Expected barrier count per consumer = its live input channels,
        # derived from the same compiled route tables the data uses.
        expected = [0] * len(self._runtimes)
        for runtime in self._runtimes:
            for entry in runtime.route_table:
                fixed = entry[1]
                consumers = entry[3]
                indices = fixed if fixed is not None else range(entry[4])
                for idx in indices:
                    expected[consumers[idx]] += 1
        self._ft_expected = expected
        self._ft_num_acks = sum(
            1
            for runtime in self._runtimes
            if runtime.is_source or expected[runtime.gid] > 0
        )
        for runtime in self._runtimes:
            if runtime.is_source:
                runtime.ft_log = []
        self._route_live = self._ft_route
        self._serve_next = self._ft_begin_service_now
        if self._ft_interval <= self.config.max_sim_time:
            self._push(self._ft_interval, _FT, 0, ("trigger",), 0)

    def _handle_ft(self, action) -> None:
        if action[0] == "trigger":
            nxt = self._now + self._ft_interval
            if nxt <= self.config.max_sim_time:
                self._push(nxt, _FT, 0, ("trigger",), 0)
            store = self._ft_store
            if self._ft_recovering or store.active is not None:
                # The previous checkpoint is still aligning (or a
                # recovery is in flight): count the skip, don't overlap.
                store.skip()
                return
            if self._ft_num_acks == 0:
                return
            record = store.begin(self._now)
            self._ft_pending = self._ft_num_acks
            for runtime in self._runtimes:
                if runtime.is_source:
                    # The barrier rides the source's own queue, behind
                    # any generated-but-unrouted tuples: the replay
                    # offset is recorded when the source dequeues it,
                    # so the snapshot cut and the offset agree even
                    # when the source has a service backlog.
                    self._ft_enqueue(
                        runtime, (_Barrier(record.ckpt_id), -1), 0
                    )
        else:  # ("restored", token)
            self._ft_restored(action[1])

    def _ft_enqueue(self, runtime: _SubtaskRuntime, payload, port: int) -> None:
        """FT delivery path: queue entries are (item, port, at, src).

        ``payload`` is ``(item, producer_gid)``; ``producer_gid`` is -1
        for a source's own generated tuples. Barriers join the queue
        like data; post-barrier data on an already-aligned channel is
        diverted to the alignment buffer; sink deliveries pass the
        provenance ledger first.
        """
        tup, src = payload
        now = self._now
        if tup.__class__ is _Barrier:
            runtime.queue.append((tup, port, now, src))
            if not runtime.busy:
                self._ft_begin_service_now(runtime)
            return
        if runtime.is_sink:
            prov = tup.prov
            if prov is not None:
                seen = self._ft_seen
                if prov in seen:
                    if self._ft_exactly_once:
                        self._ft_dupes_dropped += 1
                        return
                    self._ft_dup_results += 1
                else:
                    seen.add(prov)
        obs = self._obs
        if obs is not None:
            obs.tuples_in[runtime.gid] += 1
        if runtime.ft_ckpt is not None and (src, port) in runtime.ft_aligned:
            runtime.ft_buffer.append((tup, port, now, src))
            return
        queue = runtime.queue
        queue.append((tup, port, now, src))
        depth = len(queue) - runtime.queue_head
        if depth > runtime.queue_peak:
            runtime.queue_peak = depth
        if not runtime.busy:
            self._ft_begin_service_now(runtime)

    def _ft_begin_service_now(self, runtime: _SubtaskRuntime) -> None:
        """FT head-of-queue step: barriers and aligned-channel data are
        consumed at zero cost; the first servable tuple starts service
        exactly as ``_begin_service_now`` would."""
        queue = runtime.queue
        now = self._now
        while True:
            head = runtime.queue_head
            if head >= len(queue):
                return
            tup, port, enqueued_at, src = queue[head]
            if tup.__class__ is _Barrier:
                runtime.queue_head = head + 1
                self._ft_barrier_dequeued(runtime, tup, src, port)
                continue
            if (
                runtime.ft_ckpt is not None
                and (src, port) in runtime.ft_aligned
            ):
                runtime.queue_head = head + 1
                runtime.ft_buffer.append((tup, port, enqueued_at, src))
                continue
            break
        wait = now - enqueued_at
        runtime.wait_time += wait
        runtime.served += 1
        head += 1
        runtime.queue_head = head
        if head > 256 and head * 2 >= len(queue):
            del queue[:head]
            runtime.queue_head = 0
        runtime.busy = True
        work = runtime.static_work
        if work is None:
            work = runtime.logic.work_units(tup)
        service = runtime.base_service * work
        sigma = runtime.noise_sigma
        if sigma > 0:
            service *= self._lognormal(runtime.noise_mu, sigma)
        runtime.busy_time += service
        if self._obs is not None:
            self._obs.on_serve(runtime, now, service, wait)
        k = self._k
        k.seq += 1
        k.work += 1
        heappush(
            k.heap,
            (now + service, k.seq, _DONE, runtime.gid, tup, port),
        )

    def _ft_barrier_dequeued(
        self, runtime: _SubtaskRuntime, barrier: _Barrier, src: int, port: int
    ) -> None:
        if runtime.ft_ckpt is None:
            runtime.ft_ckpt = barrier.ckpt_id
            runtime.ft_aligned = set()
            runtime.ft_buffer = []
        runtime.ft_aligned.add((src, port))
        if len(runtime.ft_aligned) < self._ft_expected[runtime.gid]:
            return
        # Aligned on every input channel: snapshot, forward, acknowledge
        # (unless a failure aborted this checkpoint mid-alignment).
        store = self._ft_store
        record = store.active
        if record is not None and record.ckpt_id == runtime.ft_ckpt:
            if runtime.is_source:
                # Everything still queued behind the barrier was
                # generated (or replayed) after it, so the replay
                # offset is the log cursor minus that backlog.
                record.source_offsets[runtime.gid] = runtime.ft_head - (
                    len(runtime.queue) - runtime.queue_head
                )
                record.emit_seqs[runtime.gid] = runtime.ft_emit_seq
                self._ft_forward_barrier(runtime, record.ckpt_id)
            elif not runtime.is_sink:
                store.add_snapshot(
                    runtime.gid, runtime.logic.snapshot_state()
                )
                record.emit_seqs[runtime.gid] = runtime.ft_emit_seq
                self._ft_forward_barrier(runtime, record.ckpt_id)
            self._ft_pending -= 1
            if self._ft_pending == 0:
                completed = store.complete(self._now)
                if self._obs is not None:
                    self._obs.on_checkpoint(self, completed)
        # Release input buffered during alignment, ahead of the rest.
        buffer = runtime.ft_buffer
        if buffer:
            queue = runtime.queue
            head = runtime.queue_head
            queue[head:head] = buffer
        runtime.ft_ckpt = None
        runtime.ft_aligned = None
        runtime.ft_buffer = None

    def _ft_forward_barrier(
        self, runtime: _SubtaskRuntime, ckpt_id: int
    ) -> None:
        """Send ``ckpt_id``'s barrier down every outgoing channel."""
        k = self._k
        now = k.now
        heap = k.heap
        seq = k.seq
        clock = self._ft_chan_clock
        runtimes = self._runtimes
        src_gid = runtime.gid
        pushed = 0
        for entry in runtime.route_table:
            fixed = entry[1]
            consumers = entry[3]
            latencies = entry[5]
            port = entry[7]
            indices = fixed if fixed is not None else range(entry[4])
            network = self.cluster.network if latencies is None else None
            for idx in indices:
                cgid = consumers[idx]
                if latencies is not None:
                    delay = latencies[idx]
                else:
                    delay = network.transfer_delay(
                        runtime.node_id, runtimes[cgid].node_id, 0.0
                    )
                at = now + delay
                key = (src_gid, cgid, port)
                prev = clock.get(key)
                if prev is not None and at < prev:
                    at = prev
                clock[key] = at
                seq += 1
                pushed += 1
                heappush(
                    heap,
                    (at, seq, _DELIVER, cgid, (_Barrier(ckpt_id), src_gid), port),
                )
        k.seq = seq
        k.work += pushed

    def _handle_replay(self, gid: int) -> None:
        """Redeliver the next logged source tuple after a recovery."""
        runtime = self._runtimes[gid]
        log = runtime.ft_log
        head = runtime.ft_head
        if log is None or head >= len(log):
            return
        tup = log[head]
        runtime.ft_head = head + 1
        self._ft_enqueue(runtime, (tup, -1), 0)
        if runtime.ft_head < len(log):
            gap = runtime.mean_gap * _REPLAY_GAP_FRACTION
            self._push(self._now + gap, _REPLAY, gid, None, 0)

    def _ft_failure(self, node_id: int, duration: float) -> None:
        """Chaos node failure with checkpointing ON: actual recovery.

        Global-restart model (Flink's default failover for connected
        regions): every processing subtask restarts from the last
        completed checkpoint, sources rewind their durable-log offsets
        to it and replay, and sinks — transactional external systems —
        keep running, with the delivery guarantee deciding what their
        ledger does with replayed results.
        """
        store = self._ft_store
        if store.active is not None:
            store.abort()
            self._ft_pending = 0
        record = store.latest()
        now = self._k.now
        runtimes = self._runtimes
        heap = self._k.heap
        # Purge in-flight work. Sink-bound events survive (their
        # deliveries and services complete; dedupe absorbs replays), as
        # do arrivals (sources keep generating into their logs), timers
        # and control events.
        kept = []
        for ev in heap:
            kind = ev[2]
            if (
                kind != _ARRIVAL
                and kind != _TIMER
                and kind <= _REPLAY
                and not runtimes[ev[3]].is_sink
            ):
                continue
            if (
                kind == _DELIVER
                and runtimes[ev[3]].is_sink
                and ev[4][0].__class__ is _Barrier
            ):
                # An in-flight barrier of the aborted checkpoint; were
                # it delivered it would re-arm alignment on an epoch
                # that can never pair again.
                continue
            kept.append(ev)
        heap[:] = kept
        heapify(heap)
        work = 0
        for ev in heap:
            kind = ev[2]
            if kind != _TIMER and kind < _RESCALE:
                work += 1
        self._k.work = work
        restored_items = 0
        replayed = 0
        for runtime in runtimes:
            if runtime.is_sink:
                # The sink survives, but a checkpoint it was aligning
                # is aborted: release the diverted buffer ahead of the
                # queue (those results already passed the provenance
                # ledger, so replay would drop them as duplicates) and
                # purge queued barriers of the dead epoch, or the next
                # checkpoint's barriers pair against stale state and
                # no checkpoint ever completes again.
                queue = runtime.queue
                head = runtime.queue_head
                if runtime.ft_buffer:
                    queue[head:head] = runtime.ft_buffer
                tail = [
                    entry
                    for entry in queue[head:]
                    if entry[0].__class__ is not _Barrier
                ]
                if len(tail) != len(queue) - head:
                    queue[head:] = tail
                runtime.ft_ckpt = None
                runtime.ft_aligned = None
                runtime.ft_buffer = None
                if not runtime.busy and len(queue) > runtime.queue_head:
                    self._ft_begin_service_now(runtime)
                continue
            runtime.busy = True  # paused until the recovery completes
            runtime.ft_ckpt = None
            runtime.ft_aligned = None
            runtime.ft_buffer = None
            if runtime.is_source:
                offset = 0
                emit = 0
                if record is not None:
                    offset = record.source_offsets.get(runtime.gid, 0)
                    emit = record.emit_seqs.get(runtime.gid, 0)
                replayed += runtime.ft_head - offset
                runtime.ft_head = offset
                runtime.ft_emit_seq = emit
                runtime.queue = []
                runtime.queue_head = 0
                continue
            runtime.ft_incarnation += 1
            snapshot = None
            if record is not None:
                snapshot = record.snapshots.get(runtime.gid)
            logic = self.physical.effective_factory(runtime.op_id)()
            rng = self._rngs.fresh(
                "engine",
                runtime.op_id,
                str(runtime.index),
                f"r{runtime.ft_incarnation}",
            )
            logic.setup(
                OperatorContext(
                    op_id=runtime.op_id,
                    subtask_index=runtime.index,
                    parallelism=len(self._op_gids[runtime.op_id]),
                    rng=rng,
                )
            )
            logic.restore_state(snapshot)
            runtime.logic = logic
            runtime.static_work = (
                logic.work_factor
                if type(logic).work_units is OperatorLogic.work_units
                else None
            )
            runtime.queue = []
            runtime.queue_head = 0
            runtime.ft_emit_seq = (
                record.emit_seqs.get(runtime.gid, 0)
                if record is not None
                else 0
            )
            restored_items += estimate_items(snapshot)
        pause = (
            duration
            + _RECOVERY_BASE_S
            + _RECOVERY_PER_ITEM_S * restored_items
        )
        pause *= float(self._rng_ft.lognormal(-0.02, 0.2))
        self._ft_recoveries += 1
        self._ft_recovery_time += pause
        self._ft_replayed += replayed
        self._ft_restore_token += 1
        self._ft_recovering = True
        self._push(
            now + pause, _FT, 0, ("restored", self._ft_restore_token), 0
        )
        if self._obs is not None:
            self._obs.on_recovery(
                self,
                node_id,
                pause,
                replayed,
                record.ckpt_id if record is not None else None,
            )

    def _ft_restored(self, token: int) -> None:
        """The recovery pause is over: un-pause and start the replay."""
        if token != self._ft_restore_token:
            return  # a later failure superseded this recovery
        self._ft_recovering = False
        for runtime in self._runtimes:
            if runtime.is_sink:
                continue
            runtime.busy = False
            if runtime.is_source:
                log = runtime.ft_log
                if log and runtime.ft_head < len(log):
                    self._push(self._now, _REPLAY, runtime.gid, None, 0)
            elif len(runtime.queue) > runtime.queue_head:
                self._ft_begin_service_now(runtime)
        if self._k.work == 0:
            # The purge may have consumed the last work event without
            # the main loop seeing work hit zero; run the end-of-stream
            # flush rounds it would have run.
            max_ops = len(self.logical.operators) + 2
            while (
                self._k.work == 0
                and self._flush_rounds < max_ops
                and self._flush_all()
            ):
                self._flush_rounds += 1

    def _ft_route(
        self, runtime: _SubtaskRuntime, outputs: list[StreamTuple]
    ) -> float:
        """FT variant of :meth:`_route`.

        Identical delay/overhead accounting, plus: deliveries are
        clamped to per-channel FIFO clocks (so barriers stay ordered
        with the data around them), payloads are wrapped with the
        producer gid for alignment, and sink-bound results are stamped
        with ``(producer, emit_seq)`` provenance for the delivery
        guarantee's ledger.
        """
        if not outputs:
            return 0.0
        table = runtime.route_table
        if not table:
            return 0.0
        k = self._k
        now = k.now
        heap = k.heap
        seq = k.seq
        obs = self._obs
        clock = self._ft_chan_clock
        runtimes = self._runtimes
        src_gid = runtime.gid
        pushed = 0
        offset = 0.0
        for (
            select,
            fixed,
            rekey,
            consumers,
            num_channels,
            latencies,
            bandwidths,
            port,
            shuffle_cost,
        ) in table:
            routed = []
            group_overhead = 0.0
            for tup in outputs:
                out = tup.with_key(rekey(tup)) if rekey is not None else tup
                indices = (
                    fixed if fixed is not None else select(out, num_channels)
                )
                if shuffle_cost:
                    group_overhead += shuffle_cost * len(indices)
                routed.append((out, indices))
            if shuffle_cost:
                offset += group_overhead
                if obs is not None:
                    nbytes = 0.0
                    for out, indices in routed:
                        nbytes += out.size_bytes * len(indices)
                    obs.shuffle_bytes[src_gid] += nbytes
            network = self.cluster.network if latencies is None else None
            for out, indices in routed:
                size = out.size_bytes
                for idx in indices:
                    cgid = consumers[idx]
                    if latencies is not None:
                        delay = latencies[idx] + size / bandwidths[idx]
                    else:
                        delay = network.transfer_delay(
                            runtime.node_id, runtimes[cgid].node_id, size
                        )
                    at = now + delay + offset
                    key = (src_gid, cgid, port)
                    prev = clock.get(key)
                    if prev is not None and at < prev:
                        at = prev
                    clock[key] = at
                    if runtimes[cgid].is_sink:
                        runtime.ft_emit_seq += 1
                        out_d = out.with_prov((src_gid, runtime.ft_emit_seq))
                    else:
                        out_d = out
                    seq += 1
                    pushed += 1
                    heappush(
                        heap,
                        (at, seq, _DELIVER, cgid, (out_d, src_gid), port),
                    )
        k.seq = seq
        k.work += pushed
        return offset

    # -------------------------------------------------------------- routing

    def _route(
        self, runtime: _SubtaskRuntime, outputs: list[StreamTuple]
    ) -> float:
        """Send outputs downstream; return sender CPU overhead (serde).

        **Overhead accounting.** The sender serializes its channel groups
        in plan order; all serde work of a group is paid before any of
        that group's tuples depart, so every delivery of group *g* is
        offset by the cumulative overhead of groups ``1..g`` (including
        *g*'s own total). Within a group the offset is identical for all
        tuples — a tuple's delivery time never depends on its position in
        the output batch, only on the (deterministic) group order. The
        precompiled routing tables reproduce exactly this accounting.
        """
        if not outputs:
            return 0.0
        table = runtime.route_table
        if not table:
            return 0.0
        k = self._k
        now = k.now
        heap = k.heap
        seq = k.seq
        obs = self._obs
        pushed = 0
        offset = 0.0
        for (
            select,
            fixed,
            rekey,
            consumers,
            num_channels,
            latencies,
            bandwidths,
            port,
            shuffle_cost,
        ) in table:
            if fixed is not None:
                # Constant fan-out (forward/broadcast): no per-tuple
                # select call or index-list allocation. The overhead sum
                # keeps the original one-addition-per-output order so it
                # stays bit-identical to the dynamic path.
                if shuffle_cost:
                    per_output = shuffle_cost * len(fixed)
                    group_overhead = 0.0
                    for _ in outputs:
                        group_overhead += per_output
                    offset += group_overhead
                    if obs is not None:
                        nbytes = 0.0
                        for out in outputs:
                            nbytes += out.size_bytes
                        obs.shuffle_bytes[runtime.gid] += nbytes * len(fixed)
                routed = None
            elif shuffle_cost:
                # Dynamic fan-out with serde overhead: all selects of the
                # group run first so the full group overhead offsets every
                # delivery, then the buffered batch departs.
                routed = []
                group_overhead = 0.0
                for tup in outputs:
                    out = (
                        tup.with_key(rekey(tup)) if rekey is not None else tup
                    )
                    indices = select(out, num_channels)
                    group_overhead += shuffle_cost * len(indices)
                    routed.append((out, indices))
                offset += group_overhead
                if obs is not None:
                    nbytes = 0.0
                    for out, indices in routed:
                        nbytes += out.size_bytes * len(indices)
                    obs.shuffle_bytes[runtime.gid] += nbytes
            else:
                # Dynamic fan-out, overhead-free group: the offset cannot
                # change, so skip the buffering pass entirely.
                routed = None
            if latencies is not None:
                if fixed is not None:
                    for out in outputs:
                        size = out.size_bytes
                        for idx in fixed:
                            delay = latencies[idx] + size / bandwidths[idx]
                            seq += 1
                            pushed += 1
                            heappush(
                                heap,
                                (
                                    now + delay + offset,
                                    seq,
                                    _DELIVER,
                                    consumers[idx],
                                    out,
                                    port,
                                ),
                            )
                    continue
                if routed is None:
                    for tup in outputs:
                        out = (
                            tup.with_key(rekey(tup))
                            if rekey is not None
                            else tup
                        )
                        size = out.size_bytes
                        for idx in select(out, num_channels):
                            delay = latencies[idx] + size / bandwidths[idx]
                            seq += 1
                            pushed += 1
                            heappush(
                                heap,
                                (
                                    now + delay + offset,
                                    seq,
                                    _DELIVER,
                                    consumers[idx],
                                    out,
                                    port,
                                ),
                            )
                    continue
                for out, indices in routed:
                    size = out.size_bytes
                    for idx in indices:
                        delay = latencies[idx] + size / bandwidths[idx]
                        seq += 1
                        pushed += 1
                        heappush(
                            heap,
                            (
                                now + delay + offset,
                                seq,
                                _DELIVER,
                                consumers[idx],
                                out,
                                port,
                            ),
                        )
            else:
                # Custom network model: ask it for every delivery.
                network = self.cluster.network
                src_node = runtime.node_id
                runtimes = self._runtimes
                if routed is None:
                    lazy = []
                    for tup in outputs:
                        out = (
                            tup.with_key(rekey(tup))
                            if rekey is not None
                            else tup
                        )
                        lazy.append((out, fixed or select(out, num_channels)))
                    routed = lazy
                for out, indices in routed:
                    for idx in indices:
                        delay = network.transfer_delay(
                            src_node,
                            runtimes[consumers[idx]].node_id,
                            out.size_bytes,
                        )
                        seq += 1
                        pushed += 1
                        heappush(
                            heap,
                            (
                                now + delay + offset,
                                seq,
                                _DELIVER,
                                consumers[idx],
                                out,
                                port,
                            ),
                        )
        k.seq = seq
        k.work += pushed
        return offset

    # ---------------------------------------------------------------- flush

    def _flush_all(self) -> bool:
        """Flush stateful logics once; True if anything was emitted."""
        if self._flush_time is None:
            self._flush_time = self._now
        emitted = False
        for op_id in self.logical.topological_order():
            # Fused chain tails have no subtasks of their own; their
            # flush runs inside the chain head's ChainedLogic. The live
            # gid map excludes retired runtimes, whose state migrated
            # to their replacements at the rescale.
            if op_id not in self._op_gids:
                continue
            for gid in self._op_gids[op_id]:
                runtime = self._runtimes[gid]
                outputs = runtime.logic.flush(self._now)
                if outputs:
                    emitted = True
                    if self._obs is not None:
                        self._obs.on_flush(runtime, self._now, len(outputs))
                    self._route_live(runtime, outputs)
        return emitted

    # -------------------------------------------------------------- metrics

    def _collect_metrics(self) -> RunMetrics:
        # Per-sink samples arrive in simulation-time order; merge the
        # sinks and sort lexicographically by (arrival, latency) in one
        # vectorized pass — the same ordering the result list had when it
        # was built as sorted (arrival, latency) tuples.
        arrays = [
            (
                np.asarray(sink.arrival_times, dtype=float),
                np.asarray(sink.latencies, dtype=float),
            )
            for sink in self._sinks
        ]
        if len(arrays) == 1:
            arrival_times, latencies = arrays[0]
        else:
            arrival_times = np.concatenate([a for a, _ in arrays])
            latencies = np.concatenate([b for _, b in arrays])
        order = np.lexsort((latencies, arrival_times))
        arrival_times = arrival_times[order]
        latencies = latencies[order]
        total_results = int(arrival_times.size)
        # Results forced out by the end-of-stream flush carry artificially
        # short window residence; exclude them from latency stats unless
        # they are all we have (e.g. windows longer than the whole run).
        if self._flush_time is not None and total_results:
            steady = int(
                np.searchsorted(
                    arrival_times, self._flush_time, side="right"
                )
            )
            if steady > 0:
                arrival_times = arrival_times[:steady]
                latencies = latencies[:steady]
        skip = int(arrival_times.size * self.config.warmup_fraction)
        latency = LatencyStats.from_samples(latencies[skip:])
        slo = self.config.slo_latency
        slo_violations = 0
        slo_violation_s = 0.0
        if slo is not None and arrival_times.size > skip:
            lat_steady = latencies[skip:]
            arr_steady = arrival_times[skip:]
            violating = lat_steady > slo
            slo_violations = int(np.count_nonzero(violating))
            if arr_steady.size > 1:
                # Each inter-arrival gap is charged to the sample that
                # closes it: time spent past the SLO, not a raw count.
                slo_violation_s = float(
                    np.diff(arr_steady)[violating[1:]].sum()
                )
        span = max(self._now, 1e-9)
        if self.config.batch_size is not None:
            # Batch mode: a whole micro-batch lands at its completion
            # time, so anchoring the window at the first sink arrival
            # can collapse it to ~0 when only a few batches reach the
            # sink. Measure over the full simulated span instead.
            window = span
        else:
            first = float(arrival_times[0]) if arrival_times.size else 0.0
            window = max(span - first, 1e-9)
        throughput = total_results / window
        utilization: dict[str, list[float]] = {}
        queue_peaks: dict[str, int] = {}
        wait_sums: dict[str, float] = {}
        served_sums: dict[str, int] = {}
        source_events = 0
        for runtime in self._runtimes:
            utilization.setdefault(runtime.op_id, []).append(
                runtime.busy_time / span
            )
            previous = queue_peaks.get(runtime.op_id, 0)
            queue_peaks[runtime.op_id] = max(previous, runtime.queue_peak)
            wait_sums[runtime.op_id] = (
                wait_sums.get(runtime.op_id, 0.0) + runtime.wait_time
            )
            served_sums[runtime.op_id] = (
                served_sums.get(runtime.op_id, 0) + runtime.served
            )
            if runtime.is_source:
                source_events += runtime.emitted
        avg_wait = {
            op_id: wait_sums[op_id] / served
            for op_id, served in served_sums.items()
            if served > 0
        }
        extras: dict = {
            "events_processed": self._events_processed,
            "throttled_arrivals": self._throttled_arrivals,
        }
        if slo is not None:
            extras["slo_violations"] = slo_violations
            extras["slo_violation_s"] = slo_violation_s
        if self._elastic:
            extras["elastic"] = {
                "rescales": self._rescale_count,
                "migrated_keys": self._migrated_keys_total,
                "resource_seconds": self._resource_seconds(span),
                "log": list(self._rescale_log),
            }
            if self._state_loss is not None:
                # FT-off node failure: the state the run measurably lost.
                extras["elastic"]["state_loss"] = dict(self._state_loss)
        if self._ft:
            store = self._ft_store
            latest = store.latest()
            stamped = 0
            for runtime in self._runtimes:
                stamped += runtime.ft_emit_seq
            # Stamped-but-never-admitted results: a modeled lower bound
            # on losses; 0 after a successful exactly-once recovery.
            lost = stamped - len(self._ft_seen)
            if lost < 0:
                lost = 0
            extras["ft"] = {
                "delivery": self.config.delivery,
                "checkpoint_interval": self.config.checkpoint_interval,
                "checkpoints_completed": len(store.completed),
                "checkpoints_skipped": store.skipped,
                "checkpoint_duration_mean_s": store.duration_mean_s(),
                "state_items": latest.state_items if latest else 0,
                "state_bytes": latest.state_bytes if latest else 0.0,
                "recoveries": self._ft_recoveries,
                "recovery_time_s": self._ft_recovery_time,
                "replayed_events": self._ft_replayed,
                "duplicates_dropped": self._ft_dupes_dropped,
                "duplicate_results": self._ft_dup_results,
                "lost_results": lost,
                "log": [
                    {
                        "ckpt_id": record.ckpt_id,
                        "triggered_at": record.triggered_at,
                        "duration_s": record.duration_s,
                        "state_items": record.state_items,
                        "state_bytes": record.state_bytes,
                    }
                    for record in store.completed
                ],
            }
        return RunMetrics(
            latency=latency,
            throughput=throughput,
            results=total_results,
            source_events=source_events,
            sim_duration=span,
            operator_utilization={
                op_id: float(sum(vals) / len(vals))
                for op_id, vals in utilization.items()
            },
            operator_queue_peak=queue_peaks,
            operator_avg_wait=avg_wait,
            extras=extras,
        )
