"""The columnar micro-batch executor (``SimulationConfig.batch_size``).

The scalar engine (:mod:`repro.sps.engine`) interprets one heap event per
tuple per hop; its Python dispatch cost bounds throughput far below what
the simulated workloads need for large sweeps.  Batch mode replaces the
event loop with a **stage-at-a-time columnar executor**: operators are
visited once in topological order and consume their whole input stream as
fixed-size :class:`~repro.sps.columnar.TupleBatch` micro-batches, with
vectorized kernels for filters, column-wise maps, columnar flat-map
expansion and the slice-based window aggregations, and an automatic
per-tuple scalar fallback for everything else (UDOs, joins, count
windows, ragged streams).

Batch mode simulates with **two clocks**:

- The *data plane* runs on ideal time: every tuple carries the timestamp
  ``now`` at which the unloaded pipeline would process it (its source
  arrival time, propagated downstream) plus a global emission sequence
  ``seq``.  All window assignment, watermarking, firing and merge
  ordering use ``(now, seq)`` only — so the simulated *results* (sink
  values, window fires, counters) are invariant to the batch size, and
  the property suite pins them against the scalar engine.
- The *timing plane* runs per micro-batch: each subtask is a single
  server obeying the Lindley recursion ``start_b = max(ready_b,
  free_{b-1})``, ``done_b = start_b + base_service * work_b`` (one
  lognormal noise factor per batch, from the dedicated
  ``("engine", "batch-noise")`` stream), plus the scalar path's exact
  serde/coordination overhead per routed output and the affine network
  delay charged once per transferred sub-batch (``latency +
  total_bytes / bandwidth`` — batches travel as units).  End-to-end
  latency is ``sink-batch done − origin`` per result.

Known deviations from the scalar event loop, all deliberate and pinned
in ``DESIGN.md``: service noise is drawn per batch (so the arrival RNG
stream no longer interleaves with noise draws), timer ticks stop at the
stream drain time (later fires surface through the end-of-stream flush),
queue-depth/wait metrics are batch-granular estimates, throughput is
measured over the full simulated span (batch-granular sink arrivals can
collapse the scalar first-arrival-to-end window), and backpressure and
stall injection are not modelled (rejected at configuration time).
With ``batch_size=1``, zero cost noise and forward exchanges the two
engines produce bit-identical sink samples (``tests/test_batch_engine``).
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.common.errors import ConfigurationError, SimulationError
from repro.sps.columnar import TupleBatch, require_numpy
from repro.sps.operators.aggregate import WindowAggregateLogic
from repro.sps.operators.event_aggregate import EventTimeWindowAggregateLogic
from repro.sps.operators.filter_op import FilterLogic
from repro.sps.operators.map_op import FlatMapLogic, MapLogic
from repro.sps.operators.sink import SinkLogic
from repro.sps.partitioning import (
    HashPartitioner,
    RebalancePartitioner,
    _stable_hash,
)

try:  # pragma: no cover - numpy is present in every supported env
    import numpy as np
except ImportError:  # pragma: no cover - guarded by require_numpy()
    np = None  # type: ignore[assignment]

__all__ = ["ColumnarExecutor"]

# Arrival-process kinds; values mirror repro.sps.engine's resolution.
_ARR_POISSON, _ARR_CONSTANT, _ARR_BURSTY, _ARR_PROFILE = range(4)

_NUMERIC = (int, float, bool)


class ColumnarExecutor:
    """Runs one built :class:`~repro.sps.engine.StreamEngine` in batch mode.

    The engine constructs runtimes, routing tables and RNG streams
    exactly as for a scalar run; the executor replaces only the event
    loop, then fills the same runtime counters and delegates to the
    engine's ``_collect_metrics`` so :class:`RunMetrics` comes from one
    code path.
    """

    def __init__(self, engine) -> None:
        require_numpy()
        config = engine.config
        if config.stalls:
            raise ConfigurationError(
                "batch mode does not support stall injection; "
                "unset batch_size to use the scalar engine"
            )
        if config.backpressure_queue_limit is not None:
            raise ConfigurationError(
                "batch mode does not support backpressure_queue_limit; "
                "unset batch_size to use the scalar engine"
            )
        self.engine = engine
        self.batch_size = int(config.batch_size)

    # ------------------------------------------------------------------ run

    def run(self):
        """Execute the whole plan stage-at-a-time in topological order.

        Drives every source to exhaustion, pushes micro-batches through
        each subtask's kernel (or scalar fallback), fires the
        end-of-stream window flush, and leaves results/metrics state on
        the wrapped :class:`StreamEngine` exactly where the scalar event
        loop would.
        """
        eng = self.engine
        eng._events_processed = 0
        eng._now = 0.0
        eng._flush_time = None
        eng._last_source_time = 0.0
        eng._throttled_arrivals = 0
        self._obs = eng._obs
        self._events = 0
        self._final_now = 0.0
        self._next_seq = 0
        self._max_events = eng.config.max_events
        # Dedicated noise stream: the scalar loop draws service noise
        # from the arrivals stream between gap draws; batch mode draws
        # once per batch from its own stream so the *arrival sequence*
        # stays exactly reproducible at any batch size.
        self._rng_noise = eng._rngs.fresh("engine", "batch-noise")
        #: per-gid, per-port delivery buffers: list of (batch, avail)
        self._inbox: list[dict[int, list]] = [{} for _ in eng._runtimes]
        if self._obs is not None:
            self._obs.on_run_start(eng)

        arrivals = self._replay_arrivals()
        self._drain = (
            eng._last_source_time if self._n_arrivals > 0 else None
        )

        runtimes = eng._runtimes
        for op_id in eng.logical.topological_order():
            gids = eng.physical.op_subtasks.get(op_id)
            if not gids:
                continue  # fused chain tails run inside their head
            for gid in gids:
                runtime = runtimes[gid]
                if runtime.is_source:
                    self._run_source(runtime, arrivals.get(gid))
                else:
                    self._run_instance(runtime)
                if self._events > self._max_events:
                    eng._events_processed = self._events
                    raise SimulationError(
                        f"event budget exceeded ({self._max_events}); "
                        "the configuration likely diverged"
                    )

        if self._drain is not None:
            eng._flush_time = self._drain
            if self._drain > self._final_now:
                self._final_now = self._drain
        eng._now = self._final_now
        eng._events_processed = self._events
        if self._obs is not None:
            self._obs.on_run_end(eng._now)
        return eng._collect_metrics()

    # ------------------------------------------------------------- arrivals

    def _replay_arrivals(self):
        """Every source's ideal arrival times, without generating tuples.

        Reproduces the scalar loop's arrival machinery exactly: the same
        ``("engine", "arrivals")`` stream, the same per-source budget and
        gap distributions, and the same global draw order (a min-heap
        over the next arrival per source, ties broken by push order —
        the scalar heap's sequence numbers induce the same order).

        Only *gap* draws share a stream across sources; each source's
        tuple values come from its private per-subtask RNG, so tuple
        generation is deferred to :meth:`_run_source` (per micro-batch)
        where it can be vectorized.
        """
        eng = self.engine
        rng = eng._rngs.fresh("engine", "arrivals")
        exponential = rng.exponential
        max_time = eng.config.max_sim_time
        runtimes = eng._runtimes
        n_rt = len(runtimes)
        # Flat per-gid state: the loop below runs once per arrival, so
        # attribute walks through the runtime dataclass add up.
        kinds = [0] * n_rt
        means = [0.0] * n_rt
        fasts = [0.0] * n_rt
        slows = [0.0] * n_rt
        profiles = [None] * n_rt
        divisors = [1.0] * n_rt
        budgets = [0] * n_rt
        counts = [0] * n_rt
        heap: list = []
        counter = 0
        per: dict[int, list] = {}
        for runtime in runtimes:
            if not runtime.is_source:
                continue
            gid = runtime.gid
            kind = runtime.arrival_kind
            kinds[gid] = kind
            means[gid] = runtime.mean_gap
            fasts[gid] = runtime.burst_fast_gap
            slows[gid] = runtime.burst_slow_gap
            profiles[gid] = runtime.rate_profile
            divisors[gid] = runtime.profile_divisor
            budgets[gid] = runtime.arrival_budget
            per[gid] = []
            if kind == _ARR_PROFILE and runtime.rate_profile is None:
                raise ConfigurationError(
                    f"{runtime.op_id}: arrival 'profile' needs a "
                    "'rate_profile' callable in the source metadata"
                )
            # First arrival, from now = 0 (budget is always >= 1).
            counter = self._first_gap(
                heap, counter, gid, kind, runtime, exponential, max_time
            )
        last = 0.0
        while heap:
            at, _, gid = heappop(heap)
            per[gid].append(at)
            count = counts[gid] + 1
            counts[gid] = count
            if at > last:
                last = at
            if count >= budgets[gid]:
                continue
            kind = kinds[gid]
            if kind == _ARR_POISSON:
                gap = exponential(means[gid])
            elif kind == _ARR_CONSTANT:
                gap = means[gid]
            elif kind == _ARR_BURSTY:
                gap = exponential(
                    fasts[gid]
                    if (at * 10.0) % 1.0 < 0.25
                    else slows[gid]
                )
            else:
                instant = max(
                    float(profiles[gid](at)) / divisors[gid], 1e-9
                )
                gap = exponential(1.0 / instant)
            at += gap
            if at <= max_time:
                counter += 1
                heappush(heap, (at, counter, gid))
        eng._last_source_time = last
        self._n_arrivals = sum(counts)
        return per

    @staticmethod
    def _first_gap(heap, counter, gid, kind, runtime, exponential, max_time):
        if kind == _ARR_POISSON:
            gap = exponential(runtime.mean_gap)
        elif kind == _ARR_CONSTANT:
            gap = runtime.mean_gap
        elif kind == _ARR_BURSTY:
            gap = exponential(runtime.burst_fast_gap)  # phase(0) < 0.25
        else:
            instant = max(
                float(runtime.rate_profile(0.0)) / runtime.profile_divisor,
                1e-9,
            )
            gap = exponential(1.0 / instant)
        if gap <= max_time:
            counter += 1
            heappush(heap, (gap, counter, gid))
        return counter

    # ------------------------------------------------------------- plumbing

    def _new_seqs(self, n: int):
        start = self._next_seq
        self._next_seq += n
        return np.arange(start, start + n, dtype=np.int64)

    def _tick_array(self, interval):
        """This instance's ideal timer schedule (scalar tick times)."""
        if not interval:
            return None
        drain = self._drain
        if drain is None:
            horizon = self.engine.config.max_sim_time + 10.0 * interval
        else:
            horizon = drain
        out = []
        t = interval
        # Repeated addition, matching the scalar loop's now + interval
        # chain bit-for-bit.
        while t <= horizon:
            out.append(t)
            t += interval
        return np.asarray(out, dtype=np.float64)

    def _merge(self, entries):
        """Merge deliveries into one (now, seq)-ordered batch.

        Returns ``(batch, avail, ports)`` with per-row timing-plane
        availability and input port.
        """
        batches = [entry[0] for entry in entries]
        avail = np.concatenate(
            [
                np.full(len(batch), when, dtype=np.float64)
                for batch, when, _ in entries
            ]
        )
        ports = np.concatenate(
            [
                np.full(len(batch), port, dtype=np.int64)
                for batch, _, port in entries
            ]
        )
        merged = TupleBatch.concat(batches)
        if len(entries) > 1:
            order = np.lexsort((merged.seq, merged.now))
            merged = merged.take(order)
            avail = avail[order]
            ports = ports[order]
        return merged, avail, ports

    def _serve(self, runtime, work_sum: float, ready: float, free: float):
        """Lindley step: when does this batch start and finish service?"""
        start = ready if ready > free else free
        service = runtime.base_service * work_sum
        sigma = runtime.noise_sigma
        if sigma > 0:
            service *= self._rng_noise.lognormal(runtime.noise_mu, sigma)
        done = start + service
        runtime.busy_time += service
        return start, service, done

    def _bookkeep(
        self, runtime, start, service, chunk_avail, sorted_avail, served_before
    ) -> None:
        n = len(chunk_avail)
        runtime.served += n
        runtime.wait_time += float(np.sum(start - chunk_avail))
        depth = (
            int(np.searchsorted(sorted_avail, start, side="right"))
            - served_before
        )
        if depth < 1:
            depth = 1
        if depth > runtime.queue_peak:
            runtime.queue_peak = depth
        obs = self._obs
        if obs is not None:
            obs.tuples_in[runtime.gid] += n
            wait = float(np.mean(start - chunk_avail)) if n else 0.0
            obs.on_serve(runtime, start, service, wait)

    def _track(self, time: float) -> None:
        if time > self._final_now:
            self._final_now = time

    # -------------------------------------------------------------- routing

    def _route_batch(self, runtime, batch, emit: float) -> float:
        """Deliver one emission downstream; returns sender serde overhead.

        Mirrors the scalar ``_route`` accounting: serde/coordination
        overhead accumulates per channel group in plan order and offsets
        every delivery of that group and later ones; network delay is
        affine in the *transferred* payload — here the whole sub-batch,
        since batch mode ships batches, not tuples.
        """
        n = len(batch)
        if n == 0:
            return 0.0
        table = runtime.route_table
        if not table:
            return 0.0
        obs = self._obs
        inbox = self._inbox
        eng = self.engine
        runtimes = eng._runtimes
        offset = 0.0
        for (
            select,
            fixed,
            rekey,
            consumers,
            num_channels,
            latencies,
            bandwidths,
            port,
            shuffle_cost,
        ) in table:
            out = batch
            if rekey is not None:
                out = batch.with_key(
                    self._key_column(batch, select.__self__.key_field)
                )
            if fixed is not None:
                if shuffle_cost:
                    offset += shuffle_cost * len(fixed) * n
                    if obs is not None:
                        obs.shuffle_bytes[runtime.gid] += (
                            float(out.size_bytes.sum()) * len(fixed)
                        )
                for idx in fixed:
                    self._deliver(
                        runtime,
                        out,
                        consumers[idx],
                        idx,
                        port,
                        emit,
                        offset,
                        latencies,
                        bandwidths,
                    )
                continue
            partitioner = select.__self__
            idx_arr = self._select_indices(partitioner, out, num_channels)
            if idx_arr is not None:
                if shuffle_cost:
                    offset += shuffle_cost * n
                    if obs is not None:
                        obs.shuffle_bytes[runtime.gid] += float(
                            out.size_bytes.sum()
                        )
                order = np.argsort(idx_arr, kind="stable")
                sorted_idx = idx_arr[order]
                bounds = np.flatnonzero(sorted_idx[1:] != sorted_idx[:-1])
                starts = np.concatenate(([0], bounds + 1)).tolist()
                stops = np.concatenate((bounds + 1, [n])).tolist()
                for a, b in zip(starts, stops):
                    rows = order[a:b]
                    self._deliver(
                        runtime,
                        out.take(rows),
                        consumers[int(sorted_idx[a])],
                        int(sorted_idx[a]),
                        port,
                        emit,
                        offset,
                        latencies,
                        bandwidths,
                    )
                continue
            # Generic path: per-row select for custom partitioners (or
            # hash exchanges whose keys need the scalar error message).
            tuples = out.to_tuples()
            buckets: dict[int, list[int]] = {}
            fanout = 0
            sizes = out.size_bytes
            nbytes = 0.0
            for i, tup in enumerate(tuples):
                indices = select(tup, num_channels)
                fanout += len(indices)
                nbytes += float(sizes[i]) * len(indices)
                for idx in indices:
                    buckets.setdefault(idx, []).append(i)
            if shuffle_cost:
                offset += shuffle_cost * fanout
                if obs is not None:
                    obs.shuffle_bytes[runtime.gid] += nbytes
            for idx in sorted(buckets):
                rows = np.asarray(buckets[idx], dtype=np.int64)
                self._deliver(
                    runtime,
                    out.take(rows),
                    consumers[idx],
                    idx,
                    port,
                    emit,
                    offset,
                    latencies,
                    bandwidths,
                )
        return offset

    def _deliver(
        self,
        runtime,
        sub,
        consumer_gid: int,
        idx: int,
        port: int,
        emit: float,
        offset: float,
        latencies,
        bandwidths,
    ) -> None:
        total_bytes = float(sub.size_bytes.sum())
        if latencies is not None:
            delay = latencies[idx] + total_bytes / bandwidths[idx]
        else:
            engine = self.engine
            delay = engine.cluster.network.transfer_delay(
                runtime.node_id,
                engine._runtimes[consumer_gid].node_id,
                total_bytes,
            )
        avail = emit + delay + offset
        self._track(avail)
        self._inbox[consumer_gid].setdefault(port, []).append((sub, avail))

    @staticmethod
    def _key_column(batch, key_field: int):
        if batch.columns is not None:
            return batch.columns[key_field]
        out = np.empty(len(batch), dtype=object)
        out[:] = [row[key_field] for row in batch.rows]
        return out

    def _select_indices(self, partitioner, batch, num_channels: int):
        """Vectorized per-row consumer index, or None for the slow path."""
        n = len(batch)
        if isinstance(partitioner, RebalancePartitioner):
            if num_channels <= 0:
                return None  # select() raises the PlanError
            idx = (
                partitioner._next + np.arange(n, dtype=np.int64)
            ) % num_channels
            partitioner._next += n
            return idx
        if isinstance(partitioner, HashPartitioner):
            if num_channels <= 0:
                return None
            if partitioner.key_field is not None:
                keys = self._key_column(batch, partitioner.key_field)
            else:
                keys = batch.key
                if keys is None:
                    return None  # select() raises the "needs a key" error
            kind = keys.dtype.kind
            if kind in "bui" or kind == "i":
                # int(key) % 2**64 is exactly the uint64 wrap.
                wrapped = keys.astype(np.uint64)
                return (wrapped % np.uint64(num_channels)).astype(np.int64)
            if kind in "SU":
                # Fixed-width strings cannot hold None and group at C
                # speed: hash each distinct key once, map back through
                # the inverse index.
                uniq, inverse = np.unique(keys, return_inverse=True)
                cache = partitioner._hash_cache
                channels = np.empty(len(uniq), dtype=np.int64)
                for i, key in enumerate(uniq.tolist()):
                    try:
                        value = cache[key]
                    except KeyError:
                        value = cache[key] = _stable_hash(key)
                    channels[i] = value % num_channels
                return channels[inverse]
            items = keys.tolist()
            if any(item is None for item in items):
                return None
            cache = partitioner._hash_cache
            out = np.empty(n, dtype=np.int64)
            for i, key in enumerate(items):
                try:
                    value = cache[key]
                except KeyError:
                    value = cache[key] = _stable_hash(key)
                except TypeError:
                    value = _stable_hash(key)
                out[i] = value % num_channels
            return out
        return None

    # ------------------------------------------------------------ emissions

    def _emit_pass(self, runtime, batch, emit: float) -> float:
        """Route a pass-through emission (counts as served output rows)."""
        n = len(batch)
        batch.seq = self._new_seqs(n)
        if self._obs is not None:
            self._obs.tuples_out[runtime.gid] += n
        self._track(emit)
        return self._route_batch(runtime, batch, emit)

    def _emit_fires(self, runtime, fires, tick_base: float, tuple_emit):
        """Route window-fire triples ``(fire_time, tick_triggered, tuple)``.

        Tick-triggered outputs become available at ``max(fire_time,
        tick_base)`` (the previous batch's completion — the server was
        free when the timer fired); tuple-triggered ones at the firing
        batch's own completion time.  Consecutive outputs sharing an
        availability are routed as one sub-batch.
        """
        obs = self._obs
        overhead = 0.0
        total = len(fires)
        i = 0
        while i < total:
            is_tick = fires[i][1]
            if is_tick:
                emit = fires[i][0]
                if emit < tick_base:
                    emit = tick_base
            else:
                emit = tuple_emit
            j = i
            while j < total and fires[j][1] == is_tick:
                if is_tick:
                    e = fires[j][0]
                    if e < tick_base:
                        e = tick_base
                    if e != emit:
                        break
                j += 1
            group = fires[i:j]
            nows = np.asarray([f[0] for f in group], dtype=np.float64)
            batch = TupleBatch.from_tuples(
                [f[2] for f in group], nows, np.zeros(len(group))
            )
            batch.seq = self._new_seqs(len(group))
            if obs is not None:
                if is_tick:
                    obs.on_window_fire(runtime, float(nows[0]), len(group))
                else:
                    obs.tuples_out[runtime.gid] += len(group)
            self._track(emit)
            overhead += self._route_batch(runtime, batch, emit)
            i = j
        return overhead

    def _emit_flush(self, runtime, outputs, free: float) -> None:
        """Route end-of-stream flush outputs at the drain time."""
        if not outputs:
            return
        drain = self._drain
        emit = drain if drain > free else free
        nows = np.full(len(outputs), drain, dtype=np.float64)
        batch = TupleBatch.from_tuples(outputs, nows, np.zeros(len(outputs)))
        batch.seq = self._new_seqs(len(outputs))
        if self._obs is not None:
            self._obs.on_flush(runtime, drain, len(outputs))
        self._track(emit)
        self._route_batch(runtime, batch, emit)

    # ------------------------------------------------------------ operators

    def _run_source(self, runtime, times) -> None:
        if not times:
            return
        arrival = np.asarray(times, dtype=np.float64)
        n = len(arrival)
        self._events += 2 * n  # arrival + service completion per tuple
        runtime.emitted += n  # feeds RunMetrics.source_events
        logic = runtime.logic
        vector = logic.has_vector_generator
        generate = logic.generate
        size = self.batch_size
        work_per = runtime.static_work
        free = 0.0
        for a in range(0, n, size):
            b = min(a + size, n)
            t_arr = arrival[a:b]
            rows = b - a
            if vector:
                columns, sizes = logic.generate_columns(t_arr)
                columns = tuple(np.asarray(col) for col in columns)
                if np.ndim(sizes) == 0:
                    sizes = np.full(rows, float(sizes))
                else:
                    sizes = np.asarray(sizes, dtype=np.float64)
                batch = TupleBatch(
                    columns, None, t_arr, t_arr, None, sizes, t_arr, None
                )
            else:
                tuples = [generate(t) for t in t_arr.tolist()]
                batch = TupleBatch.from_tuples(tuples, t_arr, t_arr)
            start, service, done = self._serve(
                runtime, work_per * rows, float(t_arr[-1]), free
            )
            self._bookkeep(runtime, start, service, t_arr, arrival, a)
            self._events += 1
            self._track(done)
            free = done + self._emit_pass(runtime, batch, done)

    def _run_sink(self, runtime, entries) -> None:
        if not entries:
            return
        merged, avail, _ = self._merge(entries)
        logic = runtime.logic
        n = len(merged)
        self._events += 2 * n  # delivery + completion per row
        size = self.batch_size
        work_per = runtime.static_work
        sorted_avail = np.sort(avail)
        free = 0.0
        for a in range(0, n, size):
            b = min(a + size, n)
            chunk = merged.slice(a, b)
            chunk_avail = avail[a:b]
            rows = b - a
            work = (
                work_per * rows
                if work_per is not None
                else sum(logic.work_units(t) for t in chunk.to_tuples())
            )
            start, service, done = self._serve(
                runtime, work, float(np.max(chunk_avail)), free
            )
            self._bookkeep(runtime, start, service, chunk_avail, sorted_avail, a)
            self._events += 1
            logic.absorb_batch(
                chunk,
                np.full(rows, done, dtype=np.float64),
                done - chunk.origin_time,
            )
            self._track(done)
            free = done

    def _run_instance(self, runtime) -> None:
        ports_map = self._inbox[runtime.gid]
        entries = []
        for port in sorted(ports_map):
            entries.extend(
                (batch, when, port) for batch, when in ports_map[port]
            )
        ports_map.clear()
        logic = runtime.logic
        if isinstance(logic, SinkLogic):
            self._run_sink(runtime, entries)
            return
        merged = avail = None
        if entries:
            merged, avail, _ports = self._merge(entries)
        kernel = self._kernel_mode(runtime, logic, merged)
        if kernel is None:
            self._run_fallback(runtime, entries)
        elif kernel == "window":
            self._run_window_kernel(runtime, logic, merged, avail)
        elif kernel == "flatmap":
            self._run_flatmap_kernel(runtime, logic, merged, avail)
        else:
            self._run_stateless_kernel(runtime, logic, merged, avail, kernel)

    def _kernel_mode(self, runtime, logic, merged):
        """Which vectorized path fits this instance, if any.

        Stateful kernels are decided once per instance over the *whole*
        input (never per batch): a window operator must fold every tuple
        through the same representation or its accumulators would mix.
        """
        if isinstance(logic, FlatMapLogic):
            # Fan-out work is dynamic but mirrored exactly by
            # expand_batch, so the vectorized form needs no static_work.
            if (
                logic.has_vector_fn
                and merged is not None
                and merged.columns is not None
            ):
                return "flatmap"
            return None
        if runtime.static_work is None:
            return None  # dynamic work_units implies custom logic
        if isinstance(logic, (WindowAggregateLogic, EventTimeWindowAggregateLogic)):
            if not logic.supports_batch():
                return None  # count windows: scalar ring-buffer state
            if merged is None:
                return "window"  # tick/flush only
            if merged.columns is None:
                return None
            value_field = logic.value_field
            if value_field >= len(merged.columns):
                return None  # fallback raises the scalar IndexError
            if merged.columns[value_field].dtype.kind not in "bif":
                return None
            key_field = logic.key_field
            if key_field is not None:
                if key_field >= len(merged.columns):
                    return None
                keys = merged.columns[key_field]
            else:
                keys = merged.key
                if keys is None:
                    return "window"  # global aggregation
            return "window" if _orderable(keys) else None
        if merged is None or merged.columns is None:
            return None
        if isinstance(logic, FilterLogic):
            if logic.predicate.field_index >= len(merged.columns):
                return None  # fallback raises the scalar IndexError
            return "filter"
        if isinstance(logic, MapLogic) and logic.has_vector_fn:
            return "map"
        return None

    def _run_stateless_kernel(
        self, runtime, logic, merged, avail, kind: str
    ) -> None:
        n = len(merged)
        self._events += 2 * n  # delivery + completion per row
        size = self.batch_size
        work_per = runtime.static_work
        sorted_avail = np.sort(avail)
        free = 0.0
        for a in range(0, n, size):
            b = min(a + size, n)
            chunk = merged.slice(a, b)
            chunk_avail = avail[a:b]
            start, service, done = self._serve(
                runtime, work_per * (b - a), float(np.max(chunk_avail)), free
            )
            self._bookkeep(runtime, start, service, chunk_avail, sorted_avail, a)
            self._events += 1
            out = logic.process_batch(chunk, done)
            overhead = 0.0
            if out is not None and len(out):
                overhead = self._emit_pass(runtime, out, done)
            self._track(done)
            free = done + overhead

    def _run_flatmap_kernel(self, runtime, logic, merged, avail) -> None:
        """Columnar 1-to-N expansion (``FlatMapLogic.expand_batch``)."""
        n = len(merged)
        self._events += 2 * n  # delivery + completion per row
        size = self.batch_size
        sorted_avail = np.sort(avail)
        free = 0.0
        for a in range(0, n, size):
            b = min(a + size, n)
            chunk = merged.slice(a, b)
            chunk_avail = avail[a:b]
            out, work = logic.expand_batch(chunk)
            start, service, done = self._serve(
                runtime, work, float(np.max(chunk_avail)), free
            )
            self._bookkeep(runtime, start, service, chunk_avail, sorted_avail, a)
            self._events += 1
            overhead = 0.0
            if len(out):
                overhead = self._emit_pass(runtime, out, done)
            self._track(done)
            free = done + overhead

    def _run_window_kernel(self, runtime, logic, merged, avail) -> None:
        event_time = isinstance(logic, EventTimeWindowAggregateLogic)
        ticks = self._tick_array(getattr(logic, "timer_interval", None))
        if ticks is None:
            ticks = np.empty(0, dtype=np.float64)
        self._events += len(ticks)
        key_field = logic.key_field
        value_field = logic.value_field
        size = self.batch_size
        work_per = runtime.static_work
        free = 0.0
        prev_done = 0.0
        cursor = 0  # event-time kernels consume ticks per batch span
        if merged is not None:
            n = len(merged)
            self._events += 2 * n  # delivery + completion per row
            sorted_avail = np.sort(avail)
            for a in range(0, n, size):
                b = min(a + size, n)
                chunk = merged.slice(a, b)
                chunk_avail = avail[a:b]
                start, service, done = self._serve(
                    runtime,
                    work_per * (b - a),
                    float(np.max(chunk_avail)),
                    free,
                )
                self._bookkeep(
                    runtime, start, service, chunk_avail, sorted_avail, a
                )
                self._events += 1
                if key_field is not None:
                    keys = chunk.columns[key_field]
                else:
                    keys = chunk.key  # None -> global aggregation
                values = chunk.columns[value_field].astype(
                    np.float64, copy=False
                )
                if event_time:
                    upto = int(
                        np.searchsorted(
                            ticks, float(chunk.now[-1]), side="right"
                        )
                    )
                    span_ticks = ticks[cursor:upto]
                    cursor = upto
                    fires = logic.process_event_batch(
                        keys,
                        values,
                        chunk.event_time,
                        chunk.origin_time,
                        chunk.now,
                        span_ticks,
                    )
                else:
                    fires = logic.process_time_batch(
                        keys, values, chunk.now, chunk.origin_time, ticks
                    )
                overhead = 0.0
                if fires:
                    overhead = self._emit_fires(
                        runtime, fires, prev_done, done
                    )
                self._track(done)
                prev_done = done
                free = done + overhead
        # Trailing ticks past the last batch still fire ready windows.
        if event_time:
            rest = ticks[cursor:]
            empty = np.empty(0, dtype=np.float64)
            fires = (
                logic.process_event_batch(
                    None, empty, empty, empty, empty, rest
                )
                if len(rest)
                else []
            )
        else:
            fires = logic.finalize_time_batch(ticks)
        if fires:
            free += self._emit_fires(runtime, fires, prev_done, prev_done)
        if self._drain is not None:
            self._emit_flush(runtime, logic.flush(self._drain), free)

    def _run_fallback(self, runtime, entries) -> None:
        """Per-tuple scalar fallback with interleaved timer ticks.

        Drives ``logic.process``/``on_time``/``flush`` on the ideal
        clock in exactly the scalar order (ticks before the first tuple
        at or past them), while the timing plane stays batch-granular.
        """
        logic = runtime.logic
        rows: list = []
        for batch, when, port in entries:
            tuples = batch.to_tuples()
            nows = batch.now.tolist()
            seqs = batch.seq.tolist()
            rows.extend(
                (nows[i], seqs[i], port, when, tuples[i])
                for i in range(len(tuples))
            )
        rows.sort(key=_row_order)
        ticks = self._tick_array(getattr(logic, "timer_interval", None))
        tick_list = ticks.tolist() if ticks is not None else []
        n_ticks = len(tick_list)
        self._events += n_ticks + 2 * len(rows)
        cursor = 0
        size = self.batch_size
        work_per = runtime.static_work
        work_units = logic.work_units
        process = logic.process
        on_time = logic.on_time
        avail_sorted = (
            np.sort(np.asarray([row[3] for row in rows], dtype=np.float64))
            if rows
            else None
        )
        free = 0.0
        prev_done = 0.0
        n = len(rows)
        for a in range(0, n, size):
            b = min(a + size, n)
            chunk = rows[a:b]
            work_sum = 0.0
            emissions: list = []  # (data_now, tick_triggered, outputs)
            max_avail = 0.0
            for now, _seq, port, when, tup in chunk:
                while cursor < n_ticks and tick_list[cursor] <= now:
                    t = tick_list[cursor]
                    cursor += 1
                    fired = on_time(t)
                    if fired:
                        emissions.append((t, True, fired))
                work_sum += (
                    work_per if work_per is not None else work_units(tup)
                )
                outputs = process(tup, now, port)
                if outputs:
                    emissions.append((now, False, outputs))
                if when > max_avail:
                    max_avail = when
            start, service, done = self._serve(
                runtime, work_sum, max_avail, free
            )
            chunk_avail = np.asarray(
                [row[3] for row in chunk], dtype=np.float64
            )
            self._bookkeep(
                runtime, start, service, chunk_avail, avail_sorted, a
            )
            self._events += 1
            overhead = 0.0
            # Coalesce consecutive tuple-triggered outputs (they all
            # become available at done_b) into one routed batch; a tick
            # group flushes the run so relative order — and therefore
            # round-robin routing state — is preserved.
            pend_out: list = []
            pend_now: list = []
            for data_now, tick_triggered, outputs in emissions:
                if tick_triggered:
                    if pend_out:
                        overhead += self._emit_fallback_rows(
                            runtime, pend_out, pend_now, done
                        )
                        pend_out = []
                        pend_now = []
                    overhead += self._emit_fallback_fire(
                        runtime, data_now, outputs, prev_done
                    )
                else:
                    pend_out.extend(outputs)
                    pend_now.extend([data_now] * len(outputs))
            if pend_out:
                overhead += self._emit_fallback_rows(
                    runtime, pend_out, pend_now, done
                )
            self._track(done)
            prev_done = done
            free = done + overhead
        while cursor < n_ticks:
            t = tick_list[cursor]
            cursor += 1
            fired = on_time(t)
            if fired:
                free += self._emit_fallback_fire(
                    runtime, t, fired, prev_done
                )
        if self._drain is not None:
            self._emit_flush(runtime, logic.flush(self._drain), free)

    def _emit_fallback_fire(
        self, runtime, fire_time, outputs, tick_base
    ) -> float:
        emit = fire_time if fire_time > tick_base else tick_base
        nows = np.full(len(outputs), fire_time, dtype=np.float64)
        batch = TupleBatch.from_tuples(outputs, nows, np.zeros(len(outputs)))
        batch.seq = self._new_seqs(len(outputs))
        if self._obs is not None:
            self._obs.on_window_fire(runtime, fire_time, len(outputs))
        self._track(emit)
        return self._route_batch(runtime, batch, emit)

    def _emit_fallback_rows(self, runtime, outputs, nows, done) -> float:
        batch = TupleBatch.from_tuples(
            outputs, np.asarray(nows, dtype=np.float64), np.zeros(len(outputs))
        )
        return self._emit_pass(runtime, batch, done)


def _row_order(row):
    return (row[0], row[1])


def _orderable(keys) -> bool:
    """Whether a key column sorts deterministically under np.unique."""
    kind = keys.dtype.kind
    if kind in "biufSU":
        return True
    if kind != "O":
        return False
    items = keys.tolist()
    if all(isinstance(item, str) for item in items):
        return True
    return all(isinstance(item, _NUMERIC) for item in items)
