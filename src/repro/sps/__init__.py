"""The System Under Test substrate: a simulated parallel stream processor.

This package replaces Apache Flink in the reproduction. It provides:

- logical dataflow plans (:mod:`repro.sps.logical`) with parallelism degrees,
- physical expansion into parallel subtasks (:mod:`repro.sps.physical`),
- operators that really process tuples — filters, maps, flatMaps, windowed
  aggregations, windowed joins and user-defined operators
  (:mod:`repro.sps.operators`),
- data partitioning strategies: forward, rebalance, hash, broadcast
  (:mod:`repro.sps.partitioning`),
- slot-based placement on a simulated cluster (:mod:`repro.sps.placement`),
- a discrete-event engine in which end-to-end latency emerges from queueing,
  service times, network transfers and coordination overhead
  (:mod:`repro.sps.engine`), and
- a fast analytic queueing estimator used for large ML corpora
  (:mod:`repro.sps.analytic`).
"""

from repro.sps.analytic import AnalyticEstimator
from repro.sps.engine import SimulationConfig, StallInjection, StreamEngine
from repro.sps.logical import LogicalOperator, LogicalPlan, OperatorKind
from repro.sps.metrics import LatencyStats, RunMetrics
from repro.sps.partitioning import (
    BroadcastPartitioner,
    ForwardPartitioner,
    HashPartitioner,
    Partitioner,
    RebalancePartitioner,
)
from repro.sps.physical import PhysicalPlan
from repro.sps.placement import (
    PackedPlacement,
    PlacementStrategy,
    RoundRobinPlacement,
    SpeedAwarePlacement,
)
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import (
    AggregateFunction,
    SlidingCountWindows,
    SlidingTimeWindows,
    TumblingCountWindows,
    TumblingTimeWindows,
    WindowAssigner,
)

__all__ = [
    "DataType",
    "Field",
    "Schema",
    "StreamTuple",
    "Predicate",
    "FilterFunction",
    "WindowAssigner",
    "TumblingTimeWindows",
    "SlidingTimeWindows",
    "TumblingCountWindows",
    "SlidingCountWindows",
    "AggregateFunction",
    "Partitioner",
    "ForwardPartitioner",
    "RebalancePartitioner",
    "HashPartitioner",
    "BroadcastPartitioner",
    "OperatorKind",
    "LogicalOperator",
    "LogicalPlan",
    "PhysicalPlan",
    "PlacementStrategy",
    "RoundRobinPlacement",
    "PackedPlacement",
    "SpeedAwarePlacement",
    "StreamEngine",
    "SimulationConfig",
    "StallInjection",
    "AnalyticEstimator",
    "RunMetrics",
    "LatencyStats",
]
