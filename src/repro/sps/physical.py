"""Physical plan: expansion of a logical PQP into parallel subtasks.

Each logical operator with parallelism *p* becomes *p* subtasks. Each logical
edge becomes, per producer subtask, a *channel group*: a bound partitioner
instance plus the list of consumer subtasks. Forward exchanges bind the
producer's index; all other partitioners are cloned so per-producer state
(round-robin counters) is independent, as in Flink's channel selectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import PlanError
from repro.sps.logical import LogicalEdge, LogicalPlan
from repro.sps.partitioning import ForwardPartitioner, Partitioner

__all__ = ["Subtask", "ChannelGroup", "PhysicalPlan"]


@dataclass(frozen=True)
class Subtask:
    """One parallel instance of a logical operator."""

    gid: int
    op_id: str
    index: int
    parallelism: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.op_id}#{self.index}/{self.parallelism}"


@dataclass
class ChannelGroup:
    """Outgoing channels of one producer subtask along one logical edge."""

    edge: LogicalEdge
    producer_gid: int
    partitioner: Partitioner
    consumer_gids: list[int]
    port: int
    is_shuffle: bool

    @property
    def num_channels(self) -> int:
        """Fan-out of this producer along this edge."""
        return len(self.consumer_gids)


@dataclass
class PhysicalPlan:
    """The expanded plan the engine executes."""

    logical: LogicalPlan
    subtasks: list[Subtask] = field(default_factory=list)
    #: producer gid -> list of channel groups (one per out-edge)
    out_channels: dict[int, list[ChannelGroup]] = field(default_factory=dict)
    #: op_id -> gids of its subtasks, in index order
    op_subtasks: dict[str, list[int]] = field(default_factory=dict)
    #: chain head op_id -> fused member op_ids (only when chaining)
    chains: dict[str, list[str]] = field(default_factory=dict)
    #: fused tail op_id -> its chain head
    _chain_of: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_logical(
        cls, plan: LogicalPlan, chaining: bool = False
    ) -> "PhysicalPlan":
        """Validate and expand a logical plan.

        With ``chaining=True``, forward-connected stateless operators are
        fused Flink-style (see :mod:`repro.sps.chaining`): fused tails get
        no subtasks of their own, and the head executes the whole chain.
        """
        plan.validate()
        physical = cls(logical=plan)
        if chaining:
            from repro.sps.chaining import compute_chains

            physical.chains = compute_chains(plan)
            physical._chain_of = {
                member: head
                for head, members in physical.chains.items()
                for member in members[1:]
            }
        for op in plan.operators_in_order():
            if op.op_id in physical._chain_of:
                continue  # fused into its chain head
            gids = []
            for index in range(op.parallelism):
                subtask = Subtask(
                    gid=len(physical.subtasks),
                    op_id=op.op_id,
                    index=index,
                    parallelism=op.parallelism,
                )
                physical.subtasks.append(subtask)
                physical.out_channels[subtask.gid] = []
                gids.append(subtask.gid)
            physical.op_subtasks[op.op_id] = gids
        for edge in plan.edges:
            if edge.dst in physical._chain_of:
                continue  # interior chain edge: a function call now
            physical._expand_edge(edge)
        return physical

    def _producer_op(self, op_id: str) -> str:
        """The op actually hosting ``op_id``'s outputs (its chain head)."""
        return self._chain_of.get(op_id, op_id)

    def _expand_edge(self, edge: LogicalEdge) -> None:
        producers = self.op_subtasks[self._producer_op(edge.src)]
        consumers = self.op_subtasks[edge.dst]
        is_shuffle = not isinstance(edge.partitioner, ForwardPartitioner)
        for producer_index, producer_gid in enumerate(producers):
            if isinstance(edge.partitioner, ForwardPartitioner):
                partitioner: Partitioner = edge.partitioner.for_producer(
                    producer_index
                )
            else:
                partitioner = edge.partitioner.clone()
            self.out_channels[producer_gid].append(
                ChannelGroup(
                    edge=edge,
                    producer_gid=producer_gid,
                    partitioner=partitioner,
                    consumer_gids=list(consumers),
                    port=edge.port,
                    is_shuffle=is_shuffle,
                )
            )

    @property
    def num_subtasks(self) -> int:
        """Total number of parallel operator instances."""
        return len(self.subtasks)

    def subtask(self, gid: int) -> Subtask:
        """Look up a subtask by global id."""
        try:
            return self.subtasks[gid]
        except IndexError:
            raise PlanError(f"unknown subtask gid {gid}") from None

    def num_channels(self) -> int:
        """Total physical channels in the plan."""
        return sum(
            group.num_channels
            for groups in self.out_channels.values()
            for group in groups
        )

    # ------------------------------------------------------------ chaining

    def effective_cost(self, op_id: str):
        """Cost profile a subtask of ``op_id`` pays (fused when chained)."""
        members = self.chains.get(op_id)
        if not members:
            return self.logical.operator(op_id).cost
        from repro.sps.chaining import fused_cost

        return fused_cost(
            [self.logical.operator(member) for member in members]
        )

    def effective_factory(self, op_id: str):
        """Logic factory for ``op_id``'s subtasks (fused when chained)."""
        members = self.chains.get(op_id)
        if not members:
            return self.logical.operator(op_id).logic_factory
        from repro.sps.chaining import fused_factory

        return fused_factory(
            [self.logical.operator(member) for member in members]
        )
