"""Run metrics.

The paper reports end-to-end latency (median of each run, mean over three
runs) and throughput; :class:`RunMetrics` carries those plus diagnostics
(per-operator utilisation, queue peaks) that the rule-based enumerator and
the experiment analyses use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.common.errors import SimulationError

__all__ = ["LatencyStats", "RunMetrics", "aggregate_runs"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(
        cls, samples: "list[float] | np.ndarray"
    ) -> "LatencyStats":
        """Compute stats; raises if there are no samples.

        Accepts a list or an ndarray; the three percentiles come from a
        single ``np.percentile`` call (one sort) instead of three.
        """
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise SimulationError(
                "no latency samples: the query produced no results "
                "(check selectivities, window sizes and run length)"
            )
        p50, p95, p99 = np.percentile(arr, (50, 95, 99))
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form for the document store."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


@dataclass
class RunMetrics:
    """Everything measured in one simulated benchmark run."""

    latency: LatencyStats
    throughput: float
    results: int
    source_events: int
    sim_duration: float
    operator_utilization: dict[str, float] = field(default_factory=dict)
    operator_queue_peak: dict[str, int] = field(default_factory=dict)
    #: mean queueing delay per served tuple (seconds), per operator —
    #: the latency-breakdown diagnostic behind bottleneck analysis
    operator_avg_wait: dict[str, float] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def median_latency_ms(self) -> float:
        """Median end-to-end latency in milliseconds (headline metric)."""
        return self.latency.p50 * 1e3

    @property
    def observability(self) -> dict[str, Any] | None:
        """The attached observability summary, if the run was observed.

        Populated by :class:`repro.core.runner.BenchmarkRunner` when its
        config sets ``observe=True`` (see :mod:`repro.obs`).
        """
        return self.extras.get("obs")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the document store."""
        return {
            "latency": self.latency.to_dict(),
            "throughput": self.throughput,
            "results": self.results,
            "source_events": self.source_events,
            "sim_duration": self.sim_duration,
            "operator_utilization": dict(self.operator_utilization),
            "operator_queue_peak": dict(self.operator_queue_peak),
            "operator_avg_wait": dict(self.operator_avg_wait),
            "extras": dict(self.extras),
        }


def aggregate_runs(runs: list[RunMetrics]) -> dict[str, float]:
    """Mean-of-medians over repeated runs, as the paper reports.

    "We report the mean of three runs of measuring median latency (50th
    percentile)."
    """
    if not runs:
        raise SimulationError("no runs to aggregate")
    medians = np.fromiter(
        (run.latency.p50 for run in runs), dtype=float, count=len(runs)
    )
    throughputs = np.fromiter(
        (run.throughput for run in runs), dtype=float, count=len(runs)
    )
    mean_median = float(medians.mean())
    return {
        "mean_median_latency_s": mean_median,
        "mean_median_latency_ms": mean_median * 1e3,
        "std_median_latency_s": float(medians.std()),
        "mean_throughput": float(throughputs.mean()),
        "runs": float(len(runs)),
    }
