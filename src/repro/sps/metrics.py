"""Run metrics.

The paper reports end-to-end latency (median of each run, mean over three
runs) and throughput; :class:`RunMetrics` carries those plus diagnostics
(per-operator utilisation, queue peaks) that the rule-based enumerator and
the experiment analyses use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.common.errors import SimulationError

__all__ = ["LatencyStats", "RunMetrics", "aggregate_runs"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyStats":
        """Compute stats; raises if there are no samples."""
        if not samples:
            raise SimulationError(
                "no latency samples: the query produced no results "
                "(check selectivities, window sizes and run length)"
            )
        arr = np.asarray(samples, dtype=float)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form for the document store."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


@dataclass
class RunMetrics:
    """Everything measured in one simulated benchmark run."""

    latency: LatencyStats
    throughput: float
    results: int
    source_events: int
    sim_duration: float
    operator_utilization: dict[str, float] = field(default_factory=dict)
    operator_queue_peak: dict[str, int] = field(default_factory=dict)
    #: mean queueing delay per served tuple (seconds), per operator —
    #: the latency-breakdown diagnostic behind bottleneck analysis
    operator_avg_wait: dict[str, float] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def median_latency_ms(self) -> float:
        """Median end-to-end latency in milliseconds (headline metric)."""
        return self.latency.p50 * 1e3

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for the document store."""
        return {
            "latency": self.latency.to_dict(),
            "throughput": self.throughput,
            "results": self.results,
            "source_events": self.source_events,
            "sim_duration": self.sim_duration,
            "operator_utilization": dict(self.operator_utilization),
            "operator_queue_peak": dict(self.operator_queue_peak),
            "operator_avg_wait": dict(self.operator_avg_wait),
            "extras": dict(self.extras),
        }


def aggregate_runs(runs: list[RunMetrics]) -> dict[str, float]:
    """Mean-of-medians over repeated runs, as the paper reports.

    "We report the mean of three runs of measuring median latency (50th
    percentile)."
    """
    if not runs:
        raise SimulationError("no runs to aggregate")
    medians = [run.latency.p50 for run in runs]
    throughputs = [run.throughput for run in runs]
    return {
        "mean_median_latency_s": float(np.mean(medians)),
        "mean_median_latency_ms": float(np.mean(medians)) * 1e3,
        "std_median_latency_s": float(np.std(medians)),
        "mean_throughput": float(np.mean(throughputs)),
        "runs": float(len(runs)),
    }
