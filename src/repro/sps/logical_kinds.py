"""Operator kinds, in their own module to avoid import cycles between the

plan layer and the cost layer.
"""

from __future__ import annotations

import enum

__all__ = ["OperatorKind"]


class OperatorKind(enum.Enum):
    """The operator vocabulary of the dataflow graphs.

    ``UDO`` marks user-defined operators, which the paper distinguishes from
    standard stream-processing operators because their custom logic and state
    handling scale differently with parallelism (observation O3).
    """

    SOURCE = "source"
    FILTER = "filter"
    MAP = "map"
    FLATMAP = "flatMap"
    WINDOW_AGG = "windowAgg"
    WINDOW_JOIN = "windowJoin"
    UDO = "udo"
    SINK = "sink"

    @property
    def is_stateful(self) -> bool:
        """Whether instances of this kind hold window/operator state."""
        return self in (
            OperatorKind.WINDOW_AGG,
            OperatorKind.WINDOW_JOIN,
            OperatorKind.UDO,
        )
