"""Data partitioning strategies.

Table 3 lists the partitioning strategies PDSP-Bench exercises between
operator instances: **forward**, **rebalance** and **hashing**; broadcast is
included as well since several real-world applications (e.g. ad analytics)
need it. A partitioner maps each outgoing tuple of a producer subtask to one
or more consumer subtask indices.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ConfigurationError, PlanError
from repro.sps.tuples import StreamTuple

__all__ = [
    "Partitioner",
    "ForwardPartitioner",
    "RebalancePartitioner",
    "HashPartitioner",
    "BroadcastPartitioner",
]


def _stable_hash(key: Any) -> int:
    """Deterministic hash, stable across processes (unlike ``hash(str)``)."""
    if isinstance(key, str):
        value = 1469598103934665603  # FNV-1a 64-bit
        for char in key.encode("utf-8"):
            value ^= char
            value = (value * 1099511628211) % (1 << 64)
        return value
    if isinstance(key, float):
        key = int(key * 1e6)
    if isinstance(key, tuple):
        combined = 0
        for part in key:
            combined = (combined * 31 + _stable_hash(part)) % (1 << 64)
        return combined
    return int(key) % (1 << 64)


class Partitioner:
    """Chooses consumer subtask indices for each tuple of a channel group.

    One partitioner instance exists *per producer subtask* so stateful
    strategies (round-robin counters) do not share state across producers —
    matching how Flink instantiates channel selectors.
    """

    name: str = "abstract"

    #: Whether the strategy requires producer and consumer parallelism to
    #: match (Flink's constraint for forward exchanges).
    requires_equal_parallelism: bool = False

    #: Whether each tuple goes to every consumer.
    is_broadcast: bool = False

    def select(self, tup: StreamTuple, num_consumers: int) -> list[int]:
        """Consumer indices (in ``range(num_consumers)``) for this tuple."""
        raise NotImplementedError

    def constant_indices(self, num_consumers: int) -> list[int] | None:
        """Indices when ``select`` is tuple-independent, else None.

        Lets the engine resolve forward/broadcast fan-out once at build
        time instead of allocating an index list per tuple. Strategies
        whose choice depends on the tuple (hash) or on internal state
        (rebalance) return None. Returning None when the configuration
        is invalid preserves the original runtime error from ``select``.
        """
        return None

    def clone(self) -> "Partitioner":
        """Fresh instance with reset state, for a new producer subtask."""
        return type(self)()

    def describe(self) -> str:
        """Label used in plan dumps and ML features."""
        return self.name


class ForwardPartitioner(Partitioner):
    """Producer instance *i* sends only to consumer instance *i*.

    Valid only when both sides have equal parallelism; the physical planner
    enforces this, as Flink does.
    """

    name = "forward"
    requires_equal_parallelism = True

    def __init__(self, producer_index: int = 0) -> None:
        self._producer_index = producer_index

    def select(self, tup: StreamTuple, num_consumers: int) -> list[int]:
        if self._producer_index >= num_consumers:
            raise PlanError(
                f"forward channel from producer {self._producer_index} has "
                f"only {num_consumers} consumers; parallelism must match"
            )
        return [self._producer_index]

    def constant_indices(self, num_consumers: int) -> list[int] | None:
        if self._producer_index >= num_consumers:
            return None  # select() will raise the PlanError at runtime
        return [self._producer_index]

    def clone(self) -> "ForwardPartitioner":
        return ForwardPartitioner(self._producer_index)

    def for_producer(self, producer_index: int) -> "ForwardPartitioner":
        """Bind the partitioner to a producer subtask index."""
        return ForwardPartitioner(producer_index)


class RebalancePartitioner(Partitioner):
    """Round-robin distribution across all consumers."""

    name = "rebalance"

    def __init__(self) -> None:
        self._next = 0

    def select(self, tup: StreamTuple, num_consumers: int) -> list[int]:
        if num_consumers <= 0:
            raise PlanError("rebalance needs at least one consumer")
        index = self._next % num_consumers
        self._next += 1
        return [index]


class HashPartitioner(Partitioner):
    """Key-hash distribution: all tuples of a key reach the same consumer.

    ``key_field`` selects which value position provides the key when the
    tuple has no key set yet (the keyBy step of the dataflow).
    """

    name = "hash"

    def __init__(self, key_field: int | None = None) -> None:
        if key_field is not None and key_field < 0:
            raise ConfigurationError("key_field must be non-negative")
        self.key_field = key_field
        # _stable_hash is pure, and real key domains (words, sensor ids)
        # repeat heavily — memoize per producer instance.
        self._hash_cache: dict = {}

    def extract_key(self, tup: StreamTuple) -> Any:
        """The partitioning key for a tuple."""
        if self.key_field is not None:
            return tup.values[self.key_field]
        if tup.key is None:
            raise PlanError(
                "hash partitioning needs a key: set key_field or key tuples "
                "upstream"
            )
        return tup.key

    def select(self, tup: StreamTuple, num_consumers: int) -> list[int]:
        if num_consumers <= 0:
            raise PlanError("hash partitioning needs at least one consumer")
        key = self.extract_key(tup)
        try:
            value = self._hash_cache[key]
        except KeyError:
            value = self._hash_cache[key] = _stable_hash(key)
        except TypeError:  # unhashable key: compute without caching
            value = _stable_hash(key)
        return [value % num_consumers]

    def clone(self) -> "HashPartitioner":
        return HashPartitioner(self.key_field)

    def describe(self) -> str:
        if self.key_field is None:
            return "hash"
        return f"hash(f{self.key_field})"


class BroadcastPartitioner(Partitioner):
    """Every tuple is replicated to every consumer."""

    name = "broadcast"
    is_broadcast = True

    def select(self, tup: StreamTuple, num_consumers: int) -> list[int]:
        if num_consumers <= 0:
            raise PlanError("broadcast needs at least one consumer")
        return list(range(num_consumers))

    def constant_indices(self, num_consumers: int) -> list[int] | None:
        if num_consumers <= 0:
            return None  # select() will raise the PlanError at runtime
        return list(range(num_consumers))
