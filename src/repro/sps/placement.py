"""Placement of subtasks on cluster slots.

The paper's controller hides "the complex mechanism of machine creation and
query deployment"; here the complexity is choosing which node (and core)
runs each subtask. Slots may be shared by several subtasks (Flink's slot
sharing); co-located subtasks then contend for the core and their service
times stretch by the slot's load factor.

Strategies:

- :class:`RoundRobinPlacement` — spread subtasks evenly over nodes (the
  default, mirroring Flink's default slot spreading);
- :class:`PackedPlacement` — fill one node before the next (minimises
  network hops, maximises contention);
- :class:`SpeedAwarePlacement` — heaviest operators to fastest nodes, a
  simple heterogeneity-aware heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.node import TaskSlot
from repro.common.errors import PlacementError
from repro.sps.physical import PhysicalPlan

__all__ = [
    "Placement",
    "PlacementStrategy",
    "RoundRobinPlacement",
    "PackedPlacement",
    "SpeedAwarePlacement",
]


@dataclass
class Placement:
    """The result: a slot per subtask plus per-slot load factors."""

    slot_of: dict[int, TaskSlot]
    slot_load: dict[TaskSlot, int]

    def node_of(self, gid: int) -> int:
        """Node id hosting a subtask."""
        return self.slot_of[gid].node_id

    def load_of(self, gid: int) -> int:
        """How many subtasks share this subtask's core (>= 1)."""
        return self.slot_load[self.slot_of[gid]]

    def nodes_used(self) -> set[int]:
        """Distinct node ids hosting at least one subtask."""
        return {slot.node_id for slot in self.slot_of.values()}


class PlacementStrategy:
    """Base class: assigns every subtask of a plan to a slot."""

    name = "abstract"

    def place(self, plan: PhysicalPlan, cluster: Cluster) -> Placement:
        """Compute a placement; must cover every subtask."""
        raise NotImplementedError

    @staticmethod
    def _finish(slot_of: dict[int, TaskSlot]) -> Placement:
        slot_load: dict[TaskSlot, int] = {}
        for slot in slot_of.values():
            slot_load[slot] = slot_load.get(slot, 0) + 1
        return Placement(slot_of=slot_of, slot_load=slot_load)


class RoundRobinPlacement(PlacementStrategy):
    """Cycle across nodes, taking each node's next free slot.

    When every slot is taken the cycle wraps and slots are shared. Subtasks
    of one operator therefore land on distinct nodes whenever possible —
    the data-parallel spreading the paper's experiments rely on.
    """

    name = "round-robin"

    def place(self, plan: PhysicalPlan, cluster: Cluster) -> Placement:
        if not plan.subtasks:
            raise PlacementError("physical plan has no subtasks")
        nodes = cluster.nodes
        cursor = {node.node_id: 0 for node in nodes}
        slot_of: dict[int, TaskSlot] = {}
        node_index = 0
        for subtask in plan.subtasks:
            node = nodes[node_index % len(nodes)]
            slot_index = cursor[node.node_id] % node.num_slots
            cursor[node.node_id] += 1
            slot_of[subtask.gid] = node.slots[slot_index]
            node_index += 1
        return self._finish(slot_of)


class PackedPlacement(PlacementStrategy):
    """Fill node 0's slots, then node 1's, wrapping when the cluster is full."""

    name = "packed"

    def place(self, plan: PhysicalPlan, cluster: Cluster) -> Placement:
        if not plan.subtasks:
            raise PlacementError("physical plan has no subtasks")
        all_slots = cluster.all_slots()
        slot_of = {
            subtask.gid: all_slots[i % len(all_slots)]
            for i, subtask in enumerate(plan.subtasks)
        }
        return self._finish(slot_of)


class SpeedAwarePlacement(PlacementStrategy):
    """Assign the most expensive operators' subtasks to the fastest cores.

    Operators are sorted by base CPU cost (descending); nodes by speed factor
    (descending). This is the "careful orchestration" the paper says
    heterogeneous environments need (O5): data-intensive operators benefit
    from the faster AMD cores while cheap operators can live anywhere.
    """

    name = "speed-aware"

    def place(self, plan: PhysicalPlan, cluster: Cluster) -> Placement:
        if not plan.subtasks:
            raise PlacementError("physical plan has no subtasks")
        slots = sorted(
            cluster.all_slots(),
            key=lambda slot: -cluster.node(slot.node_id).speed_factor,
        )
        ordered = sorted(
            plan.subtasks,
            key=lambda st: -plan.logical.operator(st.op_id).cost.base_cpu_s,
        )
        slot_of = {
            subtask.gid: slots[i % len(slots)]
            for i, subtask in enumerate(ordered)
        }
        return self._finish(slot_of)
