"""Autoscaling policies: per-operator load snapshots in, targets out.

A policy is a Strategy object the engine consults at a fixed control
cadence (``SimulationConfig.autoscale_interval``). Each tick the engine
builds one :class:`OpSnapshot` per rescalable operator and calls
:meth:`AutoscalePolicy.decide`; any operator whose returned target
differs from its live parallelism is rescaled through the drain-barrier
protocol (DESIGN.md §12).

The contract keeps policies deterministic and fork-safe:

- ``decide`` must be a pure function of the snapshots and the policy's
  own accumulated state — no wall clock, no ambient randomness;
- policies are selected by *spec string* (``"reactive:high=32,low=2"``)
  rather than by instance, so a frozen ``RunnerConfig`` can cross a
  process-pool boundary and each forked engine builds its own fresh,
  unshared policy state;
- returned targets are clamped by the engine to operators that passed
  the rescale validation (stateless or keyed with hash-partitioned
  inputs; never sources, sinks or chained operators).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

__all__ = [
    "OpSnapshot",
    "AutoscalePolicy",
    "NoAutoscale",
    "ReactiveQueuePolicy",
    "PredictiveCostPolicy",
    "make_policy",
]


@dataclass(frozen=True)
class OpSnapshot:
    """One operator's load picture over the last control interval."""

    op_id: str
    #: live parallelism (after any prior rescales)
    parallelism: int
    #: total tuples waiting across the operator's input queues
    queue_depth: int
    #: busy fraction over the last interval, averaged across subtasks
    utilization: float
    #: tuples served per simulated second over the last interval
    service_rate: float
    #: cost-model per-tuple service time at the live parallelism
    base_service_s: float


class AutoscalePolicy:
    """Strategy interface: snapshots of all rescalable operators in,

    ``{op_id: target_parallelism}`` out. Returning an empty dict (or
    omitting an operator) leaves its parallelism unchanged."""

    name: str = "abstract"

    def decide(
        self, now: float, snapshots: list[OpSnapshot]
    ) -> dict[str, int]:
        """Return new parallelism targets for operators that should move."""
        raise NotImplementedError


class NoAutoscale(AutoscalePolicy):
    """Static baseline: never rescales.

    Selecting it (rather than leaving ``autoscale=None``) still enables
    elastic accounting — resource-seconds and the rescale log appear in
    ``extras["elastic"]`` — so policy comparisons have a cost baseline.
    """

    name = "none"

    def decide(
        self, now: float, snapshots: list[OpSnapshot]
    ) -> dict[str, int]:
        """Never move anything."""
        return {}


class ReactiveQueuePolicy(AutoscalePolicy):
    """Queue-depth hysteresis: scale up when backlog per subtask crosses

    ``high``, down when it falls below ``low`` *and* utilization is
    slack. A per-operator cooldown suppresses oscillation: after any
    decision for an operator, further changes wait ``cooldown``
    simulated seconds — the streaming analogue of Flink's reactive-mode
    stabilization window."""

    name = "reactive"

    def __init__(
        self,
        high: float = 24.0,
        low: float = 2.0,
        step: int = 1,
        cooldown: float = 0.5,
        min_parallelism: int = 1,
        max_parallelism: int = 8,
    ) -> None:
        if high <= low:
            raise ConfigurationError(
                "reactive policy needs high > low (hysteresis band)"
            )
        if step < 1 or min_parallelism < 1:
            raise ConfigurationError("step and min_parallelism must be >= 1")
        if max_parallelism < min_parallelism:
            raise ConfigurationError("max_parallelism < min_parallelism")
        self.high = float(high)
        self.low = float(low)
        self.step = int(step)
        self.cooldown = float(cooldown)
        self.min_parallelism = int(min_parallelism)
        self.max_parallelism = int(max_parallelism)
        self._last_change: dict[str, float] = {}

    def decide(
        self, now: float, snapshots: list[OpSnapshot]
    ) -> dict[str, int]:
        """Step parallelism against the hysteresis band, per operator."""
        targets: dict[str, int] = {}
        for snap in snapshots:
            last = self._last_change.get(snap.op_id)
            if last is not None and now - last < self.cooldown:
                continue
            per_subtask = snap.queue_depth / snap.parallelism
            target = snap.parallelism
            if per_subtask > self.high:
                target = min(
                    snap.parallelism + self.step, self.max_parallelism
                )
            elif per_subtask < self.low and snap.utilization < 0.5:
                target = max(
                    snap.parallelism - self.step, self.min_parallelism
                )
            if target != snap.parallelism:
                targets[snap.op_id] = target
                self._last_change[snap.op_id] = now
        return targets


class PredictiveCostPolicy(AutoscalePolicy):
    """Model-driven sizing: pick the parallelism the cost model says

    keeps utilization at ``target_util`` for the observed demand.

    Demand is the served rate plus the backlog amortized over one
    cooldown period (backlog must drain, not just stop growing); the
    per-tuple cost estimate is the engine's own ``base_service`` — the
    same calibrated cost model the trained predictors consume — so the
    required degree is ``ceil(demand * cost / target_util)``. Scale-down
    additionally requires measured utilization below ``0.6 *
    target_util``, mirroring the reactive policy's hysteresis."""

    name = "predictive"

    def __init__(
        self,
        target_util: float = 0.7,
        cooldown: float = 0.5,
        min_parallelism: int = 1,
        max_parallelism: int = 8,
    ) -> None:
        if not 0.0 < target_util <= 1.0:
            raise ConfigurationError("target_util must be in (0, 1]")
        if max_parallelism < min_parallelism or min_parallelism < 1:
            raise ConfigurationError("bad parallelism bounds")
        self.target_util = float(target_util)
        self.cooldown = float(cooldown)
        self.min_parallelism = int(min_parallelism)
        self.max_parallelism = int(max_parallelism)
        self._last_change: dict[str, float] = {}

    def decide(
        self, now: float, snapshots: list[OpSnapshot]
    ) -> dict[str, int]:
        """Size each operator from demand x cost / target utilization."""
        targets: dict[str, int] = {}
        horizon = max(self.cooldown, 1e-9)
        for snap in snapshots:
            last = self._last_change.get(snap.op_id)
            if last is not None and now - last < self.cooldown:
                continue
            demand = snap.service_rate + snap.queue_depth / horizon
            if snap.base_service_s <= 0:
                continue
            required = math.ceil(
                demand * snap.base_service_s / self.target_util
            )
            required = min(
                max(required, self.min_parallelism), self.max_parallelism
            )
            target = snap.parallelism
            if required > snap.parallelism:
                target = required
            elif (
                required < snap.parallelism
                and snap.utilization < 0.6 * self.target_util
            ):
                target = required
            if target != snap.parallelism:
                targets[snap.op_id] = target
                self._last_change[snap.op_id] = now
        return targets


_POLICY_NAMES = {
    "none": NoAutoscale,
    "static": NoAutoscale,
    "reactive": ReactiveQueuePolicy,
    "predictive": PredictiveCostPolicy,
}

_PARAM_ALIASES = {
    "max": "max_parallelism",
    "min": "min_parallelism",
    "util": "target_util",
}

_INT_PARAMS = {"step", "min_parallelism", "max_parallelism"}


def make_policy(spec: str | AutoscalePolicy) -> AutoscalePolicy:
    """Build a policy from a spec string like ``"reactive:high=32,max=8"``.

    The part before ``:`` names the policy (``none``/``static``,
    ``reactive``, ``predictive``); the rest is ``key=value`` pairs
    passed as constructor arguments (``max``, ``min`` and ``util`` are
    accepted shorthands). A ready policy instance passes through.
    """
    if isinstance(spec, AutoscalePolicy):
        return spec
    name, _, rest = str(spec).partition(":")
    name = name.strip().lower()
    cls = _POLICY_NAMES.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown autoscale policy {name!r} "
            f"(use one of {sorted(_POLICY_NAMES)})"
        )
    kwargs: dict[str, float | int] = {}
    if rest.strip():
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"bad policy parameter {pair!r} (want key=value)"
                )
            key = _PARAM_ALIASES.get(key.strip(), key.strip())
            try:
                parsed = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"policy parameter {key!r} needs a number, "
                    f"got {value!r}"
                ) from None
            kwargs[key] = int(parsed) if key in _INT_PARAMS else parsed
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"policy {name!r} rejected parameters {sorted(kwargs)}: {exc}"
        ) from None
