"""Declarative chaos scenarios, compiled onto the engine's event heap.

A :class:`Scenario` is a named, immutable bundle of injections. The
engine compiles each injection into heap events at run start, so an
identical ``(plan, seed, scenario)`` triple replays the exact same
perturbation sequence — chaos runs are reproducible bit-for-bit, which
is what lets CI assert on them (the ``chaos-smoke`` job).

Injection semantics:

- :class:`NodeFailure` — the node's non-sink subtasks *fail* at
  ``at``: their in-memory state and queued tuples are lost and fresh
  instances come up after ``duration``. With checkpointing off the
  engine accounts the damage (``extras["elastic"]["state_loss"]``);
  with ``checkpoint_interval`` set the fault-tolerance subsystem
  (DESIGN.md §13) performs a global restart instead — every
  processing subtask restores the last completed checkpoint and the
  sources replay their durable logs.
- :class:`LoadSpike` — all sources emit ``factor``× faster for the
  window, then their exact original gaps are restored.
- :class:`Straggler` — one subtask's service time inflates by
  ``factor`` (a slow disk, a noisy neighbour); the restore event
  carries the exact pre-inflation value so the recovery is float-exact.
  If the operator rescales while straggling, the replacement subtasks
  are built from the clean cost model — rescaling *repairs* the
  straggler, as it does in production.
- :class:`NetworkDegradation` — every cross-node channel's latency and
  bandwidth degrade by the given factors, then restore.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

__all__ = [
    "NodeFailure",
    "LoadSpike",
    "Straggler",
    "NetworkDegradation",
    "Scenario",
    "make_scenario",
]


def _check_window(at: float, duration: float) -> None:
    if at < 0 or duration <= 0:
        raise ConfigurationError(
            "injection needs at >= 0 and duration > 0"
        )


@dataclass(frozen=True)
class NodeFailure:
    """One node's subtasks fail at ``at``; replacements are up after
    ``duration`` seconds.

    The node's processing subtasks lose their in-memory state and
    queues; sinks (transactional external systems) survive. Its
    sources stop generating for the outage. What happens next depends
    on the run's fault-tolerance configuration — explicit loss
    accounting when checkpointing is off, a global restart from the
    last completed checkpoint plus source replay when it is on.

    ``node`` is a cluster node id; ``None`` picks the node hosting the
    plan's first non-source, non-sink subtask (deterministic, and
    guaranteed to hit processing work).
    """

    at: float
    duration: float
    node: int | None = None

    def __post_init__(self) -> None:
        _check_window(self.at, self.duration)


@dataclass(frozen=True)
class LoadSpike:
    """All sources emit ``factor``× faster during the window."""

    at: float
    duration: float
    factor: float = 3.0

    def __post_init__(self) -> None:
        _check_window(self.at, self.duration)
        if self.factor <= 1.0:
            raise ConfigurationError("spike factor must be > 1")


@dataclass(frozen=True)
class Straggler:
    """One subtask's service time inflates by ``factor``.

    ``op`` is the operator id; ``None`` picks the non-source, non-sink
    operator with the highest cost-model service time (the plan's
    bottleneck). ``subtask`` indexes into the operator's live subtasks
    modulo its parallelism.
    """

    at: float
    duration: float
    factor: float = 4.0
    op: str | None = None
    subtask: int = 0

    def __post_init__(self) -> None:
        _check_window(self.at, self.duration)
        if self.factor <= 1.0:
            raise ConfigurationError("straggler factor must be > 1")
        if self.subtask < 0:
            raise ConfigurationError("subtask index must be >= 0")


@dataclass(frozen=True)
class NetworkDegradation:
    """Cross-node channels slow down: latency ×``latency_factor``,

    bandwidth ×``bandwidth_factor``, for the window."""

    at: float
    duration: float
    latency_factor: float = 10.0
    bandwidth_factor: float = 0.1

    def __post_init__(self) -> None:
        _check_window(self.at, self.duration)
        if self.latency_factor < 1.0 or not 0.0 < self.bandwidth_factor <= 1.0:
            raise ConfigurationError(
                "need latency_factor >= 1 and bandwidth_factor in (0, 1]"
            )


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible bundle of injections."""

    name: str = "none"
    injections: tuple = ()


_INJECTION_NAMES = {
    "failure": NodeFailure,
    "spike": LoadSpike,
    "straggler": Straggler,
    "netdeg": NetworkDegradation,
}

#: Default timing when a scenario is named without parameters: the
#: perturbation lands mid-run for the quick configurations CI uses.
_DEFAULTS: dict[str, dict[str, float]] = {
    "failure": {"at": 1.5, "duration": 0.8},
    "spike": {"at": 1.5, "duration": 1.5},
    "straggler": {"at": 1.5, "duration": 2.0},
    "netdeg": {"at": 1.5, "duration": 1.5},
}

_INT_PARAMS = {"node", "subtask"}
_STR_PARAMS = {"op"}


def _parse_injection(part: str):
    name, _, rest = part.partition(":")
    name = name.strip().lower()
    cls = _INJECTION_NAMES.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown injection {name!r} "
            f"(use one of {sorted(_INJECTION_NAMES)})"
        )
    kwargs: dict[str, object] = dict(_DEFAULTS[name])
    if rest.strip():
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"bad injection parameter {pair!r} (want key=value)"
                )
            key = key.strip()
            value = value.strip()
            if key in _STR_PARAMS:
                kwargs[key] = value
                continue
            try:
                parsed = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"injection parameter {key!r} needs a number, "
                    f"got {value!r}"
                ) from None
            kwargs[key] = int(parsed) if key in _INT_PARAMS else parsed
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"injection {name!r} rejected parameters "
            f"{sorted(kwargs)}: {exc}"
        ) from None


def make_scenario(spec) -> Scenario:
    """Build a :class:`Scenario` from a spec string.

    ``"none"`` yields an empty scenario; otherwise the spec is
    ``+``-separated injections, each ``name:key=value,...`` —
    e.g. ``"failure:at=1,duration=0.5+spike:at=2,factor=4"``. A ready
    :class:`Scenario` passes through; a single injection instance is
    wrapped.
    """
    if isinstance(spec, Scenario):
        return spec
    if isinstance(spec, tuple(_INJECTION_NAMES.values())):
        return Scenario(name=type(spec).__name__, injections=(spec,))
    text = str(spec).strip()
    if not text or text.lower() == "none":
        return Scenario()
    injections = tuple(
        _parse_injection(part) for part in text.split("+") if part.strip()
    )
    return Scenario(name=text, injections=injections)
