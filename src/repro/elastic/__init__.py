"""Elastic runtime: autoscaling policies and chaos scenario specs.

The engine (:mod:`repro.sps.engine`) owns the mechanics of live
rescaling — drain barriers, keyed-state migration, channel rewiring.
This package owns the *decisions*: pluggable autoscaling policies that
map per-operator load snapshots to target parallelism degrees, and
declarative scenario specs (failures, load spikes, stragglers, network
degradation) compiled onto the same event mechanism. Both are plain
picklable values selected by spec string, so frozen configs can carry
them across process-pool forks (DESIGN.md §12).
"""

from repro.elastic.policy import (
    AutoscalePolicy,
    NoAutoscale,
    OpSnapshot,
    PredictiveCostPolicy,
    ReactiveQueuePolicy,
    make_policy,
)
from repro.elastic.scenarios import (
    LoadSpike,
    NetworkDegradation,
    NodeFailure,
    Scenario,
    Straggler,
    make_scenario,
)

__all__ = [
    "AutoscalePolicy",
    "NoAutoscale",
    "OpSnapshot",
    "PredictiveCostPolicy",
    "ReactiveQueuePolicy",
    "make_policy",
    "LoadSpike",
    "NetworkDegradation",
    "NodeFailure",
    "Scenario",
    "Straggler",
    "make_scenario",
]
