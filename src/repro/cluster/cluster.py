"""Cluster assembly.

The paper's experiments run on clusters of 10 nodes each:

- homogeneous:   10 x m510                    (Exp 1, Exp 2 "Ho")
- heterogeneous: c6525_25g and c6320 mixes    (Exp 2 "He")

:func:`homogeneous_cluster` and :func:`heterogeneous_cluster` reproduce those
setups; :func:`mixed_cluster` builds arbitrary compositions.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.cluster.hardware import get_hardware
from repro.cluster.network import Network, NetworkSpec
from repro.cluster.node import Node, TaskSlot
from repro.common.errors import ConfigurationError

__all__ = [
    "Cluster",
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "mixed_cluster",
]


class Cluster:
    """A set of nodes plus the network connecting them."""

    def __init__(
        self,
        nodes: Sequence[Node],
        network_spec: NetworkSpec | None = None,
        name: str = "cluster",
    ) -> None:
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        self._nodes = tuple(nodes)
        self._by_id = {node.node_id: node for node in self._nodes}
        if len(self._by_id) != len(self._nodes):
            raise ConfigurationError("duplicate node ids in cluster")
        self._network = Network(list(self._nodes), network_spec)
        self.name = name

    @property
    def nodes(self) -> tuple[Node, ...]:
        """All nodes, in id order as constructed."""
        return self._nodes

    @property
    def network(self) -> Network:
        """The interconnect model."""
        return self._network

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        try:
            return self._by_id[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node id {node_id}") from None

    @property
    def total_slots(self) -> int:
        """Total task slots (== total cores) in the cluster."""
        return sum(node.num_slots for node in self._nodes)

    @property
    def total_cores(self) -> int:
        """Alias of :attr:`total_slots` for readability at call sites."""
        return self.total_slots

    def all_slots(self) -> list[TaskSlot]:
        """Every slot, grouped by node in node order."""
        return [slot for node in self._nodes for slot in node.slots]

    @property
    def is_heterogeneous(self) -> bool:
        """Whether the cluster mixes more than one hardware type."""
        return len({node.hardware.name for node in self._nodes}) > 1

    @property
    def max_cores_per_node(self) -> int:
        """Cores of the largest node; the paper keys parallelism to this."""
        return max(node.num_slots for node in self._nodes)

    def describe(self) -> str:
        """One-line summary, e.g. ``cluster: 10 x m510 (80 slots)``."""
        counts: dict[str, int] = {}
        for node in self._nodes:
            counts[node.hardware.name] = counts.get(node.hardware.name, 0) + 1
        mix = " + ".join(f"{n} x {hw}" for hw, n in sorted(counts.items()))
        return f"{self.name}: {mix} ({self.total_slots} slots)"


def homogeneous_cluster(
    hardware_name: str = "m510",
    num_nodes: int = 10,
    network_spec: NetworkSpec | None = None,
) -> Cluster:
    """Build the paper's homogeneous cluster (default: 10 x m510)."""
    if num_nodes <= 0:
        raise ConfigurationError("num_nodes must be positive")
    hardware = get_hardware(hardware_name)
    nodes = [Node(node_id=i, hardware=hardware) for i in range(num_nodes)]
    return Cluster(
        nodes, network_spec, name=f"homogeneous-{hardware_name}"
    )


def heterogeneous_cluster(
    hardware_names: Iterable[str] = ("c6525_25g", "c6320"),
    num_nodes: int = 10,
    network_spec: NetworkSpec | None = None,
) -> Cluster:
    """Build a heterogeneous cluster cycling through the given node types.

    The paper's heterogeneous experiments use ``c6525_25g`` and ``c6320``
    nodes; with the default arguments this yields 5 of each in a 10-node
    cluster, alternating.
    """
    names = list(hardware_names)
    if not names:
        raise ConfigurationError("need at least one hardware type")
    if len(set(names)) < 2:
        raise ConfigurationError(
            "a heterogeneous cluster needs >= 2 distinct hardware types; "
            "use homogeneous_cluster() otherwise"
        )
    if num_nodes <= 0:
        raise ConfigurationError("num_nodes must be positive")
    nodes = [
        Node(node_id=i, hardware=get_hardware(names[i % len(names)]))
        for i in range(num_nodes)
    ]
    label = "+".join(names)
    return Cluster(nodes, network_spec, name=f"heterogeneous-{label}")


def mixed_cluster(
    composition: dict[str, int],
    network_spec: NetworkSpec | None = None,
    name: str = "mixed",
) -> Cluster:
    """Build a cluster from an explicit ``{hardware_name: count}`` mix."""
    nodes: list[Node] = []
    for hardware_name in sorted(composition):
        count = composition[hardware_name]
        if count <= 0:
            raise ConfigurationError(
                f"count for {hardware_name!r} must be positive, got {count}"
            )
        hardware = get_hardware(hardware_name)
        for _ in range(count):
            nodes.append(Node(node_id=len(nodes), hardware=hardware))
    return Cluster(nodes, network_spec, name=name)
