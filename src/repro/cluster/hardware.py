"""Hardware catalog reproducing Table 4 of the paper.

The paper benchmarks on three CloudLab node types:

========== ===== ======== ========= ========== ========= ========
node       cores RAM (GB) disk (GB) processor  clock GHz NIC Gbps
========== ===== ======== ========= ========== ========= ========
m510       8     64       256       Xeon D     2.0       10
c6525_25g  16    128      480       AMD EPYC   2.2       25
c6320      28    256      1024      Haswell    2.0       10
========== ===== ======== ========= ========== ========= ========

``m510`` builds the homogeneous cluster; ``c6525_25g`` and ``c6320`` build the
heterogeneous ones. The catalog is extensible via :func:`register_hardware`
(the paper's WUI exposes the same knob for other cloud providers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError

__all__ = [
    "HardwareSpec",
    "HARDWARE_CATALOG",
    "get_hardware",
    "register_hardware",
]


@dataclass(frozen=True)
class HardwareSpec:
    """Static description of one node type.

    ``speed_factor`` expresses per-core throughput relative to the m510
    baseline; service times in the simulator are divided by it. It defaults
    to the clock-speed ratio but can encode microarchitectural differences.
    """

    name: str
    cores: int
    ram_gb: int
    disk_gb: int
    processor: str
    clock_ghz: float
    nic_gbps: float
    speed_factor: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"{self.name}: cores must be positive")
        if self.clock_ghz <= 0:
            raise ConfigurationError(f"{self.name}: clock must be positive")
        if self.nic_gbps <= 0:
            raise ConfigurationError(f"{self.name}: NIC speed must be positive")
        if self.speed_factor == 0.0:
            # Default: per-core speed scales with clock relative to 2.0 GHz.
            object.__setattr__(self, "speed_factor", self.clock_ghz / 2.0)
        elif self.speed_factor < 0:
            raise ConfigurationError(
                f"{self.name}: speed_factor must be positive"
            )


#: The three CloudLab node types of Table 4. ``speed_factor`` encodes that
#: AMD EPYC (Rome) cores are faster per-clock than the Xeon D baseline and
#: Haswell cores slightly slower, matching the paper's observation that the
#: heterogeneous clusters differ in per-core capability, not just core count.
HARDWARE_CATALOG: dict[str, HardwareSpec] = {
    "m510": HardwareSpec(
        name="m510",
        cores=8,
        ram_gb=64,
        disk_gb=256,
        processor="Intel Xeon D-1548",
        clock_ghz=2.0,
        nic_gbps=10.0,
    ),
    "c6525_25g": HardwareSpec(
        name="c6525_25g",
        cores=16,
        ram_gb=128,
        disk_gb=480,
        processor="AMD EPYC 7302P",
        clock_ghz=2.2,
        nic_gbps=25.0,
        speed_factor=1.25,
    ),
    "c6320": HardwareSpec(
        name="c6320",
        cores=28,
        ram_gb=256,
        disk_gb=1024,
        processor="Intel Haswell E5-2683v3",
        clock_ghz=2.0,
        nic_gbps=10.0,
        speed_factor=0.95,
    ),
}


def get_hardware(name: str) -> HardwareSpec:
    """Look up a node type by catalog name."""
    try:
        return HARDWARE_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(HARDWARE_CATALOG))
        raise ConfigurationError(
            f"unknown hardware type {name!r}; known types: {known}"
        ) from None


def register_hardware(spec: HardwareSpec, *, replace: bool = False) -> None:
    """Add a node type to the catalog (e.g. for another cloud provider)."""
    if spec.name in HARDWARE_CATALOG and not replace:
        raise ConfigurationError(
            f"hardware type {spec.name!r} already registered; "
            "pass replace=True to overwrite"
        )
    HARDWARE_CATALOG[spec.name] = spec
