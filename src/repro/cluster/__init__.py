"""Simulated cluster substrate.

Reproduces the CloudLab testbed of the paper (Table 4): node hardware types
``m510``, ``c6525_25g`` and ``c6320``, homogeneous and heterogeneous cluster
builders, a task-slot resource model and a latency/bandwidth network model.
"""

from repro.cluster.cluster import (
    Cluster,
    heterogeneous_cluster,
    homogeneous_cluster,
    mixed_cluster,
)
from repro.cluster.hardware import (
    HARDWARE_CATALOG,
    HardwareSpec,
    get_hardware,
    register_hardware,
)
from repro.cluster.network import Network, NetworkSpec
from repro.cluster.node import Node, TaskSlot

__all__ = [
    "HardwareSpec",
    "HARDWARE_CATALOG",
    "get_hardware",
    "register_hardware",
    "Node",
    "TaskSlot",
    "Network",
    "NetworkSpec",
    "Cluster",
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "mixed_cluster",
]
