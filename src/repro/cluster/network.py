"""Network model.

Tuples crossing node boundaries pay a propagation latency plus a
bandwidth-limited transfer time on the *slower* of the two endpoints' NICs.
Intra-node channels are free of network cost (they still pay the engine's
serialization overhead on shuffle edges, which Flink pays too for keyed
exchanges within a task manager when operator chaining is broken).

The paper stresses that "network latency is a significant factor" because
operators may be distributed across CloudLab machines; this model gives the
simulator exactly that term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import Node
from repro.common.errors import ConfigurationError
from repro.common.units import bytes_per_second

__all__ = ["NetworkSpec", "Network"]


@dataclass(frozen=True)
class NetworkSpec:
    """Parameters of the cluster interconnect.

    ``base_latency_s`` is the one-way LAN propagation + switching latency
    between any two distinct nodes (CloudLab machines sit in one datacenter;
    ~100us is typical for its 10/25 Gbps fabric).
    """

    base_latency_s: float = 100e-6
    per_hop_jitter_s: float = 10e-6

    def __post_init__(self) -> None:
        if self.base_latency_s < 0 or self.per_hop_jitter_s < 0:
            raise ConfigurationError("network latencies must be non-negative")


class Network:
    """Computes transfer delays between nodes of a cluster."""

    def __init__(self, nodes: list[Node], spec: NetworkSpec | None = None):
        self._spec = spec or NetworkSpec()
        self._nodes = {node.node_id: node for node in nodes}
        if len(self._nodes) != len(nodes):
            raise ConfigurationError("duplicate node ids in network")

    @property
    def spec(self) -> NetworkSpec:
        """The interconnect parameters."""
        return self._spec

    def link_bandwidth(self, src: int, dst: int) -> float:
        """Effective bandwidth (bytes/s) between two nodes.

        Bounded by the slower NIC of the pair. Same-node transfers return
        ``inf`` (memory-speed hand-off).
        """
        if src == dst:
            return float("inf")
        try:
            src_nic = self._nodes[src].hardware.nic_gbps
            dst_nic = self._nodes[dst].hardware.nic_gbps
        except KeyError as exc:
            raise ConfigurationError(f"unknown node id {exc}") from None
        return bytes_per_second(min(src_nic, dst_nic))

    def transfer_delay(self, src: int, dst: int, size_bytes: float) -> float:
        """One-way delay (seconds) to move a payload between two nodes."""
        if size_bytes < 0:
            raise ConfigurationError("payload size must be non-negative")
        if src == dst:
            return 0.0
        bandwidth = self.link_bandwidth(src, dst)
        return self._spec.base_latency_s + size_bytes / bandwidth
