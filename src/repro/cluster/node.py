"""Nodes and task slots.

Following Flink's resource model, each node (task manager) exposes one task
slot per CPU core. A subtask occupies exactly one slot; the slot's node
determines its per-core speed and its network endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import HardwareSpec
from repro.common.errors import ConfigurationError

__all__ = ["Node", "TaskSlot"]


@dataclass(frozen=True)
class TaskSlot:
    """One schedulable slot on a node (one per core)."""

    node_id: int
    slot_index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"slot({self.node_id}.{self.slot_index})"


@dataclass(frozen=True)
class Node:
    """A cluster node of a given hardware type."""

    node_id: int
    hardware: HardwareSpec
    slots: tuple[TaskSlot, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigurationError("node_id must be non-negative")
        if not self.slots:
            object.__setattr__(
                self,
                "slots",
                tuple(
                    TaskSlot(node_id=self.node_id, slot_index=i)
                    for i in range(self.hardware.cores)
                ),
            )

    @property
    def num_slots(self) -> int:
        """Number of task slots (== number of cores)."""
        return len(self.slots)

    @property
    def speed_factor(self) -> float:
        """Per-core speed relative to the m510 baseline."""
        return self.hardware.speed_factor

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"node{self.node_id}[{self.hardware.name}]"
