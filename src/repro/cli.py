"""Command-line interface: ``python -m repro <command>``.

The controller's scriptable surface (the paper drives PDSP-Bench through
a web UI; the same operations are exposed here):

- ``list-apps``                   — show the Table 2 suite
- ``run-app``                     — benchmark one application config
- ``run-synthetic``               — benchmark one synthetic PQP config
- ``throughput``                  — sustainable-throughput search
- ``train``                       — build a corpus and compare cost models
- ``experiment``                  — regenerate a paper figure
- ``exp4``                        — elastic runtime grid: autoscaling
  policies under chaos scenarios (see :mod:`repro.elastic`)
- ``exp5``                        — fault-tolerance grid: checkpoint
  intervals x node failures x delivery modes (see :mod:`repro.ft`)
- ``tables``                      — render the paper's config tables
- ``lint-plan``                   — static pre-flight analysis of PQPs
- ``sanitize``                    — determinism sanitizer: DET-rule AST
  lint over code or apps, optional race-detected run (see
  :mod:`repro.analysis.sanitizer`)
- ``trace``                       — profile one run: Chrome trace +
  per-operator metrics time series (see :mod:`repro.obs`)
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster import heterogeneous_cluster, homogeneous_cluster
from repro.common.errors import ConfigurationError
from repro.core.controller import PDSPBench
from repro.core.runner import BenchmarkRunner, RunnerConfig
from repro.core.throughput import sustainable_throughput
from repro.report import render_figure, render_table
from repro.report.related_work import render_table1
from repro.workload import QueryStructure

__all__ = ["main", "build_parser"]


def _cluster_from_args(args) -> object:
    if args.hetero:
        return heterogeneous_cluster(num_nodes=args.nodes)
    return homogeneous_cluster(args.cluster, num_nodes=args.nodes)


def _runner_config(args) -> RunnerConfig:
    slo_ms = getattr(args, "slo_ms", None)
    return RunnerConfig(
        repeats=args.repeats,
        dilation=args.dilation,
        max_tuples_per_source=args.tuples,
        max_sim_time=args.sim_time,
        seed=args.seed,
        workers=args.workers,
        batch_size=getattr(args, "batch_size", None),
        autoscale=getattr(args, "autoscale", None),
        scenario=getattr(args, "scenario", None),
        slo_latency=slo_ms / 1e3 if slo_ms is not None else None,
        checkpoint_ms=getattr(args, "checkpoint_ms", None),
        delivery=getattr(args, "delivery", "exactly_once"),
        shards=getattr(args, "shards", None),
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cluster", default="m510",
        help="hardware type for a homogeneous cluster (default m510)",
    )
    parser.add_argument(
        "--hetero", action="store_true",
        help="use the mixed c6525_25g+c6320 heterogeneous cluster",
    )
    parser.add_argument("--nodes", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--dilation", type=float, default=25.0)
    parser.add_argument("--tuples", type=int, default=2500)
    parser.add_argument("--sim-time", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for independent runs (1 = serial; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None,
        help="run on the columnar micro-batch executor with this many "
        "tuples per micro-batch (default: scalar event loop)",
    )
    parser.add_argument(
        "--autoscale", default=None,
        help="elastic autoscaling policy spec, e.g. 'reactive:high=4' "
        "or 'predictive:util=0.6' (default: fixed parallelism)",
    )
    parser.add_argument(
        "--scenario", default=None,
        help="chaos scenario spec, e.g. 'spike:at=0.5,factor=3' or "
        "'failure:at=1.0+spike:at=0.5' (default: none)",
    )
    parser.add_argument(
        "--slo-ms", type=float, default=None,
        help="latency SLO in milliseconds; enables the "
        "SLO-violation-seconds metric in run extras",
    )
    parser.add_argument(
        "--checkpoint-ms", type=float, default=None,
        help="aligned-barrier checkpoint interval in milliseconds; "
        "enables the fault-tolerance subsystem (default: off)",
    )
    parser.add_argument(
        "--delivery", default="exactly_once",
        choices=("exactly_once", "at_least_once"),
        help="delivery guarantee applied on failure recovery "
        "(default exactly_once)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="partition each run's simulated cluster onto this many "
        "forked kernel shards (intra-run multi-core speedup; results "
        "are bit-identical for every shard count)",
    )
    parser.add_argument(
        "--storage", default=None,
        help="directory for the persistent document store",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for all ``python -m repro`` subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PDSP-Bench reproduction: benchmark parallel stream "
        "processing and learned cost models",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list-apps", help="show the application suite")

    run_app = commands.add_parser(
        "run-app", help="benchmark one application configuration"
    )
    run_app.add_argument("--app", required=True)
    run_app.add_argument("--parallelism", type=int, default=8)
    run_app.add_argument("--rate", type=float, default=100_000.0)
    _add_common(run_app)

    run_suite = commands.add_parser(
        "run-suite", help="benchmark the whole application suite"
    )
    run_suite.add_argument("--parallelism", type=int, default=8)
    run_suite.add_argument("--rate", type=float, default=100_000.0)
    run_suite.add_argument(
        "--apps", nargs="*", default=None,
        help="subset of app abbreviations (default: all 14)",
    )
    _add_common(run_suite)

    run_syn = commands.add_parser(
        "run-synthetic", help="benchmark one synthetic PQP"
    )
    run_syn.add_argument(
        "--structure",
        required=True,
        choices=[s.value for s in QueryStructure],
    )
    run_syn.add_argument("--parallelism", type=int, default=8)
    run_syn.add_argument("--rate", type=float, default=100_000.0)
    _add_common(run_syn)

    throughput = commands.add_parser(
        "throughput", help="sustainable-throughput search for an app"
    )
    throughput.add_argument("--app", required=True)
    throughput.add_argument("--parallelism", type=int, default=8)
    _add_common(throughput)

    train = commands.add_parser(
        "train", help="build a corpus and fairly compare cost models"
    )
    train.add_argument("--count", type=int, default=400)
    _add_common(train)

    experiment = commands.add_parser(
        "experiment", help="regenerate one paper figure"
    )
    experiment.add_argument(
        "figure",
        choices=[
            "fig3-top", "fig3-bottom", "fig4-top", "fig4-bottom",
            "fig5", "fig6",
        ],
    )
    _add_common(experiment)

    bench = commands.add_parser(
        "bench",
        help="engine performance benchmark (events/sec on fixed seeds)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small budgets for CI smoke runs",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="fail if throughput regressed vs the committed "
        "BENCH_engine.json",
    )
    bench.add_argument(
        "--write", action="store_true",
        help="record the measured numbers in BENCH_engine.json",
    )
    bench.add_argument(
        "--report", default="BENCH_engine.json",
        help="path of the benchmark report file",
    )
    bench.add_argument(
        "--no-sweep", action="store_true",
        help="skip the parallel-sweep wall-clock measurement",
    )
    bench.add_argument(
        "--timeout", type=float, default=None,
        help="per-workload wall-clock guard in seconds; a workload "
        "exceeding it fails the bench with its name",
    )
    bench.add_argument(
        "--shard-identity", type=int, default=None, metavar="K",
        help="instead of benchmarking, verify that K-shard execution "
        "(in-process and forked) is bit-identical to the serial run "
        "and exit non-zero on any divergence",
    )

    exp4 = commands.add_parser(
        "exp4",
        help="elastic runtime grid: autoscaling policies x chaos "
        "scenarios, scored on SLO-violation-seconds vs resource-hours",
    )
    exp4.add_argument(
        "--policies", nargs="+", default=None,
        help="policy specs to compare (default: none, reactive, "
        "predictive with tuned parameters)",
    )
    exp4.add_argument(
        "--scenarios", nargs="+", default=None,
        help="scenario cells as name=spec (e.g. spike=spike:at=0.5) "
        "or bare names from the default grid "
        "(baseline/spike/straggler/failure)",
    )
    exp4.add_argument(
        "--quick", action="store_true",
        help="one short repeat per cell (the CI chaos-smoke shape)",
    )
    exp4.add_argument(
        "--slo-ms", type=float, default=150.0,
        help="latency SLO in milliseconds (default 150)",
    )
    exp4.add_argument("--seed", type=int, default=0)
    exp4.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for grid cells (1 = serial)",
    )
    exp4.add_argument(
        "--json-out", default=None,
        help="also write the full JSON report to this path",
    )

    exp5 = commands.add_parser(
        "exp5",
        help="fault-tolerance grid: checkpoint intervals x node "
        "failures x delivery modes, scored on recovery time, replay "
        "volume and result correctness vs a failure-free oracle",
    )
    exp5.add_argument(
        "--intervals-ms", nargs="+", type=float, default=None,
        help="checkpoint intervals in milliseconds "
        "(default: 50 100 200)",
    )
    exp5.add_argument(
        "--scenarios", nargs="+", default=None,
        help="failure cells as name=spec "
        "(e.g. early=failure:at=0.3,duration=0.1) or bare names from "
        "the default grid (early-failure/late-failure)",
    )
    exp5.add_argument(
        "--deliveries", nargs="+", default=None,
        choices=("exactly_once", "at_least_once"),
        help="delivery guarantees to compare (default: both)",
    )
    exp5.add_argument(
        "--quick", action="store_true",
        help="one interval, one failure per delivery mode "
        "(the CI recovery-smoke shape)",
    )
    exp5.add_argument("--seed", type=int, default=0)
    exp5.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for grid cells (1 = serial)",
    )
    exp5.add_argument(
        "--json-out", default=None,
        help="also write the full JSON report to this path",
    )

    trace = commands.add_parser(
        "trace",
        help="profile one run: write trace.json (Chrome trace_event) "
        "and metrics.jsonl (per-operator time series)",
    )
    target = trace.add_mutually_exclusive_group()
    target.add_argument(
        "--app", default="WC",
        help="application to trace — abbreviation or name "
        "('WC', 'wordcount', 'Word Count'; default WC)",
    )
    target.add_argument(
        "--structure", default=None,
        choices=[s.value for s in QueryStructure],
        help="trace a generated synthetic PQP instead of an app",
    )
    trace.add_argument("--parallelism", type=int, default=4)
    trace.add_argument("--rate", type=float, default=100_000.0)
    trace.add_argument(
        "--max-tuples", type=int, default=2500,
        help="tuples emitted per source subtask",
    )
    trace.add_argument("--sim-time", type=float, default=30.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--dilation", type=float, default=25.0)
    trace.add_argument(
        "--sample-interval", type=float, default=0.25,
        help="metrics sampling period in simulated seconds",
    )
    trace.add_argument(
        "--out", default="trace-out",
        help="output directory for trace.json and metrics.jsonl",
    )
    trace.add_argument(
        "--cluster", default="m510",
        help="hardware type for a homogeneous cluster (default m510)",
    )
    trace.add_argument(
        "--hetero", action="store_true",
        help="use the mixed c6525_25g+c6320 heterogeneous cluster",
    )
    trace.add_argument("--nodes", type=int, default=4)

    tables = commands.add_parser(
        "tables", help="render the paper's configuration tables"
    )
    tables.add_argument(
        "which", choices=["1", "2", "4"], help="table number"
    )

    lint = commands.add_parser(
        "lint-plan",
        help="run the static pre-flight analyzer over plans",
    )
    lint.add_argument(
        "--app", nargs="*", default=None,
        help="app abbreviations to lint (e.g. WC SG)",
    )
    lint.add_argument(
        "--all-apps", action="store_true",
        help="lint every built-in application plan",
    )
    lint.add_argument(
        "--structure", default=None,
        choices=[s.value for s in QueryStructure],
        help="lint a freshly generated synthetic PQP instead",
    )
    lint.add_argument("--parallelism", type=int, default=4)
    lint.add_argument("--rate", type=float, default=100_000.0)
    lint.add_argument(
        "--strict", action="store_true",
        help="treat warnings as errors for the exit code",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        dest="output_format",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--batch", action="store_true",
        help="additionally run the advisory BAT7xx batch-friendliness "
        "rules (for plans destined for the columnar micro-batch "
        "executor)",
    )
    lint.add_argument(
        "--checkpoint-ms", type=float, default=None,
        help="additionally run the FT7xx checkpoint-readiness rules "
        "against this checkpoint interval in milliseconds (for plans "
        "destined to run with fault tolerance)",
    )
    lint.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="additionally run the SHD7xx shardability rules against "
        "this shard count (for plans destined for sharded execution)",
    )
    lint.add_argument(
        "--cluster", default="m510",
        help="hardware type for a homogeneous cluster (default m510)",
    )
    lint.add_argument(
        "--hetero", action="store_true",
        help="use the mixed c6525_25g+c6320 heterogeneous cluster",
    )
    lint.add_argument("--nodes", type=int, default=10)
    lint.add_argument("--seed", type=int, default=0)

    san = commands.add_parser(
        "sanitize",
        help="run the determinism sanitizer (DET rules) over code",
    )
    san.add_argument(
        "paths", nargs="*",
        help="files or directories to scan; default: the installed "
        "repro package tree when no apps are selected either",
    )
    san.add_argument(
        "--app", nargs="*", default=None,
        help="sanitize the modules of these apps (abbreviation or name)",
    )
    san.add_argument(
        "--all-apps", action="store_true",
        help="sanitize every built-in application module",
    )
    san.add_argument(
        "--runtime", action="store_true",
        help="additionally run each selected app briefly with the "
        "race detector attached",
    )
    san.add_argument("--parallelism", type=int, default=2)
    san.add_argument("--rate", type=float, default=100_000.0)
    san.add_argument("--seed", type=int, default=0)
    san.add_argument(
        "--strict", action="store_true",
        help="treat warnings as errors for the exit code",
    )
    san.add_argument(
        "--format", choices=["text", "json"], default="text",
        dest="output_format",
    )
    san.add_argument(
        "--list-rules", action="store_true",
        help="print the DET rule family and exit",
    )
    return parser


def _cmd_list_apps() -> int:
    from repro.apps import APP_INFOS

    rows = [
        [
            info.abbrev, info.name, info.area,
            "yes" if info.uses_udo else "no", info.data_intensity,
        ]
        for info in APP_INFOS.values()
    ]
    print(
        render_table(
            ["abbrev", "application", "area", "UDO", "intensity"],
            rows,
            title="PDSP-Bench application suite (Table 2)",
        )
    )
    return 0


def _cmd_run_app(args) -> int:
    bench = PDSPBench(
        _cluster_from_args(args),
        storage_dir=args.storage,
        runner_config=_runner_config(args),
        seed=args.seed,
    )
    record = bench.run_application(
        args.app, parallelism=args.parallelism, event_rate=args.rate
    )
    print(
        render_table(
            ["metric", "value"],
            [
                ["application", record.workload_name],
                ["cluster", record.cluster_name],
                ["parallelism", args.parallelism],
                ["event rate (ev/s)", args.rate],
                [
                    "median latency (ms)",
                    record.metrics["mean_median_latency_ms"],
                ],
                ["throughput (res/s)", record.metrics["mean_throughput"]],
            ],
            title="run-app result",
        )
    )
    return 0


def _cmd_run_suite(args) -> int:
    bench = PDSPBench(
        _cluster_from_args(args),
        storage_dir=args.storage,
        runner_config=_runner_config(args),
        seed=args.seed,
    )
    records = bench.run_suite(
        parallelism=args.parallelism,
        apps=args.apps,
        event_rate=args.rate,
    )
    rows = [
        [
            record.workload_name,
            record.metrics["mean_median_latency_ms"],
            record.metrics["mean_throughput"],
        ]
        for record in records
    ]
    print(
        render_table(
            ["application", "median latency (ms)",
             "throughput (res/s)"],
            rows,
            title=f"suite @ parallelism {args.parallelism}, "
            f"{args.rate:g} ev/s",
        )
    )
    return 0


def _cmd_run_synthetic(args) -> int:
    bench = PDSPBench(
        _cluster_from_args(args),
        storage_dir=args.storage,
        runner_config=_runner_config(args),
        seed=args.seed,
    )
    record = bench.run_synthetic(
        QueryStructure(args.structure),
        parallelism=args.parallelism,
        event_rate=args.rate,
    )
    print(
        render_table(
            ["metric", "value"],
            [
                ["structure", args.structure],
                ["parallelism", args.parallelism],
                [
                    "median latency (ms)",
                    record.metrics["mean_median_latency_ms"],
                ],
            ],
            title="run-synthetic result",
        )
    )
    return 0


def _cmd_throughput(args) -> int:
    runner = BenchmarkRunner(
        _cluster_from_args(args), _runner_config(args)
    )
    result = sustainable_throughput(
        runner, args.app, parallelism=args.parallelism
    )
    print(f"{args.app} @ parallelism {args.parallelism}: "
          f"{result.describe()}")
    print(
        render_table(
            ["rate (ev/s)", "median latency (ms)"],
            [[rate, latency] for rate, latency in result.probed],
            title="probed configurations",
        )
    )
    return 0


def _cmd_train(args) -> int:
    bench = PDSPBench(
        _cluster_from_args(args),
        storage_dir=args.storage,
        runner_config=_runner_config(args),
        seed=args.seed,
    )
    corpus = bench.build_corpus(count=args.count)
    reports = bench.train_models(corpus)
    rows = [
        [
            name,
            report.q_error["median"],
            report.q_error["p95"],
            report.training.train_time_s,
            report.training.num_parameters,
        ]
        for name, report in reports.items()
    ]
    print(
        render_table(
            ["model", "median q-error", "p95 q-error", "train (s)",
             "params"],
            rows,
            title=f"cost models on a {args.count}-query corpus",
        )
    )
    return 0


def _cmd_experiment(args) -> int:
    from repro.core import experiments

    config = _runner_config(args)
    if args.figure == "fig3-top":
        figures = [experiments.figure3_top(runner_config=config)]
    elif args.figure == "fig3-bottom":
        figures = [experiments.figure3_bottom(runner_config=config)]
    elif args.figure == "fig4-top":
        figures = [experiments.figure4_top(runner_config=config)]
    elif args.figure == "fig4-bottom":
        figures = [experiments.figure4_bottom(runner_config=config)]
    elif args.figure == "fig5":
        figures = [experiments.figure5()]
    else:
        figures = list(experiments.figure6(workers=args.workers))
    for figure in figures:
        print(render_figure(figure))
    return 0


def _cmd_exp4(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.core.experiments.exp4 import (
        DEFAULT_POLICIES,
        DEFAULT_SCENARIOS,
        policy_comparison,
    )

    policies = (
        tuple(args.policies) if args.policies else DEFAULT_POLICIES
    )
    named = dict(DEFAULT_SCENARIOS)
    if args.scenarios:
        scenarios = []
        for item in args.scenarios:
            if "=" in item:
                name, _, spec = item.partition("=")
                scenarios.append((name, spec))
            elif item in named:
                scenarios.append((item, named[item]))
            else:
                print(
                    f"error: unknown scenario {item!r}; use name=spec "
                    f"or one of: {', '.join(named)}",
                    file=sys.stderr,
                )
                return 2
    else:
        scenarios = list(DEFAULT_SCENARIOS)

    report = policy_comparison(
        policies=policies,
        scenarios=tuple(scenarios),
        slo_latency=args.slo_ms / 1e3,
        quick=args.quick,
        seed=args.seed,
        workers=args.workers,
    )
    rows = []
    for cell in report["cells"]:
        if cell.get("determinism_error"):
            rows.append(
                [cell["policy"], cell["scenario"], "DET-ERROR",
                 "", "", ""]
            )
            continue
        rows.append(
            [
                cell["policy"],
                cell["scenario"],
                f"{cell['slo_violation_s']:.3f}",
                f"{cell['resource_hours'] * 3600.0:.2f}",
                f"{cell['rescales']:.1f}",
                f"{cell['p50_latency_ms']:.1f}",
            ]
        )
    print(
        render_table(
            [
                "policy", "scenario", "SLO viol (s)",
                "resource (s)", "rescales", "p50 (ms)",
            ],
            rows,
            title=(
                f"exp4: elastic policies x scenarios "
                f"(SLO {args.slo_ms:g} ms"
                + (", quick)" if args.quick else ")")
            ),
        )
    )
    if args.json_out:
        Path(args.json_out).write_text(
            json_module.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json_out}")
    failed = [c for c in report["cells"] if c.get("determinism_error")]
    for cell in failed:
        print(
            f"determinism error [{cell['policy']}/{cell['scenario']}]: "
            f"{cell['determinism_error']}",
            file=sys.stderr,
        )
    return 1 if failed else 0


def _cmd_exp5(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.core.experiments.exp5 import (
        DEFAULT_DELIVERIES,
        DEFAULT_INTERVALS_MS,
        DEFAULT_SCENARIOS,
        recovery_grid,
    )

    intervals = (
        tuple(args.intervals_ms)
        if args.intervals_ms
        else DEFAULT_INTERVALS_MS
    )
    named = dict(DEFAULT_SCENARIOS)
    if args.scenarios:
        scenarios = []
        for item in args.scenarios:
            if "=" in item:
                name, _, spec = item.partition("=")
                scenarios.append((name, spec))
            elif item in named:
                scenarios.append((item, named[item]))
            else:
                print(
                    f"error: unknown scenario {item!r}; use name=spec "
                    f"or one of: {', '.join(named)}",
                    file=sys.stderr,
                )
                return 2
    else:
        scenarios = list(DEFAULT_SCENARIOS)
    deliveries = (
        tuple(args.deliveries) if args.deliveries else DEFAULT_DELIVERIES
    )

    report = recovery_grid(
        intervals_ms=intervals,
        scenarios=tuple(scenarios),
        deliveries=deliveries,
        quick=args.quick,
        seed=args.seed,
        workers=args.workers,
    )
    rows = []
    for cell in report["cells"]:
        rows.append(
            [
                f"{cell['interval_ms']:g}",
                cell["scenario"],
                cell["delivery"],
                f"{cell['checkpoints']}",
                f"{cell['recovery_time_s'] * 1e3:.1f}",
                f"{cell['replayed_events']}",
                f"{cell['duplicate_results']}",
                f"{cell['missing_vs_oracle']}/{cell['extra_vs_oracle']}",
            ]
        )
    print(
        render_table(
            [
                "ckpt (ms)", "scenario", "delivery", "ckpts",
                "recovery (ms)", "replayed", "dups", "miss/extra",
            ],
            rows,
            title=(
                f"exp5: checkpoint recovery grid "
                f"({report['oracle_results']} oracle results"
                + (", quick)" if args.quick else ")")
            ),
        )
    )
    if args.json_out:
        Path(args.json_out).write_text(
            json_module.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json_out}")
    bad = [
        c
        for c in report["cells"]
        if c["determinism_errors"]
        or c["missing_vs_oracle"]
        or (c["delivery"] == "exactly_once" and c["extra_vs_oracle"])
    ]
    for cell in bad:
        print(
            f"correctness violation "
            f"[{cell['interval_ms']:g}ms/{cell['scenario']}/"
            f"{cell['delivery']}]: "
            f"missing={cell['missing_vs_oracle']} "
            f"extra={cell['extra_vs_oracle']} "
            f"determinism_errors={cell['determinism_errors']}",
            file=sys.stderr,
        )
    return 1 if bad else 0


def _resolve_app(name: str) -> str:
    """Resolve an app given by abbreviation or (normalised) full name.

    ``wordcount``, ``word-count`` and ``Word Count`` all resolve to
    ``WC``; raises :class:`ConfigurationError` with the known names on
    a miss.
    """
    from repro.apps import APP_INFOS

    def norm(s: str) -> str:
        return "".join(c for c in s.lower() if c.isalnum())

    wanted = norm(name)
    for abbrev, info in APP_INFOS.items():
        if wanted in (norm(abbrev), norm(info.name)):
            return abbrev
    known = ", ".join(
        f"{a} ({info.name})" for a, info in APP_INFOS.items()
    )
    raise ConfigurationError(f"unknown app {name!r}; known apps: {known}")


def _cmd_trace(args) -> int:
    from pathlib import Path

    from repro.common.rng import RngFactory
    from repro.obs import EngineObserver, MetricsRegistry, SpanTracer
    from repro.obs.export import write_chrome_trace, write_metrics_jsonl
    from repro.sps.engine import SimulationConfig, StreamEngine
    from repro.sps.logical_kinds import OperatorKind
    from repro.workload.generator import (
        WorkloadGenerator,
        scale_plan_costs,
    )

    from repro.common.errors import SimulationError

    cluster = _cluster_from_args(args)
    dilation = args.dilation
    if args.structure is not None:
        generator = WorkloadGenerator(seed=args.seed)
        query = generator.generate_one(
            cluster,
            QueryStructure(args.structure),
            event_rate=args.rate / dilation,
        )
        plan = query.plan
        target = args.structure
    else:
        from repro.apps import build_app

        try:
            abbrev = _resolve_app(args.app)
        except ConfigurationError as exc:
            print(f"trace: {exc}", file=sys.stderr)
            return 2
        plan = build_app(
            abbrev, event_rate=args.rate / dilation
        ).plan
        target = abbrev
    if dilation != 1.0:
        scale_plan_costs(plan, dilation)
    plan.set_uniform_parallelism(args.parallelism)

    registry = MetricsRegistry()
    tracer = SpanTracer()
    observer = EngineObserver(
        registry=registry,
        tracer=tracer,
        sample_interval=args.sample_interval,
    )
    engine = StreamEngine(
        plan,
        cluster,
        config=SimulationConfig(
            max_tuples_per_source=args.max_tuples,
            max_sim_time=args.sim_time,
        ),
        # Same seed derivation as BenchmarkRunner repeat 0, so the
        # trace profiles exactly the run the benchmarks measure.
        rng_factory=RngFactory(args.seed * 1000),
        observer=observer,
    )
    try:
        metrics = engine.run()
    except SimulationError as exc:
        print(
            f"trace: {exc}\n(try a larger --max-tuples or --sim-time)",
            file=sys.stderr,
        )
        return 1
    summary = observer.summary()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = write_chrome_trace(
        tracer,
        out / "trace.json",
        process_names=observer.process_names(),
        thread_names=observer.thread_names(),
    )
    metrics_path = write_metrics_jsonl(
        registry,
        out / "metrics.jsonl",
        meta={
            "target": target,
            "plan": plan.name,
            "parallelism": args.parallelism,
            "event_rate": args.rate,
            "dilation": dilation,
            "seed": args.seed,
            "results": metrics.results,
            "throughput": metrics.throughput,
            "median_latency_ms": metrics.median_latency_ms,
            "sim_duration": metrics.sim_duration,
        },
        summaries=summary["ops"],
    )

    rows = [
        [
            op,
            entry["subtasks"],
            entry["tuples_in"],
            entry["tuples_out"],
            round(entry["busy_s"], 4),
            int(entry["shuffle_bytes"]),
            entry["queue_peak"],
        ]
        for op, entry in summary["ops"].items()
    ]
    print(
        render_table(
            ["operator", "subtasks", "in", "out", "busy (s)",
             "shuffle (B)", "queue peak"],
            rows,
            title=f"trace of {target} @ parallelism "
            f"{args.parallelism}, {args.rate:g} ev/s",
        )
    )
    print(f"results: {metrics.results}  "
          f"throughput: {metrics.throughput:.1f} res/s  "
          f"median latency: {metrics.median_latency_ms:.2f} ms")
    print(f"trace events: {len(tracer.events)}  "
          f"metric samples: {len(registry.series)}")
    print(f"wrote {trace_path} and {metrics_path}")

    # Cross-check: every result the run reports must have arrived at a
    # sink, so sink tuples_in sums to the reported result count.
    sink_in = sum(
        summary["ops"][op.op_id]["tuples_in"]
        for op in plan.operators_in_order()
        if op.kind is OperatorKind.SINK
    )
    if sink_in != metrics.results:
        print(
            f"ERROR: sink tuples_in ({sink_in}) != reported results "
            f"({metrics.results})",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_tables(args) -> int:
    if args.which == "1":
        print(render_table1())
    elif args.which == "2":
        return _cmd_list_apps()
    else:
        from repro.cluster import HARDWARE_CATALOG

        rows = [
            [
                spec.name, spec.cores, spec.ram_gb, spec.disk_gb,
                spec.processor, spec.clock_ghz, spec.nic_gbps,
            ]
            for spec in HARDWARE_CATALOG.values()
        ]
        print(
            render_table(
                ["node", "cores", "RAM GB", "disk GB", "processor",
                 "GHz", "NIC Gbps"],
                rows,
                title="Table 4: hardware configuration",
            )
        )
    return 0


def _lint_targets(args) -> list:
    """(name, LogicalPlan) pairs selected by the lint-plan options."""
    from repro.apps import REGISTRY, build_app

    targets = []
    abbrevs = []
    if args.all_apps or (not args.app and args.structure is None):
        abbrevs = sorted(REGISTRY)
    elif args.app:
        abbrevs = [a.upper() for a in args.app]
    for abbrev in abbrevs:
        app = build_app(abbrev, event_rate=args.rate, seed=args.seed)
        app.set_parallelism(args.parallelism)
        targets.append((abbrev, app.plan))
    if args.structure is not None:
        from repro.workload.generator import WorkloadGenerator

        generator = WorkloadGenerator(seed=args.seed)
        query = generator.generate_one(
            _cluster_from_args(args),
            QueryStructure(args.structure),
            event_rate=args.rate,
        )
        targets.append((args.structure, query.plan))
    return targets


def _cmd_lint_plan(args) -> int:
    import json as json_module

    from repro.analysis import RULE_CATALOG, analyze_plan

    if args.list_rules:
        rows = [
            [spec.code, spec.family, spec.severity.value, spec.title]
            for spec in RULE_CATALOG.values()
        ]
        print(
            render_table(
                ["code", "family", "severity", "rule"],
                rows,
                title="static plan analysis rule catalogue",
            )
        )
        return 0

    cluster = _cluster_from_args(args)
    checkpoint_interval = (
        args.checkpoint_ms / 1000.0
        if args.checkpoint_ms is not None
        else None
    )
    reports = [
        (
            name,
            analyze_plan(
                plan,
                cluster=cluster,
                batch=args.batch,
                checkpoint_interval=checkpoint_interval,
                shards=args.shards,
            ),
        )
        for name, plan in _lint_targets(args)
    ]
    failed = False
    for _, report in reports:
        if report.has_errors:
            failed = True
        elif args.strict and report.warnings():
            failed = True
    if args.output_format == "json":
        print(
            json_module.dumps(
                [
                    json_module.loads(report.to_json())
                    for _, report in reports
                ],
                indent=2,
            )
        )
    else:
        for name, report in reports:
            if report.is_clean:
                print(f"{name}: clean")
            else:
                print(report.format())
        verdict = "FAILED" if failed else "ok"
        print(
            f"linted {len(reports)} plan(s)"
            f"{' (strict)' if args.strict else ''}: {verdict}"
        )
    return 1 if failed else 0


def _sanitize_runtime_report(abbrev: str, args):
    """One short race-detected run of an app; its findings as a report."""
    from repro.analysis.diagnostics import AnalysisReport
    from repro.apps import build_app
    from repro.sps.engine import SimulationConfig, StreamEngine

    app = build_app(abbrev, event_rate=args.rate, seed=args.seed)
    app.set_parallelism(args.parallelism)
    engine = StreamEngine(
        app.plan,
        homogeneous_cluster(num_nodes=4),
        config=SimulationConfig(
            max_tuples_per_source=500, max_sim_time=2.0
        ),
        sanitize=True,
    )
    engine.run()
    report: AnalysisReport = engine.race_detector.report(
        plan_name=f"{abbrev} (runtime)"
    )
    return report


def _cmd_sanitize(args) -> int:
    import json as json_module
    from pathlib import Path

    from repro.analysis import RULE_CATALOG, sanitize_app, sanitize_paths

    if args.list_rules:
        rows = [
            [spec.code, spec.severity.value, spec.title]
            for spec in RULE_CATALOG.values()
            if spec.family == "determinism"
        ]
        print(
            render_table(
                ["code", "severity", "rule"],
                rows,
                title="determinism sanitizer rule family",
            )
        )
        return 0

    reports = []
    if args.paths:
        reports.extend(sanitize_paths(args.paths))
    abbrevs = []
    if args.all_apps:
        from repro.apps import REGISTRY

        abbrevs = sorted(REGISTRY)
    elif args.app:
        try:
            abbrevs = [_resolve_app(name) for name in args.app]
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    for abbrev in abbrevs:
        reports.append((abbrev, sanitize_app(abbrev)))
        if args.runtime:
            runtime_report = _sanitize_runtime_report(abbrev, args)
            reports.append((runtime_report.plan_name, runtime_report))
    if not reports:
        # No explicit target: sanitize the installed package tree.
        import repro

        tree = Path(repro.__file__).parent
        reports.extend(sanitize_paths([tree]))

    failed = False
    for _, report in reports:
        if report.has_errors:
            failed = True
        elif args.strict and report.warnings():
            failed = True
    if args.output_format == "json":
        print(
            json_module.dumps(
                [
                    json_module.loads(report.to_json())
                    for _, report in reports
                ],
                indent=2,
            )
        )
    else:
        dirty = [
            (name, report)
            for name, report in reports
            if not report.is_clean
        ]
        for _, report in dirty:
            print(report.format())
        verdict = "FAILED" if failed else "ok"
        print(
            f"sanitized {len(reports)} target(s), "
            f"{len(dirty)} with findings"
            f"{' (strict)' if args.strict else ''}: {verdict}"
        )
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list-apps":
        return _cmd_list_apps()
    if args.command == "run-app":
        return _cmd_run_app(args)
    if args.command == "run-suite":
        return _cmd_run_suite(args)
    if args.command == "run-synthetic":
        return _cmd_run_synthetic(args)
    if args.command == "throughput":
        return _cmd_throughput(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "exp4":
        return _cmd_exp4(args)
    if args.command == "exp5":
        return _cmd_exp5(args)
    if args.command == "bench":
        from repro.core.perf import run_bench, run_shard_identity

        if args.shard_identity is not None:
            failures = run_shard_identity(
                args.shard_identity, quick=args.quick
            )
            if failures:
                for message in failures:
                    print(f"SHARD IDENTITY FAILED: {message}")
                return 1
            print(
                f"shard identity ok: shards={args.shard_identity} "
                "(inline and forked) bit-identical to the serial run"
            )
            return 0
        return run_bench(
            quick=args.quick,
            check=args.check,
            write=args.write,
            report_path=args.report,
            with_sweep=not args.no_sweep,
            timeout=args.timeout,
        )
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "tables":
        return _cmd_tables(args)
    if args.command == "lint-plan":
        return _cmd_lint_plan(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
