"""Static plan analysis: pre-flight diagnostics for PQPs.

The analyzer inspects a :class:`~repro.sps.logical.LogicalPlan` (plus,
optionally, the target cluster and placement strategy) *before* anything
executes and emits :class:`Diagnostic` records with stable rule codes in
six families — DAG structure (``PLAN``), schema propagation (``SCH``),
keyed-state partitioning (``KEY``), window sanity (``WIN``), resource
feasibility (``RES``) and cost/selectivity sanity (``COST``).

Entry points:

- :func:`analyze_plan` — collect every diagnostic, never raises.
- :func:`preflight` — raise :class:`PreflightError` on any ERROR.
- ``repro lint-plan`` — the CLI front-end.
"""

from repro.analysis.analyzer import PlanAnalyzer, analyze_plan, preflight
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    PreflightError,
    Severity,
)
from repro.analysis.rules import RULE_CATALOG, RuleSpec

__all__ = [
    "PlanAnalyzer",
    "analyze_plan",
    "preflight",
    "AnalysisReport",
    "Diagnostic",
    "PreflightError",
    "Severity",
    "RULE_CATALOG",
    "RuleSpec",
]
