"""Static plan analysis: pre-flight diagnostics for PQPs.

The analyzer inspects a :class:`~repro.sps.logical.LogicalPlan` (plus,
optionally, the target cluster and placement strategy) *before* anything
executes and emits :class:`Diagnostic` records with stable rule codes in
seven families — DAG structure (``PLAN``), schema propagation (``SCH``),
keyed-state partitioning (``KEY``), window sanity (``WIN``), resource
feasibility (``RES``), cost/selectivity sanity (``COST``) and
determinism (``DET``).

Entry points:

- :func:`analyze_plan` — collect every diagnostic, never raises.
- :func:`preflight` — raise :class:`PreflightError` on any ERROR.
- ``repro lint-plan`` — the CLI front-end.
- :func:`sanitize_paths` / :func:`sanitize_app` — the determinism
  sanitizer's code-level AST pass (``repro sanitize``).
- :class:`RaceDetector` / :func:`compare_ledgers` — the runtime race
  detector behind ``run_plan(sanitize=True)``.
"""

from repro.analysis.analyzer import PlanAnalyzer, analyze_plan, preflight
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    PreflightError,
    Severity,
)
from repro.analysis.racecheck import RaceDetector, compare_ledgers
from repro.analysis.rules import RULE_CATALOG, RuleSpec
from repro.analysis.sanitizer import (
    sanitize_app,
    sanitize_callable,
    sanitize_file,
    sanitize_paths,
    sanitize_plan_sources,
    sanitize_source,
)

__all__ = [
    "PlanAnalyzer",
    "analyze_plan",
    "preflight",
    "AnalysisReport",
    "Diagnostic",
    "PreflightError",
    "Severity",
    "RULE_CATALOG",
    "RuleSpec",
    "RaceDetector",
    "compare_ledgers",
    "sanitize_app",
    "sanitize_callable",
    "sanitize_file",
    "sanitize_paths",
    "sanitize_plan_sources",
    "sanitize_source",
]
