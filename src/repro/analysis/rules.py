"""The static-analysis rule catalogue.

Every rule inspects one aspect of a logical plan (plus, optionally, the
target cluster and placement strategy) and yields
:class:`~repro.analysis.diagnostics.Diagnostic` records with a stable code.
Codes are grouped into six families, mirroring what a real engine's
pre-deployment validator checks before submitting a topology:

========  ==========================================================
family    codes
========  ==========================================================
dag       ``PLAN001``-``PLAN010`` — DAG structure and connectivity
schema    ``SCH101``-``SCH106``  — schema propagation and typing
keying    ``KEY201``-``KEY204``  — keyed-state partitioning contracts
window    ``WIN301``-``WIN305``  — window sanity
resource  ``RES401``-``RES403``  — cluster/slot feasibility
cost      ``COST501``-``COST506`` — cost, selectivity and state sanity
determinism  ``DET601``-``DET609`` — reproducibility hazards
batch     ``BAT701``-``BAT703`` — columnar micro-batch friendliness
ft        ``FT701``-``FT703``  — checkpoint/recovery readiness
shard     ``SHD701``-``SHD704`` — sharded-execution friendliness
========  ==========================================================

The determinism family is different in kind: DET601-DET606 are *code*
rules applied by the AST sanitizer (:mod:`repro.analysis.sanitizer`) to
operator source rather than to plan structure, and DET607-DET609 are
emitted at run time by the race detector
(:mod:`repro.analysis.racecheck`). They share the catalogue so
``repro sanitize --list-rules`` and diagnostics speak one vocabulary.

The batch family is advisory and mode-specific: its findings only
matter when a plan is destined for the columnar micro-batch executor
(:mod:`repro.sps.batch`), so it lives in :data:`BATCH_RULES` rather
than :data:`ALL_RULES` and runs only on request
(``repro lint-plan --batch`` or ``analyze_plan(..., batch=True)``).
A scalar-mode plan full of UDOs is perfectly healthy; the same plan
under ``batch_size=N`` would spend most of its time on the per-tuple
fallback, which BAT701 warns about.

The ft family is likewise opt-in (:data:`FT_RULES`): its findings only
matter when aligned-barrier checkpointing is enabled, so it runs when
the context carries a ``checkpoint_interval`` (``repro lint-plan
--checkpoint-ms`` or ``analyze_plan(..., checkpoint_ms=...)``). It
checks the recovery contract a checkpointed deployment relies on:
sources must be rewindable to a logged offset (FT701), stateful
operators must expose snapshotable state (FT702), and the interval must
exceed the barrier's estimated round-trip through the DAG — a tighter
cadence than barriers can complete means every checkpoint is skipped
while its predecessor is still aligning (FT703).

The shard family (:data:`SHD_RULES`) is opt-in the same way: sharded
execution (DESIGN.md §14) never changes results, so its rules are pure
speedup advice — broadcast edges that replicate traffic across every
shard boundary (SHD701), non-keyed stateful exchanges with no shard
locality (SHD702), parallelism degrees that leave shards idle (SHD703)
— plus SHD704, which predicts the engine's hard rejection of more
shards than placement nodes. It runs when the context carries a shard
count (``repro lint-plan --shards K`` or
``analyze_plan(..., shards=K)``).

Rules never raise on malformed plans: they *report*. The analyzer runs
every rule and aggregates, so a plan with five problems produces five
diagnostics rather than failing at the first, unlike
:meth:`LogicalPlan.validate`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field as dataclass_field

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.common.errors import ReproError
from repro.sps.logical import LogicalOperator, LogicalPlan, OperatorKind
from repro.sps.partitioning import (
    BroadcastPartitioner,
    ForwardPartitioner,
    HashPartitioner,
)
from repro.sps.types import DataType, Schema

__all__ = [
    "RuleSpec",
    "RULE_CATALOG",
    "AnalysisContext",
    "run_all_rules",
    "ALL_RULES",
    "BATCH_RULES",
    "FT_RULES",
    "SHD_RULES",
]


@dataclass(frozen=True)
class RuleSpec:
    """Catalogue entry of one rule code."""

    code: str
    family: str
    severity: Severity
    title: str
    rationale: str


def _spec(code, family, severity, title, rationale) -> RuleSpec:
    return RuleSpec(code, family, severity, title, rationale)


#: code -> catalogue entry; rendered by ``repro lint-plan --list-rules``
#: and documented in README.md ("Static plan analysis").
RULE_CATALOG: dict[str, RuleSpec] = {
    spec.code: spec
    for spec in (
        _spec(
            "PLAN000", "dag", Severity.ERROR,
            "duplicate operator id",
            "operator ids name state, metrics and placements; duplicates "
            "are rejected at construction (LogicalPlan.add_operator)",
        ),
        _spec(
            "PLAN001", "dag", Severity.ERROR,
            "plan has no source operator",
            "a PQP with no source emits nothing; the run would be vacuous",
        ),
        _spec(
            "PLAN002", "dag", Severity.ERROR,
            "plan has no sink operator",
            "the sink is the measuring point; without one no latency or "
            "throughput sample is ever taken",
        ),
        _spec(
            "PLAN003", "dag", Severity.ERROR,
            "plan contains a cycle",
            "stream dataflows are DAGs; a cycle deadlocks or loops tuples "
            "forever",
        ),
        _spec(
            "PLAN004", "dag", Severity.ERROR,
            "source operator has incoming edges",
            "sources generate tuples; feeding them input is meaningless",
        ),
        _spec(
            "PLAN005", "dag", Severity.ERROR,
            "operator is unreachable from any source",
            "its subtasks would idle forever and skew utilisation metrics",
        ),
        _spec(
            "PLAN006", "dag", Severity.ERROR,
            "operator cannot reach any sink",
            "a sink-less branch computes results that are never measured "
            "(and never terminates the run cleanly)",
        ),
        _spec(
            "PLAN007", "dag", Severity.ERROR,
            "malformed input ports",
            "joins need exactly ports 0 and 1; single-input operators "
            "accept port 0 only",
        ),
        _spec(
            "PLAN008", "dag", Severity.WARNING,
            "duplicate edge",
            "the same exchange twice delivers every tuple twice, silently "
            "inflating downstream rates",
        ),
        _spec(
            "PLAN009", "dag", Severity.ERROR,
            "forward edge with unequal parallelism",
            "forward channels pair producer i with consumer i; the "
            "parallelism degrees must match (Flink's constraint)",
        ),
        _spec(
            "PLAN010", "dag", Severity.ERROR,
            "sink operator has outgoing edges",
            "sinks terminate the dataflow; they cannot produce",
        ),
        _spec(
            "SCH101", "schema", Severity.WARNING,
            "source lacks an output schema",
            "without the source schema no downstream field reference can "
            "be checked",
        ),
        _spec(
            "SCH102", "schema", Severity.ERROR,
            "field index out of bounds",
            "a key/value/predicate field index past the upstream tuple "
            "width fails at the first tuple",
        ),
        _spec(
            "SCH103", "schema", Severity.ERROR,
            "join key types do not match",
            "an equi-join on differently-typed keys matches nothing (or "
            "worse, matches by accident)",
        ),
        _spec(
            "SCH104", "schema", Severity.ERROR,
            "aggregate over a non-numeric field",
            "min/max/avg/sum need numeric values; a string field raises "
            "mid-run",
        ),
        _spec(
            "SCH105", "schema", Severity.ERROR,
            "predicate incompatible with field type",
            "string functions need string fields and string literals; "
            "order comparisons need numeric fields",
        ),
        _spec(
            "SCH106", "schema", Severity.INFO,
            "operator output schema undeclared",
            "schema tracking stops here; downstream field references go "
            "unchecked",
        ),
        _spec(
            "KEY201", "keying", Severity.ERROR,
            "keyed operator without hash partitioning",
            "with parallelism > 1, tuples of one key must reach one "
            "instance; rebalance/forward splits keyed state arbitrarily",
        ),
        _spec(
            "KEY202", "keying", Severity.ERROR,
            "hash key differs from the operator's key field",
            "partitioning by a different field than the state key sends "
            "same-key tuples to different instances",
        ),
        _spec(
            "KEY203", "keying", Severity.WARNING,
            "hash partitioning with no statically known key",
            "neither the exchange nor the consumer declares a key field; "
            "unkeyed tuples would fail at run time",
        ),
        _spec(
            "KEY204", "keying", Severity.WARNING,
            "broadcast into a stateful operator",
            "every instance receives every tuple, duplicating state and "
            "multiplying emitted results",
        ),
        _spec(
            "WIN301", "window", Severity.ERROR,
            "window required but missing",
            "window aggregates and joins are defined over a window; "
            "without one the operator cannot fire",
        ),
        _spec(
            "WIN302", "window", Severity.ERROR,
            "window slide exceeds its length",
            "slide > size drops tuples that fall between windows",
        ),
        _spec(
            "WIN303", "window", Severity.ERROR,
            "non-positive window extent",
            "a zero or negative window length/slide never fires",
        ),
        _spec(
            "WIN304", "window", Severity.ERROR,
            "count-based window on a join",
            "windowed joins align both inputs in time; count windows are "
            "undefined across two streams (Table 3 joins are time-based)",
        ),
        _spec(
            "WIN305", "window", Severity.INFO,
            "window on an operator that ignores it",
            "only window aggregates and joins consume a window assigner",
        ),
        _spec(
            "RES401", "resource", Severity.ERROR,
            "operator parallelism exceeds cluster slots",
            "subtasks of one operator cannot share a slot; the plan is "
            "undeployable on this cluster",
        ),
        _spec(
            "RES402", "resource", Severity.WARNING,
            "total subtasks exceed cluster slots",
            "slot sharing stretches service times by the co-location "
            "factor; measurements mix operator cost with contention",
        ),
        _spec(
            "RES403", "resource", Severity.WARNING,
            "slot contention under the chosen placement",
            "the placement strategy stacks several subtasks on one core; "
            "their service times stretch by the load factor",
        ),
        _spec(
            "COST501", "cost", Severity.ERROR,
            "non-finite selectivity or cost",
            "NaN/inf propagates through the analytic model and corrupts "
            "the ML training corpus",
        ),
        _spec(
            "COST502", "cost", Severity.ERROR,
            "filter selectivity above 1",
            "a filter can only drop tuples; selectivity > 1 is "
            "contradictory",
        ),
        _spec(
            "COST503", "cost", Severity.WARNING,
            "selectivity above 1 without flatMap semantics",
            "only fan-out operators (flatMap, joins, UDOs) may emit more "
            "tuples than they consume",
        ),
        _spec(
            "COST504", "cost", Severity.WARNING,
            "zero-cost operator",
            "a free operator makes utilisation and enumeration degenerate",
        ),
        _spec(
            "COST505", "cost", Severity.INFO,
            "zero selectivity",
            "nothing flows downstream of this operator; the branch is "
            "effectively dead",
        ),
        _spec(
            "COST506", "cost", Severity.WARNING,
            "extreme sliding-window overlap",
            "window state is sliced, so per-tuple cost stays O(1), but "
            "each firing still combines ~2x(length/slide) slice partials "
            "and the fire heap holds one pending entry per key per "
            "overlapping window; overlaps this extreme dominate firing "
            "cost and state size",
        ),
        _spec(
            "DET601", "determinism", Severity.ERROR,
            "unseeded global RNG use",
            "module-level random/numpy.random draws bypass the per-run "
            "RngFactory derivation; two processes (or two repeats) see "
            "different streams and results stop being bit-identical",
        ),
        _spec(
            "DET602", "determinism", Severity.ERROR,
            "wall-clock read in operator logic",
            "operators live in simulated time; time.time/datetime.now "
            "leaks host wall-clock into results, which then differ on "
            "every run and every machine",
        ),
        _spec(
            "DET603", "determinism", Severity.WARNING,
            "set iteration order reaches data",
            "set iteration order depends on PYTHONHASHSEED; converting "
            "or iterating a set into tuples, word tables or RNG draws "
            "makes runs differ across processes (the apps/sentiment.py "
            "bug PR 5 fixed)",
        ),
        _spec(
            "DET604", "determinism", Severity.WARNING,
            "mutable global state in operator path",
            "module/class-level mutable state written from process() is "
            "shared across subtask instances in-process but silently "
            "forked per worker under ParallelRunner — the same plan "
            "computes different things serial vs parallel",
        ),
        _spec(
            "DET605", "determinism", Severity.WARNING,
            "id()/hash-order-dependent key",
            "id() values and builtin str hash() differ across processes; "
            "keys or ordering derived from them are not reproducible "
            "(use fields, ranks or partitioning._stable_hash)",
        ),
        _spec(
            "DET606", "determinism", Severity.WARNING,
            "fork-unsafe resource captured",
            "open files, locks and sockets created at import time are "
            "duplicated by fork; ParallelRunner children then share "
            "file offsets or deadlock on parent-held locks",
        ),
        _spec(
            "DET607", "determinism", Severity.ERROR,
            "keyed state aliased across subtasks",
            "the run delivered one key to two subtasks of a keyed "
            "operator; its state is split and window results depend on "
            "the race between instances",
        ),
        _spec(
            "DET608", "determinism", Severity.ERROR,
            "RNG stream shared across subtasks",
            "two subtasks draw from one generator object (or from "
            "identically seeded clones); draw interleaving then depends "
            "on event order and serial != parallel",
        ),
        _spec(
            "DET609", "determinism", Severity.ERROR,
            "RNG draw ledger diverged",
            "the per-stream RNG state fingerprints of a serial and a "
            "parallel run differ: some component drew a different "
            "number (or order) of values — the runs are not comparable",
        ),
        _spec(
            "BAT701", "batch", Severity.WARNING,
            "majority of operators force the scalar fallback",
            "more than half of the plan's operators have no vectorized "
            "kernel (UDOs, joins, count windows, maps without a "
            "vector_fn); under batch_size=N the columnar executor "
            "degenerates to the per-tuple path and batching buys "
            "latency without throughput",
        ),
        _spec(
            "BAT702", "batch", Severity.INFO,
            "operator has no vectorized kernel",
            "this operator runs on the per-tuple scalar fallback in "
            "batch mode; results are still correct, only the columnar "
            "fast path is lost across it",
        ),
        _spec(
            "BAT703", "batch", Severity.INFO,
            "source emits rows, not columns",
            "without a vector generator the source materialises "
            "per-tuple rows; downstream vectorized kernels need "
            "columnar input, so they fall back too — columnarity is "
            "decided at the source",
        ),
        _spec(
            "FT701", "ft", Severity.WARNING,
            "source is not replayable under checkpointing",
            "the source declares replayable=False, so a real "
            "deployment could not rewind it to a checkpointed offset; "
            "tuples emitted after the last checkpoint would be lost on "
            "recovery and exactly-once delivery cannot hold",
        ),
        _spec(
            "FT702", "ft", Severity.INFO,
            "operator state is invisible to checkpoints",
            "this UDO implements neither snapshot_state nor "
            "export_keyed_state; if it accumulates state, a checkpoint "
            "records nothing for it and recovery restarts it empty",
        ),
        _spec(
            "FT703", "ft", Severity.WARNING,
            "checkpoint interval shorter than barrier round-trip",
            "barriers flow through the DAG with the data, so a "
            "checkpoint takes at least the pipeline's end-to-end "
            "latency to align; an interval below that estimate means "
            "most triggers are skipped while the previous checkpoint "
            "is still in flight",
        ),
        _spec(
            "SHD701", "shard", Severity.WARNING,
            "broadcast edge multiplies cross-shard traffic",
            "a broadcast exchange replicates every tuple to all "
            "consumer instances, so K-1 of every K copies cross shard "
            "boundaries and ride the serialized inter-shard channels; "
            "the sharded speedup drowns in codec work",
        ),
        _spec(
            "SHD702", "shard", Severity.WARNING,
            "non-keyed stateful operator crossing shards",
            "a stateful operator fed by a non-hash exchange spreads "
            "its instances over shards while tuples reach them "
            "round-robin; nearly every input then crosses a shard "
            "boundary and the operator's state gains nothing from "
            "locality",
        ),
        _spec(
            "SHD703", "shard", Severity.INFO,
            "operator parallelism below the shard count",
            "an operator with fewer instances than shards leaves some "
            "shards without any of its work; epochs synchronise on the "
            "busiest shard, so the idle ones just wait",
        ),
        _spec(
            "SHD704", "shard", Severity.ERROR,
            "more shards than placement nodes",
            "shards partition the simulated cluster by placement node, "
            "so the engine rejects shard counts above the node count "
            "outright",
        ),
    )
}


@dataclass
class AnalysisContext:
    """Everything the rules need, computed once by the analyzer."""

    plan: LogicalPlan
    cluster: object | None = None
    placement: object | None = None
    #: op_id -> statically derived output schema (None = unknown)
    schemas: dict[str, Schema | None] = dataclass_field(default_factory=dict)
    #: partial topological order (all ops when acyclic)
    order: list[str] = dataclass_field(default_factory=list)
    has_cycle: bool = False
    #: aligned-barrier checkpoint interval in seconds; non-None enables
    #: the FT7xx readiness family
    checkpoint_interval: float | None = None
    #: intended shard count; non-None enables the SHD7xx shardability
    #: family
    shards: int | None = None

    # ------------------------------------------------------------- helpers

    def diag(
        self,
        code: str,
        message: str,
        op_id: str | None = None,
        edge: str | None = None,
        hint: str = "",
        severity: Severity | None = None,
    ) -> Diagnostic:
        """Build a diagnostic, defaulting severity from the catalogue."""
        spec = RULE_CATALOG[code]
        return Diagnostic(
            code=code,
            severity=severity or spec.severity,
            message=message,
            op_id=op_id,
            edge=edge,
            hint=hint,
        )

    def input_schema(self, op_id: str, port: int = 0) -> Schema | None:
        """Derived schema arriving at an operator's input port."""
        for edge in self.plan.in_edges(op_id):
            if edge.port == port:
                return self.schemas.get(edge.src)
        return None


def _edge_label(edge) -> str:
    return f"{edge.src}->{edge.dst}"


def _declared_key_field(op: LogicalOperator, port: int = 0) -> int | None:
    """The key field an operator's keyed state is grouped by, if declared."""
    if op.kind is OperatorKind.WINDOW_JOIN:
        key_fields = op.metadata.get("key_fields", (None, None))
        try:
            return key_fields[port]
        except (IndexError, TypeError):
            return None
    return op.metadata.get("key_field")


def _is_keyed_stateful(op: LogicalOperator) -> bool:
    """Whether the operator holds *keyed* state (needs co-partitioning)."""
    if op.kind is OperatorKind.WINDOW_JOIN:
        return True
    if op.kind is OperatorKind.WINDOW_AGG:
        return _declared_key_field(op) is not None
    if op.kind is OperatorKind.UDO:
        return _declared_key_field(op) is not None
    return False


# =============================================================== dag rules


def check_dag_structure(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """PLAN001/002/003: global plan shape."""
    plan = ctx.plan
    if not plan.sources():
        yield ctx.diag(
            "PLAN001",
            "plan has no source operator",
            hint="add a source via builders.source()",
        )
    if not plan.sinks():
        yield ctx.diag(
            "PLAN002",
            "plan has no sink operator",
            hint="add a measuring sink via builders.sink()",
        )
    if ctx.has_cycle:
        cyclic = sorted(set(plan.operators) - set(ctx.order))
        yield ctx.diag(
            "PLAN003",
            f"plan contains a cycle through {cyclic}",
            hint="stream dataflows must be acyclic",
        )


def check_connectivity(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """PLAN004/005/006/010: per-operator reachability and degree."""
    plan = ctx.plan
    forward: dict[str, list[str]] = {op: [] for op in plan.operators}
    backward: dict[str, list[str]] = {op: [] for op in plan.operators}
    for edge in plan.edges:
        forward[edge.src].append(edge.dst)
        backward[edge.dst].append(edge.src)

    def _reach(seeds: list[str], adjacency: dict[str, list[str]]) -> set:
        seen = set(seeds)
        frontier = list(seeds)
        while frontier:
            for nxt in adjacency[frontier.pop()]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    from_sources = _reach(
        [op.op_id for op in plan.sources()], forward
    )
    to_sinks = _reach([op.op_id for op in plan.sinks()], backward)
    for op in plan.operators.values():
        ins = plan.in_edges(op.op_id)
        outs = plan.out_edges(op.op_id)
        if op.kind is OperatorKind.SOURCE and ins:
            yield ctx.diag(
                "PLAN004",
                f"source {op.op_id!r} has {len(ins)} incoming edge(s)",
                op_id=op.op_id,
            )
        if op.kind is OperatorKind.SINK and outs:
            yield ctx.diag(
                "PLAN010",
                f"sink {op.op_id!r} has {len(outs)} outgoing edge(s)",
                op_id=op.op_id,
            )
        if op.kind is not OperatorKind.SOURCE and (
            op.op_id not in from_sources
        ):
            detail = (
                "has no inputs" if not ins
                else "is fed only by unreachable operators"
            )
            yield ctx.diag(
                "PLAN005",
                f"operator {op.op_id!r} {detail}; no tuple can ever "
                "reach it",
                op_id=op.op_id,
                hint="connect it downstream of a source or remove it",
            )
        if op.kind is not OperatorKind.SINK and op.op_id not in to_sinks:
            detail = (
                "has no outputs" if not outs
                else "feeds only sink-less branches"
            )
            yield ctx.diag(
                "PLAN006",
                f"operator {op.op_id!r} {detail}; its results are never "
                "measured",
                op_id=op.op_id,
                hint="route the branch into a sink or remove it",
            )


def check_ports(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """PLAN007/008: input port discipline and duplicate edges."""
    plan = ctx.plan
    seen_edges: set[tuple[str, str, int]] = set()
    for edge in plan.edges:
        key = (edge.src, edge.dst, edge.port)
        if key in seen_edges:
            yield ctx.diag(
                "PLAN008",
                f"duplicate edge {edge.src!r}->{edge.dst!r} "
                f"(port {edge.port})",
                edge=_edge_label(edge),
            )
        seen_edges.add(key)
    for op in plan.operators.values():
        ins = plan.in_edges(op.op_id)
        if not ins:
            continue
        ports = sorted(e.port for e in ins)
        if op.kind is OperatorKind.WINDOW_JOIN:
            if ports != [0, 1]:
                yield ctx.diag(
                    "PLAN007",
                    f"join {op.op_id!r} needs exactly one input on port 0 "
                    f"and one on port 1, got ports {ports}",
                    op_id=op.op_id,
                    hint="connect(left, join, port=0) and "
                    "connect(right, join, port=1)",
                )
        elif any(port != 0 for port in ports):
            yield ctx.diag(
                "PLAN007",
                f"single-input operator {op.op_id!r} must receive all "
                f"inputs on port 0, got ports {ports}",
                op_id=op.op_id,
            )


def check_forward_parallelism(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """PLAN009: forward exchanges need matching parallelism degrees."""
    plan = ctx.plan
    ops = plan.operators
    for edge in plan.edges:
        if not isinstance(edge.partitioner, ForwardPartitioner):
            continue
        src_p = ops[edge.src].parallelism
        dst_p = ops[edge.dst].parallelism
        if src_p != dst_p:
            yield ctx.diag(
                "PLAN009",
                f"forward edge {edge.src!r}->{edge.dst!r} connects "
                f"parallelism {src_p} to {dst_p}",
                edge=_edge_label(edge),
                hint="use rebalance, or equalise the degrees",
            )


# ============================================================ schema rules


def check_schemas(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """SCH101-SCH106: schema propagation and field typing."""
    plan = ctx.plan
    for op_id in ctx.order:
        op = plan.operators[op_id]
        if op.kind is OperatorKind.SOURCE:
            if op.output_schema is None:
                yield ctx.diag(
                    "SCH101",
                    f"source {op_id!r} declares no output schema",
                    op_id=op_id,
                    hint="pass schema= to builders.source()",
                )
            continue
        if op.kind is OperatorKind.WINDOW_JOIN:
            yield from _check_join_schema(ctx, op)
            continue
        upstream = ctx.input_schema(op_id)
        if op.kind is OperatorKind.WINDOW_AGG:
            yield from _check_agg_schema(ctx, op, upstream)
        elif op.kind is OperatorKind.FILTER:
            yield from _check_filter_schema(ctx, op, upstream)
        if (
            op.kind in (
                OperatorKind.MAP, OperatorKind.FLATMAP, OperatorKind.UDO
            )
            and op.output_schema is None
        ):
            yield ctx.diag(
                "SCH106",
                f"{op.kind.value} {op_id!r} declares no output schema; "
                "downstream field checks stop here",
                op_id=op_id,
                hint="pass output_schema= to the builder",
            )


def _check_bounds(
    ctx: AnalysisContext,
    op: LogicalOperator,
    schema: Schema,
    index: int | None,
    what: str,
) -> Iterator[Diagnostic]:
    if index is not None and index >= schema.width:
        yield ctx.diag(
            "SCH102",
            f"{op.op_id!r}: {what} {index} is out of bounds for the "
            f"upstream schema (width {schema.width})",
            op_id=op.op_id,
        )


def _check_agg_schema(
    ctx: AnalysisContext, op: LogicalOperator, upstream: Schema | None
) -> Iterator[Diagnostic]:
    if upstream is None:
        return
    value_field = op.metadata.get("value_field")
    key_field = _declared_key_field(op)
    yield from _check_bounds(ctx, op, upstream, key_field, "key field")
    if value_field is None:
        return
    yield from _check_bounds(ctx, op, upstream, value_field, "value field")
    if value_field < upstream.width:
        dtype = upstream.fields[value_field].dtype
        if not dtype.is_numeric:
            yield ctx.diag(
                "SCH104",
                f"{op.op_id!r}: aggregate value field {value_field} is "
                f"{dtype.value}, not numeric",
                op_id=op.op_id,
                hint="aggregate a numeric field or re-map the tuple",
            )


def _check_join_schema(
    ctx: AnalysisContext, op: LogicalOperator
) -> Iterator[Diagnostic]:
    left = ctx.input_schema(op.op_id, port=0)
    right = ctx.input_schema(op.op_id, port=1)
    left_key = _declared_key_field(op, port=0)
    right_key = _declared_key_field(op, port=1)
    if left is not None:
        yield from _check_bounds(ctx, op, left, left_key, "left key field")
    if right is not None:
        yield from _check_bounds(
            ctx, op, right, right_key, "right key field"
        )
    if (
        left is not None
        and right is not None
        and left_key is not None
        and right_key is not None
        and left_key < left.width
        and right_key < right.width
    ):
        left_type = left.fields[left_key].dtype
        right_type = right.fields[right_key].dtype
        if left_type is not right_type:
            yield ctx.diag(
                "SCH103",
                f"join {op.op_id!r} keys a {left_type.value} left field "
                f"against a {right_type.value} right field",
                op_id=op.op_id,
                hint="equi-join keys must share one type",
            )


def _check_filter_schema(
    ctx: AnalysisContext, op: LogicalOperator, upstream: Schema | None
) -> Iterator[Diagnostic]:
    if upstream is None:
        return
    index = op.metadata.get("predicate_field")
    if index is None:
        return
    yield from _check_bounds(ctx, op, upstream, index, "predicate field")
    if index >= upstream.width:
        return
    dtype = upstream.fields[index].dtype
    function = op.metadata.get("predicate_function")
    literal = op.metadata.get("predicate_literal")
    if function is None:
        return
    from repro.sps.predicates import FilterFunction

    try:
        fn = FilterFunction(function)
    except ValueError:
        return
    if not fn.applies_to(dtype):
        yield ctx.diag(
            "SCH105",
            f"filter {op.op_id!r}: {function!r} does not apply to the "
            f"{dtype.value} field {index}",
            op_id=op.op_id,
        )
    elif literal is not None:
        literal_is_str = isinstance(literal, str)
        if dtype is DataType.STRING and not literal_is_str:
            yield ctx.diag(
                "SCH105",
                f"filter {op.op_id!r}: comparing string field {index} "
                f"against non-string literal {literal!r}",
                op_id=op.op_id,
            )
        elif dtype is not DataType.STRING and literal_is_str:
            yield ctx.diag(
                "SCH105",
                f"filter {op.op_id!r}: comparing {dtype.value} field "
                f"{index} against string literal {literal!r}",
                op_id=op.op_id,
            )


# ============================================================ keying rules


def check_keyed_exchanges(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """KEY201-KEY204: keyed state needs consistent hash partitioning."""
    plan = ctx.plan
    for edge in plan.edges:
        consumer = plan.operators[edge.dst]
        partitioner = edge.partitioner
        if isinstance(partitioner, BroadcastPartitioner):
            if consumer.kind.is_stateful and consumer.parallelism > 1:
                yield ctx.diag(
                    "KEY204",
                    f"broadcast into stateful {consumer.op_id!r} "
                    f"(parallelism {consumer.parallelism}) duplicates "
                    "state per instance",
                    edge=_edge_label(edge),
                )
            continue
        if not _is_keyed_stateful(consumer):
            continue
        declared = _declared_key_field(consumer, edge.port)
        if not isinstance(partitioner, HashPartitioner):
            if consumer.parallelism > 1:
                yield ctx.diag(
                    "KEY201",
                    f"keyed {consumer.kind.value} {consumer.op_id!r} "
                    f"(parallelism {consumer.parallelism}) receives "
                    f"{partitioner.name}-partitioned input",
                    edge=_edge_label(edge),
                    hint="use hash partitioning on the key field",
                )
            continue
        hash_key = partitioner.key_field
        if (
            hash_key is not None
            and declared is not None
            and hash_key != declared
            and consumer.parallelism > 1
        ):
            yield ctx.diag(
                "KEY202",
                f"{consumer.op_id!r} keys its state by field {declared} "
                f"but the exchange hashes field {hash_key}",
                edge=_edge_label(edge),
                hint="hash by the operator's key field",
            )
        if hash_key is None and declared is None:
            yield ctx.diag(
                "KEY203",
                f"hash exchange into {consumer.op_id!r} has no key field "
                "and the operator declares none; keys must be assigned "
                "upstream at run time",
                edge=_edge_label(edge),
            )


# ============================================================ window rules


def _window_extents(window) -> tuple[float | None, float | None]:
    """(length, slide) of an assigner, reading both time and count attrs."""
    length = getattr(window, "duration", None)
    if length is None:
        length = getattr(window, "length", None)
    slide = getattr(window, "slide", None)
    return (
        float(length) if length is not None else None,
        float(slide) if slide is not None else None,
    )


def check_windows(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """WIN301-WIN305: window presence and extent sanity."""
    needs_window = (OperatorKind.WINDOW_AGG, OperatorKind.WINDOW_JOIN)
    for op in ctx.plan.operators.values():
        if op.kind in needs_window:
            if op.window is None:
                yield ctx.diag(
                    "WIN301",
                    f"{op.kind.value} {op.op_id!r} has no window assigner",
                    op_id=op.op_id,
                    hint="pass a WindowAssigner to the builder",
                )
                continue
            length, slide = _window_extents(op.window)
            if length is not None and (
                not math.isfinite(length) or length <= 0
            ):
                yield ctx.diag(
                    "WIN303",
                    f"{op.op_id!r}: window length {length} must be a "
                    "positive finite number",
                    op_id=op.op_id,
                )
            if slide is not None and (
                not math.isfinite(slide) or slide <= 0
            ):
                yield ctx.diag(
                    "WIN303",
                    f"{op.op_id!r}: window slide {slide} must be a "
                    "positive finite number",
                    op_id=op.op_id,
                )
            if (
                length is not None
                and slide is not None
                and slide > length > 0
            ):
                yield ctx.diag(
                    "WIN302",
                    f"{op.op_id!r}: window slide {slide:g} exceeds its "
                    f"length {length:g}",
                    op_id=op.op_id,
                    hint="slide must be <= window length",
                )
            if (
                op.kind is OperatorKind.WINDOW_JOIN
                and not op.window.is_time_based
            ):
                yield ctx.diag(
                    "WIN304",
                    f"join {op.op_id!r} uses a count-based window",
                    op_id=op.op_id,
                    hint="joins require time-based windows",
                )
        elif op.window is not None:
            yield ctx.diag(
                "WIN305",
                f"{op.kind.value} {op.op_id!r} carries a window assigner "
                "it never uses",
                op_id=op.op_id,
            )


# ========================================================== resource rules


def check_resources(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """RES401-RES403: slot feasibility on the target cluster."""
    cluster = ctx.cluster
    if cluster is None:
        return
    total_slots = cluster.total_slots
    plan = ctx.plan
    for op in plan.operators.values():
        if op.parallelism > total_slots:
            yield ctx.diag(
                "RES401",
                f"{op.op_id!r} wants parallelism {op.parallelism} but "
                f"the cluster has only {total_slots} task slots",
                op_id=op.op_id,
                hint="cap the degree at the cluster's core count",
            )
    total_subtasks = plan.total_subtasks()
    if total_subtasks > total_slots:
        yield ctx.diag(
            "RES402",
            f"plan needs {total_subtasks} subtasks on {total_slots} "
            "slots; subtasks will share cores",
            hint="reduce parallelism degrees or grow the cluster",
        )
    yield from _check_placement_contention(ctx, cluster)


def _check_placement_contention(
    ctx: AnalysisContext, cluster
) -> Iterator[Diagnostic]:
    strategy = ctx.placement
    if strategy is None:
        return
    from repro.sps.physical import PhysicalPlan

    try:
        physical = PhysicalPlan.from_logical(ctx.plan)
        placement = strategy.place(physical, cluster)
    except ReproError:
        return  # structural errors are reported by the dag/keying rules
    contended: dict[int, int] = {}
    for slot, load in placement.slot_load.items():
        if load > 1:
            contended[slot.node_id] = max(
                contended.get(slot.node_id, 0), load
            )
    if contended:
        nodes = ", ".join(
            f"node {node} (x{load})" for node, load in sorted(
                contended.items()
            )
        )
        yield ctx.diag(
            "RES403",
            f"{strategy.name} placement stacks subtasks on shared "
            f"cores: {nodes}",
            hint="oversubscribed cores stretch service times",
        )


# ============================================================== cost rules


#: length/slide ratio above which COST506 flags a window (every tuple
#: belongs to this many windows; the paper's sweeps stay in [1.4, 3.3]).
_EXTREME_OVERLAP = 64.0


def check_costs(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """COST501-COST506: selectivity, cost-profile and state sanity."""
    fanout_kinds = (
        OperatorKind.FLATMAP,
        OperatorKind.WINDOW_JOIN,
        OperatorKind.WINDOW_AGG,
        OperatorKind.UDO,
    )
    for op in ctx.plan.operators.values():
        values = {"selectivity": op.selectivity}
        if op.cost is not None:
            values["cost.base_cpu_s"] = op.cost.base_cpu_s
            values["cost.coord_kappa"] = op.cost.coord_kappa
        for name, value in values.items():
            if not math.isfinite(value):
                yield ctx.diag(
                    "COST501",
                    f"{op.op_id!r}: {name} is {value}",
                    op_id=op.op_id,
                )
        if not math.isfinite(op.selectivity):
            continue
        if op.selectivity > 1.0:
            if op.kind is OperatorKind.FILTER:
                yield ctx.diag(
                    "COST502",
                    f"filter {op.op_id!r} has selectivity "
                    f"{op.selectivity:g} > 1",
                    op_id=op.op_id,
                    hint="filters can only drop tuples",
                )
            elif op.kind not in fanout_kinds:
                yield ctx.diag(
                    "COST503",
                    f"{op.kind.value} {op.op_id!r} has selectivity "
                    f"{op.selectivity:g} > 1 but no fan-out semantics",
                    op_id=op.op_id,
                )
        if op.selectivity == 0.0:
            yield ctx.diag(
                "COST505",
                f"{op.op_id!r} has selectivity 0; downstream operators "
                "receive nothing",
                op_id=op.op_id,
            )
        if op.cost is not None and op.cost.base_cpu_s <= 0:
            yield ctx.diag(
                "COST504",
                f"{op.op_id!r} has non-positive base cost "
                f"{op.cost.base_cpu_s}",
                op_id=op.op_id,
            )
        if op.window is not None:
            length, slide = _window_extents(op.window)
            if (
                length is not None
                and slide is not None
                and slide > 0
                and length / slide >= _EXTREME_OVERLAP
            ):
                yield ctx.diag(
                    "COST506",
                    f"{op.op_id!r}: window length {length:g} over slide "
                    f"{slide:g} puts every tuple in "
                    f"{length / slide:.0f} windows",
                    op_id=op.op_id,
                    hint="widen the slide or shrink the window; firing "
                    "cost and pending-window state grow with the "
                    "overlap",
                )


# ============================================================= batch rules


#: fallback-operator density above which BAT701 warns: past this point
#: the columnar executor spends the majority of the plan on the
#: per-tuple path and micro-batching mostly adds latency.
_FALLBACK_DENSITY = 0.5


def _batch_fallback_reason(op: LogicalOperator) -> str | None:
    """Why ``op`` would run on the scalar fallback in batch mode.

    Mirrors the kernel dispatch of
    :meth:`repro.sps.batch.BatchStreamEngine._kernel_mode` statically:
    the operator's logic is instantiated once (factories are cheap,
    stateless constructors) and probed for a vectorized form. ``None``
    means a columnar kernel exists.
    """
    kind = op.kind
    if kind in (OperatorKind.SOURCE, OperatorKind.SINK):
        return None  # sources are BAT703's concern; sinks batch natively
    if kind is OperatorKind.WINDOW_JOIN:
        return "window joins keep per-key scalar join state"
    if kind is OperatorKind.UDO:
        return "user-defined operators run custom per-tuple logic"
    try:
        logic = op.logic_factory()
    except Exception:  # noqa: BLE001 — probing must never break linting
        return "operator logic could not be instantiated for probing"
    if kind is OperatorKind.FILTER:
        from repro.sps.operators.filter_op import FilterLogic

        if isinstance(logic, FilterLogic):
            return None
        return "custom filter logic has no columnar predicate"
    if kind in (OperatorKind.MAP, OperatorKind.FLATMAP):
        if getattr(logic, "has_vector_fn", False):
            return None
        builder = (
            "map_values" if kind is OperatorKind.MAP else "flat_map"
        )
        return (
            "no vector_fn; pass one to "
            f"builders.{builder}(..., vector_fn=...)"
        )
    if kind is OperatorKind.WINDOW_AGG:
        try:
            supports = bool(logic.supports_batch())
        except Exception:  # noqa: BLE001
            supports = False
        if supports:
            return None
        return "count-based windows keep scalar ring-buffer state"
    return None


def check_batch_friendliness(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """BAT701-BAT703: how much of the plan the columnar executor covers.

    Advisory and mode-specific — only in :data:`BATCH_RULES`.
    """
    ops = list(ctx.plan.operators.values())
    fallbacks: list[tuple[LogicalOperator, str]] = []
    for op in ops:
        reason = _batch_fallback_reason(op)
        if reason is not None:
            fallbacks.append((op, reason))
    row_sources = []
    for op in ops:
        if op.kind is not OperatorKind.SOURCE:
            continue
        try:
            logic = op.logic_factory()
        except Exception:  # noqa: BLE001
            continue
        if not getattr(logic, "has_vector_generator", False):
            row_sources.append(op)
    if ops:
        density = (len(fallbacks) + len(row_sources)) / len(ops)
        if density > _FALLBACK_DENSITY:
            yield ctx.diag(
                "BAT701",
                f"{len(fallbacks) + len(row_sources)} of {len(ops)} "
                f"operators ({density:.0%}) would run on the scalar "
                "fallback in batch mode",
                hint="keep this plan on the scalar event loop, or give "
                "its maps/flat-maps vector_fns and its sources "
                "vector generators",
            )
    for op, reason in fallbacks:
        yield ctx.diag(
            "BAT702",
            f"{op.kind.value} {op.op_id!r}: {reason}",
            op_id=op.op_id,
        )
    for op in row_sources:
        yield ctx.diag(
            "BAT703",
            f"source {op.op_id!r} has no vector generator; every "
            "downstream columnar kernel sees rows and falls back",
            op_id=op.op_id,
            hint="pass vector_generator=... to builders.source",
        )


#: Advisory batch-friendliness rules, run only on request (the findings
#: are meaningless for scalar-mode plans, and builtin apps are expected
#: to stay diagnostic-clean under the default rule set).
BATCH_RULES = (check_batch_friendliness,)


# ================================================================ ft rules

#: Nominal one-hop network latency used by the FT703 round-trip
#: estimate when no cluster is given (the homogeneous clusters' same-
#: rack latency is of this order).
_FT_NOMINAL_HOP_LATENCY_S = 1e-3


def _longest_path_service(ctx: AnalysisContext) -> tuple[int, float]:
    """(hops, summed per-hop cost) of the longest source->sink path.

    Per-hop cost is one nominal network latency plus the downstream
    operator's ``base_cpu_s`` — the minimum time a barrier spends per
    stage when every queue is empty. Real alignment behind a backlog
    takes longer, so FT703 is a *lower-bound* check: failing it means
    the cadence cannot work even on an idle pipeline.
    """
    hops: dict[str, int] = {}
    cost: dict[str, float] = {}
    for op_id in ctx.order:
        op = ctx.plan.operators[op_id]
        step = _FT_NOMINAL_HOP_LATENCY_S
        if op.cost is not None:
            step += op.cost.base_cpu_s
        best_h, best_c = 0, 0.0
        for edge in ctx.plan.in_edges(op_id):
            if edge.src in hops and hops[edge.src] + 1 > best_h:
                best_h = hops[edge.src] + 1
                best_c = cost[edge.src] + step
        hops[op_id] = best_h
        cost[op_id] = best_c
    if not hops:
        return 0, 0.0
    deepest = max(hops, key=lambda op_id: (hops[op_id], cost[op_id]))
    return hops[deepest], cost[deepest]


def check_ft_readiness(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """FT701-FT703: can this plan honour its checkpointing contract?

    Opt-in via ``ctx.checkpoint_interval`` — only in :data:`FT_RULES`.
    """
    interval = ctx.checkpoint_interval
    if interval is None:
        return
    from repro.sps.operators.base import OperatorLogic

    for op in ctx.plan.operators.values():
        if op.kind is OperatorKind.SOURCE:
            if not op.metadata.get("replayable", True):
                yield ctx.diag(
                    "FT701",
                    f"source {op.op_id!r} declares replayable=False; "
                    "recovery cannot rewind it to a checkpointed "
                    "offset",
                    op_id=op.op_id,
                    hint="feed the source from a durable log, or "
                    "accept data loss and run with "
                    "delivery=at_least_once",
                )
        elif op.kind is OperatorKind.UDO:
            try:
                logic = op.logic_factory()
            except Exception:  # noqa: BLE001
                continue
            cls = type(logic)
            if (
                cls.snapshot_state is OperatorLogic.snapshot_state
                and cls.export_keyed_state
                is OperatorLogic.export_keyed_state
            ):
                yield ctx.diag(
                    "FT702",
                    f"UDO {op.op_id!r} overrides neither "
                    "snapshot_state nor export_keyed_state; "
                    "checkpoints record nothing for it",
                    op_id=op.op_id,
                    hint="implement snapshot_state/restore_state (or "
                    "the keyed-state migration pair) on its logic",
                )
    hops, rtt = _longest_path_service(ctx)
    if hops and interval < rtt:
        yield ctx.diag(
            "FT703",
            f"checkpoint interval {interval * 1e3:g} ms is below the "
            f"estimated barrier round-trip {rtt * 1e3:.2f} ms over "
            f"the plan's {hops}-hop critical path",
            hint="raise --checkpoint-ms above the pipeline's "
            "end-to-end latency",
        )


#: Checkpoint/recovery readiness rules, run only when the analysis
#: context carries a checkpoint interval.
FT_RULES = (check_ft_readiness,)


# ============================================================= shard rules


def check_shardability(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """SHD701-SHD704: will this plan profit from sharded execution?

    Opt-in via ``ctx.shards`` (``repro lint-plan --shards K``) — only in
    :data:`SHD_RULES`. Sharding never changes results (the shard
    universe is K-invariant, DESIGN.md §14), so every finding here is
    about *speedup*, except SHD704 which predicts an outright
    :class:`~repro.common.errors.ConfigurationError` from the engine.
    """
    shards = ctx.shards
    if shards is None or shards < 2:
        return
    plan = ctx.plan
    if ctx.cluster is not None:
        nodes = len(ctx.cluster.nodes)
        if shards > nodes:
            yield ctx.diag(
                "SHD704",
                f"{shards} shards requested but the cluster has only "
                f"{nodes} placement node(s) to partition",
                hint="use --shards <= the cluster's node count",
            )
    for edge in plan.edges:
        consumer = plan.operators[edge.dst]
        partitioner = edge.partitioner
        if isinstance(partitioner, BroadcastPartitioner):
            if consumer.parallelism > 1:
                yield ctx.diag(
                    "SHD701",
                    f"broadcast into {consumer.op_id!r} (parallelism "
                    f"{consumer.parallelism}) replicates every tuple "
                    f"across all {shards} shards",
                    edge=_edge_label(edge),
                    hint="key the exchange, or keep broadcast-heavy "
                    "plans on the single-kernel engine",
                )
            continue
        if (
            consumer.kind.is_stateful
            and consumer.parallelism > 1
            and not isinstance(partitioner, HashPartitioner)
        ):
            yield ctx.diag(
                "SHD702",
                f"stateful {consumer.kind.value} {consumer.op_id!r} "
                f"receives {partitioner.name}-partitioned input; its "
                "instances span shards with no key locality",
                edge=_edge_label(edge),
                hint="hash-partition the exchange on the state key",
            )
    for op in plan.operators.values():
        if 1 < op.parallelism < shards:
            yield ctx.diag(
                "SHD703",
                f"{op.kind.value} {op.op_id!r} has parallelism "
                f"{op.parallelism} < {shards} shards; some shards "
                "carry none of its instances",
                op_id=op.op_id,
            )


#: Shardability rules, run only when the analysis context carries a
#: shard count.
SHD_RULES = (check_shardability,)


#: All rules, in reporting order.
ALL_RULES = (
    check_dag_structure,
    check_connectivity,
    check_ports,
    check_forward_parallelism,
    check_schemas,
    check_keyed_exchanges,
    check_windows,
    check_resources,
    check_costs,
)


def run_all_rules(
    ctx: AnalysisContext, include_batch: bool = False
) -> Iterable[Diagnostic]:
    """Run every rule over a prepared context.

    ``include_batch`` appends the advisory :data:`BATCH_RULES` family —
    opt-in because its findings only matter for plans destined for the
    columnar micro-batch executor.
    """
    rules = ALL_RULES + BATCH_RULES if include_batch else ALL_RULES
    if ctx.checkpoint_interval is not None:
        rules = rules + FT_RULES
    if ctx.shards is not None:
        rules = rules + SHD_RULES
    for rule in rules:
        yield from rule(ctx)
