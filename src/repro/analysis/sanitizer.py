"""The determinism sanitizer: a code-level AST lint (``dsan``).

Every optimization the engine has absorbed rests on one invariant:
*identical inputs produce bit-identical results*, serially and under
:class:`~repro.core.parallel.ParallelRunner` fan-out. That invariant is
easy to break from user code — an unseeded ``np.random`` draw, a
wall-clock read inside ``process()``, a word table built by iterating a
``set`` — and golden tests only catch the breakage after the fact (and
only on the seeds they pin; the PR 5 ``apps/sentiment.py`` hash-order
bug survived two PRs that way).

This module walks Python *source* (files, directories, app modules or
live callables) and flags the DET rule family of the shared catalogue
(:data:`repro.analysis.rules.RULE_CATALOG`):

- **DET601** — unseeded ``random`` / ``numpy.random`` module-level draws
  anywhere in scanned code (all randomness must flow through
  :class:`~repro.common.rng.RngFactory`-derived generators).
- **DET602** — wall-clock reads (``time.time``, ``datetime.now``, ...)
  inside *operator scope* (see below); operators live in simulated time.
- **DET603** — ``set`` iteration order reaching data: ``for x in s``,
  ``list(s)``, ``tuple(s)``, ``",".join(s)`` or ``enumerate(s)`` over a
  statically set-typed expression, without a ``sorted()`` wrapper.
- **DET604** — mutable module-level state mutated from operator scope
  (plus ``global`` statements there, and mutable class-level literals on
  operator classes): shared in-process, silently forked per worker.
- **DET605** — ``id()`` / builtin ``hash()`` in operator scope: both
  differ across processes (``PYTHONHASHSEED``, allocator addresses).
- **DET606** — fork-unsafe resources (``open``, ``threading.Lock``,
  sockets) created at import time; fork duplicates them.

**Operator scope** is determined structurally: methods of classes whose
base names contain ``Logic`` or ``UDO``, functions named like the
:class:`~repro.sps.operators.base.OperatorLogic` surface (``process``,
``on_time``, ``flush``, ``generate``, ``work_units``), and functions
whose first parameter is ``state`` or that take an ``rng`` parameter
(the :class:`~repro.sps.operators.udo.FunctionUDO` and sampler
conventions). DET601/603/606 apply everywhere in scanned code since
this codebase runs *all* of it under the determinism contract.

A finding can be acknowledged in place with a trailing ``# dsan: ok``
comment (optionally naming codes: ``# dsan: ok DET603``) — the escape
hatch for intentional wall-clock use such as benchmark harness timing.

Findings reuse :class:`~repro.analysis.diagnostics.Diagnostic` with
``op_id`` carrying ``"<file>:<line>"`` so text and JSON renderings stay
schema-compatible with ``repro lint-plan``.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from pathlib import Path

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.rules import RULE_CATALOG

__all__ = [
    "sanitize_source",
    "sanitize_file",
    "sanitize_paths",
    "sanitize_callable",
    "sanitize_app",
    "sanitize_plan_sources",
]

#: function names that put a def into operator scope regardless of class
_OPERATOR_FUNCS = frozenset(
    {"process", "on_time", "flush", "generate", "work_units"}
)

#: random-module attributes that are *allowed* (seeded construction)
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: stdlib ``random`` attributes that draw from (or reseed) the global
#: stream, plus the explicitly nondeterministic SystemRandom
_STDLIB_RANDOM_DRAWS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "getrandbits",
        "seed",
        "setstate",
        "SystemRandom",
    }
)

#: wall-clock reads on the ``time`` module
_TIME_CLOCKS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "localtime",
        "gmtime",
        "ctime",
    }
)

#: wall-clock constructors on ``datetime.datetime`` / ``datetime.date``
_DATETIME_CLOCKS = frozenset({"now", "utcnow", "today"})

#: method calls that mutate a dict/list/set in place
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: constructors whose call yields a fork-unsafe resource
_FORK_UNSAFE_CALLS = {
    "open": "an open file handle",
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a condition variable",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a semaphore",
    "threading.Event": "an event",
    "multiprocessing.Lock": "a lock",
    "multiprocessing.RLock": "a lock",
    "multiprocessing.Queue": "a queue",
    "socket.socket": "a socket",
}

#: sequence constructors through which set order reaches data
_ORDER_SINKS = frozenset({"list", "tuple", "enumerate", "iter"})


def _diag(code: str, location: str, message: str) -> Diagnostic:
    spec = RULE_CATALOG[code]
    return Diagnostic(
        code=code,
        severity=spec.severity,
        message=message,
        op_id=location,
        hint=spec.rationale,
    )


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Imports:
    """Resolves local aliases back to canonical module/attr paths."""

    def __init__(self) -> None:
        #: alias -> module path (``np`` -> ``numpy``)
        self.modules: dict[str, str] = {}
        #: name -> ``module.attr`` (``now`` -> ``datetime.datetime.now``)
        self.names: dict[str, str] = {}

    def collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve_call(self, func: ast.AST) -> str | None:
        """Canonical dotted path of a call target, if resolvable."""
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.modules:
            base = self.modules[head]
            return f"{base}.{rest}" if rest else base
        if head in self.names:
            base = self.names[head]
            return f"{base}.{rest}" if rest else base
        return dotted


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("dict", "list", "set")
    return False


def _suppressed(source_lines: list[str], lineno: int, code: str) -> bool:
    """Whether the line acknowledges the finding via ``# dsan: ok``."""
    if not 1 <= lineno <= len(source_lines):
        return False
    line = source_lines[lineno - 1]
    marker = line.find("# dsan: ok")
    if marker < 0:
        return False
    tail = line[marker + len("# dsan: ok") :].strip()
    return not tail or code in tail.split()


class _Sanitizer(ast.NodeVisitor):
    """One pass over one module's AST, yielding DET diagnostics."""

    def __init__(self, tree: ast.Module, filename: str) -> None:
        self.filename = filename
        self.imports = _Imports()
        self.imports.collect(tree)
        self.findings: list[Diagnostic] = []
        #: module-level names bound to mutable literals
        self.module_mutables: set[str] = set()
        #: module-level names statically known to be sets
        self.module_sets: set[str] = set()
        #: names (any scope) known to be sets, shadowing-tolerant
        self._set_names: set[str] = set()
        #: stack of (function node, is_operator_scope)
        self._scope: list[tuple[ast.AST, bool]] = []
        self._class_stack: list[tuple[str, bool]] = []
        self._index_module(tree)

    # -------------------------------------------------------- indexing

    def _index_module(self, tree: ast.Module) -> None:
        for node in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _is_mutable_literal(value):
                    self.module_mutables.add(target.id)
                if self._is_set_expr(value):
                    self.module_sets.add(target.id)
                    self._set_names.add(target.id)

    # ------------------------------------------------------- set typing

    def _is_set_expr(self, node: ast.AST) -> bool:
        """Statically set-typed: literals, set()/frozenset(), set ops."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(
                node.right
            )
        return False

    # ---------------------------------------------------------- scoping

    @property
    def in_operator_scope(self) -> bool:
        return any(is_op for _, is_op in self._scope)

    def _function_is_operator(self, node) -> bool:
        if node.name in _OPERATOR_FUNCS:
            return True
        if self._class_stack and self._class_stack[-1][1]:
            return True
        args = node.args.posonlyargs + node.args.args
        names = [a.arg for a in args]
        if names and names[0] == "self":
            names = names[1:]
        if names and names[0] == "state":
            return True
        return "rng" in names

    # ---------------------------------------------------------- visitors

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        base_names = [b for b in map(_dotted, node.bases) if b]
        is_operator = any(
            "Logic" in base or "UDO" in base for base in base_names
        )
        if is_operator:
            self._check_class_attrs(node)
        self._class_stack.append((node.name, is_operator))
        self.generic_visit(node)
        self._class_stack.pop()

    def _check_class_attrs(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            value = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is not None and _is_mutable_literal(value):
                self._emit(
                    "DET604",
                    stmt.lineno,
                    f"operator class {node.name!r} declares a mutable "
                    "class-level attribute; it is shared by every "
                    "subtask instance in one process",
                )

    def _visit_function(self, node) -> None:
        is_operator = self._function_is_operator(node)
        # Locally bound sets participate in DET603 within the function.
        added: list[str] = []
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and self._is_set_expr(
                stmt.value
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if target.id not in self._set_names:
                            self._set_names.add(target.id)
                            added.append(target.id)
        self._scope.append((node, is_operator))
        self.generic_visit(node)
        self._scope.pop()
        for name in added:
            self._set_names.discard(name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node) -> None:
        self._visit_function(node)

    def visit_Global(self, node: ast.Global) -> None:
        if self.in_operator_scope:
            self._emit(
                "DET604",
                node.lineno,
                "operator code declares "
                f"global {', '.join(node.names)}; module globals are "
                "shared in-process and forked per worker",
            )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._emit(
                "DET603",
                node.lineno,
                "iteration over a set; wrap it in sorted() so the "
                "order is hash-seed independent",
            )
        self.generic_visit(node)

    def visit_comprehension_iter(self, node) -> None:
        for gen in node.generators:
            if self._is_set_expr(gen.iter):
                self._emit(
                    "DET603",
                    node.lineno,
                    "comprehension over a set; wrap the iterable in "
                    "sorted() so the order is hash-seed independent",
                )
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_iter
    visit_GeneratorExp = visit_comprehension_iter
    visit_DictComp = visit_comprehension_iter

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node.lineno)
        self.generic_visit(node)

    def _check_store(self, target: ast.expr, lineno: int) -> None:
        """DET604: subscript/attribute stores into module mutables."""
        if not self.in_operator_scope:
            return
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            if target.value.id in self.module_mutables:
                self._emit(
                    "DET604",
                    lineno,
                    f"operator code writes into module-level "
                    f"{target.value.id!r}",
                )

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        resolved = self.imports.resolve_call(node.func)
        lineno = node.lineno

        # ---- DET601: global RNG draws -------------------------------
        if resolved is not None:
            if resolved.startswith("numpy.random."):
                attr = resolved.rsplit(".", 1)[1]
                if attr not in _ALLOWED_NP_RANDOM:
                    self._emit(
                        "DET601",
                        lineno,
                        f"call to {resolved} draws from the global "
                        "numpy stream; use an RngFactory-derived "
                        "generator",
                    )
            elif resolved.startswith("random."):
                attr = resolved.split(".", 1)[1]
                if attr.split(".")[0] in _STDLIB_RANDOM_DRAWS:
                    self._emit(
                        "DET601",
                        lineno,
                        f"call to {resolved} uses the process-global "
                        "stdlib stream; use an RngFactory-derived "
                        "generator",
                    )

        # ---- DET602: wall-clock in operator scope -------------------
        if resolved is not None and self.in_operator_scope:
            if resolved.startswith("time."):
                attr = resolved.split(".", 1)[1]
                if attr in _TIME_CLOCKS:
                    self._emit(
                        "DET602",
                        lineno,
                        f"operator code reads the wall clock via "
                        f"{resolved}; use the simulated `now` argument",
                    )
            elif resolved.startswith("datetime."):
                if resolved.rsplit(".", 1)[-1] in _DATETIME_CLOCKS:
                    self._emit(
                        "DET602",
                        lineno,
                        f"operator code reads the wall clock via "
                        f"{resolved}; use the simulated `now` argument",
                    )

        # ---- DET603: set order into sequences -----------------------
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if (
                name in _ORDER_SINKS
                and node.args
                and self._is_set_expr(node.args[0])
            ):
                self._emit(
                    "DET603",
                    lineno,
                    f"{name}() over a set freezes hash-seed-dependent "
                    "order into a sequence; use sorted() instead",
                )
            # ---- DET605: id()/hash() in operator scope --------------
            if name in ("id", "hash") and self.in_operator_scope:
                in_dunder_hash = any(
                    getattr(fn, "name", None) == "__hash__"
                    for fn, _ in self._scope
                )
                if not in_dunder_hash:
                    self._emit(
                        "DET605",
                        lineno,
                        f"operator code calls {name}(); the value "
                        "differs across processes and hash seeds",
                    )
        if isinstance(node.func, ast.Attribute) and node.func.attr == "join":
            if node.args and self._is_set_expr(node.args[0]):
                self._emit(
                    "DET603",
                    node.lineno,
                    "str.join over a set freezes hash-seed-dependent "
                    "order into a string; use sorted() instead",
                )

        # ---- DET604: mutating module-level state from operators -----
        if (
            self.in_operator_scope
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.module_mutables
        ):
            self._emit(
                "DET604",
                lineno,
                f"operator code mutates module-level "
                f"{node.func.value.id!r} via .{node.func.attr}()",
            )

        # ---- DET606: fork-unsafe resources at import time -----------
        if not self._scope and resolved in _FORK_UNSAFE_CALLS:
            self._emit(
                "DET606",
                lineno,
                f"module-level {resolved}() creates "
                f"{_FORK_UNSAFE_CALLS[resolved]}; fork-based "
                "ParallelRunner children duplicate it",
            )

    # ------------------------------------------------------------ emit

    def _emit(self, code: str, lineno: int, message: str) -> None:
        self.findings.append(
            _diag(code, f"{self.filename}:{lineno}", message)
        )


def sanitize_source(
    source: str, filename: str = "<string>"
) -> AnalysisReport:
    """Run the DET rules over one module's source text."""
    report = AnalysisReport(plan_name=filename)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.add(
            _diag(
                "DET601",
                f"{filename}:{exc.lineno or 0}",
                f"source could not be parsed: {exc.msg}",
            )
        )
        return report
    checker = _Sanitizer(tree, filename)
    checker.visit(tree)
    lines = source.splitlines()
    for diagnostic in checker.findings:
        lineno = int(diagnostic.op_id.rsplit(":", 1)[1])
        if not _suppressed(lines, lineno, diagnostic.code):
            report.add(diagnostic)
    return report


def sanitize_file(path: str | Path) -> AnalysisReport:
    """Sanitize one Python file."""
    path = Path(path)
    return sanitize_source(
        path.read_text(encoding="utf-8"), filename=str(path)
    )


def sanitize_paths(
    paths,
) -> list[tuple[str, AnalysisReport]]:
    """Sanitize files and directory trees; dirs are walked for ``*.py``."""
    reports: list[tuple[str, AnalysisReport]] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for file in sorted(entry.rglob("*.py")):
                reports.append((str(file), sanitize_file(file)))
        else:
            reports.append((str(entry), sanitize_file(entry)))
    return reports


def _source_of(obj) -> tuple[str, str] | None:
    """(dedented source, location label) of a live object, if known."""
    try:
        source = inspect.getsource(obj)
        file = inspect.getsourcefile(obj) or "<unknown>"
        _, lineno = inspect.getsourcelines(obj)
    except (OSError, TypeError):
        return None
    label = f"{file}:{lineno}"
    return textwrap.dedent(source), label


def sanitize_callable(obj) -> AnalysisReport:
    """Sanitize a live callable, operator-logic class or UDO instance.

    Objects exposing ``dsan_targets()`` (the
    :class:`~repro.sps.operators.udo.FunctionUDO` protocol) contribute
    each target callable; plain callables and classes contribute their
    own source. Built-ins without retrievable source yield an empty
    report rather than an error.
    """
    targets = []
    dsan_targets = getattr(obj, "dsan_targets", None)
    if callable(dsan_targets):
        targets.extend(t for t in dsan_targets() if t is not None)
    else:
        targets.append(obj)
    name = getattr(obj, "__name__", type(obj).__name__)
    report = AnalysisReport(plan_name=name)
    for target in targets:
        located = _source_of(target)
        if located is None:
            continue
        source, label = located
        report.extend(sanitize_source(source, filename=label))
    return report


def sanitize_app(abbrev: str) -> AnalysisReport:
    """Sanitize the module that defines one built-in application."""
    from repro.apps import REGISTRY

    builder = REGISTRY[abbrev]
    file = inspect.getsourcefile(builder)
    if file is None:  # pragma: no cover - registry is always file-backed
        return AnalysisReport(plan_name=abbrev)
    report = sanitize_file(file)
    report.plan_name = abbrev
    return report


#: (path, mtime) -> report; plan-source scans repeat per run_plan call
_FILE_CACHE: dict[tuple[str, float], AnalysisReport] = {}


def sanitize_plan_sources(plan) -> AnalysisReport:
    """Sanitize the source modules behind a plan's operator logics.

    Resolves each operator's ``logic_factory`` to its defining module
    (deduplicated), scans every module file once (mtime-cached across
    calls), and folds UDO ``dsan_targets`` contributions in. This is
    the static layer of ``run_plan(sanitize=True)``.
    """
    report = AnalysisReport(plan_name=plan.name)
    seen: set[str] = set()
    for op in plan.operators.values():
        factory = op.logic_factory
        module = inspect.getmodule(factory)
        file = getattr(module, "__file__", None)
        if file is None:
            # Modules loaded outside sys.modules (spec_from_file_location)
            # still have a source file on record.
            try:
                file = inspect.getsourcefile(factory)
            except TypeError:
                file = None
        if file is None or file in seen:
            continue
        seen.add(file)
        try:
            mtime = Path(file).stat().st_mtime
        except OSError:
            continue
        key = (file, mtime)
        cached = _FILE_CACHE.get(key)
        if cached is None:
            cached = sanitize_file(file)
            _FILE_CACHE[key] = cached
        report.extend(cached)
    return report
