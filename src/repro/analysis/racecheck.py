"""Runtime race detection for parallel determinism hazards.

The static sanitizer (:mod:`repro.analysis.sanitizer`) can only see
hazards written in source. :class:`RaceDetector` watches an actual run
through the engine's nullable observer hooks and flags the two races
that matter once ``RunnerConfig.workers > 1`` turns in-process subtasks
into forked processes:

- **DET607 — keyed state aliased across subtasks.** A shadow access
  tracker records, per keyed operator, which subtask instance served
  each key (the ``(subtask, key, state-cell)`` ledger). A key arriving
  at two different subtasks means the operator's keyed state is split
  across instances — results then depend on scheduling, and the
  ROADMAP's sharded-kernel refactor would turn the split into a true
  cross-process race.
- **DET608 — RNG stream shared across subtasks.** At bind time the
  detector walks every subtask logic for reachable
  :class:`numpy.random.Generator` objects (contexts, attributes,
  chained members, closure cells). One generator *object* reachable
  from two subtasks — or two distinct generators in identical initial
  states — makes draw interleaving schedule-dependent.
- **DET609 — RNG draw ledger divergence.** At run end the detector
  fingerprints the terminal state of every per-subtask generator plus
  the engine's arrival stream (:func:`repro.common.rng.state_fingerprint`
  — a pure read, no draws). Two runs that made the same draws in the
  same order have equal ledgers; :func:`compare_ledgers` turns any
  difference between a serial and a parallel run into diagnostics.

**Zero perturbation.** Like :class:`~repro.obs.EngineObserver`, the
detector only reads: no RNG draws, no heap pushes, no engine-state
mutation. It can wrap an inner observer (sharing the inner's counter
arrays by reference so the engine's direct bumps land once) or stand
alone, in which case sampling stays disabled (``next_sample`` = inf).
"""

from __future__ import annotations

import math

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.rules import RULE_CATALOG

__all__ = ["RaceDetector", "compare_ledgers"]

_INF = math.inf


def _diag(code: str, message: str, op_id: str | None = None) -> Diagnostic:
    spec = RULE_CATALOG[code]
    return Diagnostic(
        code=code,
        severity=spec.severity,
        message=message,
        op_id=op_id,
        hint=spec.rationale,
    )


def _reachable_generators(logic) -> list:
    """Generator objects reachable from one subtask's logic.

    Looks at the bound :class:`~repro.sps.operators.base.OperatorContext`,
    instance attributes, chained members (``logic.logics``) and one level
    of closure cells of callable attributes — the places application code
    realistically stashes a generator.
    """
    import numpy as np

    found: list = []
    seen: set[int] = set()

    def visit(obj) -> None:
        if obj is None or id(obj) in seen:
            return
        seen.add(id(obj))
        if isinstance(obj, np.random.Generator):
            found.append(obj)
            return
        ctx = getattr(obj, "ctx", None)
        if ctx is not None:
            visit(getattr(ctx, "rng", None))
        for value in vars(obj).values() if hasattr(obj, "__dict__") else ():
            if isinstance(value, np.random.Generator):
                visit(value)
            elif callable(value):
                for cell in getattr(value, "__closure__", None) or ():
                    try:
                        contents = cell.cell_contents
                    except ValueError:  # pragma: no cover - empty cell
                        continue
                    if isinstance(contents, np.random.Generator):
                        visit(contents)
        for member in getattr(obj, "logics", None) or ():
            visit(member)

    visit(logic)
    return found


class RaceDetector:
    """Observer-protocol shim that records determinism hazards.

    Wraps an optional ``inner`` observer, delegating every hook and
    sharing the inner's per-gid counter arrays by reference (the engine
    bumps ``tuples_in``/``shuffle_bytes`` directly). Findings accumulate
    in :attr:`findings`; :attr:`rng_ledger` holds the terminal RNG state
    fingerprints after :meth:`on_run_end`.
    """

    def __init__(self, inner=None) -> None:
        self.inner = inner
        self.findings: list[Diagnostic] = []
        self.rng_ledger: dict[str, str] = {}
        self.next_sample = _INF
        self.tuples_in: list[int] = []
        self.tuples_out: list[int] = []
        self.shuffle_bytes: list[float] = []
        self.stall_s: list[float] = []
        self._engine = None
        #: gid -> (op_id, key_field or None) for tracked keyed subtasks
        self._keyed: dict[int, tuple[str, int | None]] = {}
        #: op_id -> {key: first-serving subtask index}
        self._owners: dict[str, dict] = {}
        #: (op_id, key) pairs already reported, to avoid flooding
        self._reported: set[tuple[str, str]] = set()

    # ---------------------------------------------------------- lifecycle

    def on_run_start(self, engine) -> None:
        """Bind to the engine, index keyed subtasks, scan RNG sharing."""
        from repro.analysis.rules import _declared_key_field, _is_keyed_stateful

        inner = self.inner
        if inner is not None:
            inner.on_run_start(engine)
            # Share the inner's freshly allocated arrays so the engine's
            # direct bumps are counted exactly once.
            self.tuples_in = inner.tuples_in
            self.tuples_out = inner.tuples_out
            self.shuffle_bytes = inner.shuffle_bytes
            self.stall_s = inner.stall_s
            self.next_sample = inner.next_sample
        else:
            n = len(engine._runtimes)
            self.tuples_in = [0] * n
            self.tuples_out = [0] * n
            self.shuffle_bytes = [0.0] * n
            self.stall_s = [0.0] * n
            self.next_sample = _INF
        self._engine = engine
        self._keyed = {}
        self._owners = {}
        self._reported = set()
        for runtime in engine._runtimes:
            op = engine.logical.operator(runtime.op_id)
            if op.parallelism > 1 and _is_keyed_stateful(op):
                self._keyed[runtime.gid] = (
                    op.op_id,
                    _declared_key_field(op),
                )
                self._owners.setdefault(op.op_id, {})
        self._scan_rng_sharing(engine)

    def _scan_rng_sharing(self, engine) -> None:
        """DET608: generators reachable from more than one subtask."""
        from repro.common.rng import state_fingerprint

        by_object: dict[int, list] = {}
        by_state: dict[str, list] = {}
        generators: dict[int, object] = {}
        for runtime in engine._runtimes:
            label = f"{runtime.op_id}[{runtime.index}]"
            for gen in _reachable_generators(runtime.logic):
                by_object.setdefault(id(gen), []).append(label)
                generators[id(gen)] = gen
        for key, labels in sorted(by_object.items(), key=lambda kv: kv[1]):
            distinct = sorted(set(labels))
            if len(distinct) > 1:
                self.findings.append(
                    _diag(
                        "DET608",
                        "one Generator object is reachable from "
                        f"subtasks {', '.join(distinct)}",
                        op_id=distinct[0].split("[")[0],
                    )
                )
            else:
                # Distinct objects in identical initial states draw
                # identical sequences — flag clones across subtasks.
                fp = state_fingerprint(generators[key])
                by_state.setdefault(fp, []).append(distinct[0])
        for labels in by_state.values():
            distinct = sorted(set(labels))
            if len(distinct) > 1:
                self.findings.append(
                    _diag(
                        "DET608",
                        "identically seeded Generator clones across "
                        f"subtasks {', '.join(distinct)}",
                        op_id=distinct[0].split("[")[0],
                    )
                )

    def on_run_end(self, now: float) -> None:
        """Delegate to the inner observer, then capture the RNG ledger."""
        if self.inner is not None:
            self.inner.on_run_end(now)
        self._capture_ledger()

    def _capture_ledger(self) -> None:
        """Fingerprint the terminal state of every named generator."""
        from repro.common.rng import state_fingerprint

        engine = self._engine
        if engine is None:
            return
        ledger: dict[str, str] = {}
        for runtime in engine._runtimes:
            ctx = getattr(runtime.logic, "ctx", None)
            rng = getattr(ctx, "rng", None)
            if rng is not None:
                label = f"{runtime.op_id}[{runtime.index}]"
                # Rescale generations reuse (op, index) labels; the
                # epoch suffix keeps every stream's entry distinct.
                # Recovery incarnations (checkpoint restore or FT-off
                # failure restart) get an @r suffix the same way.
                epoch = getattr(runtime, "epoch", 0)
                if epoch:
                    label += f"@e{epoch}"
                incarnation = getattr(runtime, "ft_incarnation", 0)
                if incarnation:
                    label += f"@r{incarnation}"
                ledger[label] = state_fingerprint(rng)
        arrivals = getattr(engine, "_rng_arrivals", None)
        if arrivals is not None:
            ledger["engine/arrivals"] = state_fingerprint(arrivals)
        rescale_rng = getattr(engine, "_rng_rescale", None)
        if rescale_rng is not None:
            ledger["engine/rescale"] = state_fingerprint(rescale_rng)
        ft_rng = getattr(engine, "_rng_ft", None)
        if ft_rng is not None:
            ledger["engine/ft"] = state_fingerprint(ft_rng)
        self.rng_ledger = ledger

    # ------------------------------------------------------------ sampling

    def sample(self, now: float) -> float:
        """Delegate sampling to the inner observer (inf when standalone)."""
        if self.inner is not None:
            self.next_sample = self.inner.sample(now)
            return self.next_sample
        return _INF

    # ---------------------------------------------------- hot-path hooks

    def on_serve(self, runtime, now, service, wait) -> None:
        """Delegate the serve hook; the detector itself reads nothing here."""
        if self.inner is not None:
            self.inner.on_serve(runtime, now, service, wait)

    def on_done(self, runtime, now, tup, outputs) -> None:
        """Track which subtask served each key (DET607) and delegate."""
        if self.inner is not None:
            self.inner.on_done(runtime, now, tup, outputs)
        else:
            self.tuples_out[runtime.gid] += len(outputs)
        info = self._keyed.get(runtime.gid)
        if info is None:
            return
        op_id, key_field = info
        key = tup.key
        if key is None and key_field is not None:
            values = tup.values
            if 0 <= key_field < len(values):
                key = values[key_field]
        if key is None:
            return
        owners = self._owners[op_id]
        first = owners.setdefault(key, runtime.index)
        if first != runtime.index:
            mark = (op_id, repr(key))
            if mark not in self._reported:
                self._reported.add(mark)
                self.findings.append(
                    _diag(
                        "DET607",
                        f"key {key!r} was served by subtask {first} "
                        f"and subtask {runtime.index}; keyed state for "
                        "it is split across instances",
                        op_id=op_id,
                    )
                )

    def on_window_fire(self, runtime, now, count) -> None:
        """Delegate window fires (or count outputs when standalone)."""
        if self.inner is not None:
            self.inner.on_window_fire(runtime, now, count)
        else:
            self.tuples_out[runtime.gid] += count

    def on_flush(self, runtime, now, count) -> None:
        """Delegate end-of-run flushes (or count outputs when standalone)."""
        if self.inner is not None:
            self.inner.on_flush(runtime, now, count)
        else:
            self.tuples_out[runtime.gid] += count

    def on_stall(self, runtime, now, duration) -> None:
        """Delegate stall accounting (or accumulate when standalone)."""
        if self.inner is not None:
            self.inner.on_stall(runtime, now, duration)
        else:
            self.stall_s[runtime.gid] += duration

    def on_backpressure(self, runtime, now, engaged) -> None:
        """Delegate backpressure transitions; nothing to record here."""
        if self.inner is not None:
            self.inner.on_backpressure(runtime, now, engaged)

    def on_rescale(
        self, engine, now, op_id, old_gids, new_gids, migrated_keys, pause_s
    ) -> None:
        """Re-home key ownership after a rescale and delegate.

        Migration legitimately moves keys between subtasks — the old
        ownership map would flag every migrated key as DET607. The swap
        re-buckets *all* keys by hash, so ownership restarts empty; any
        split observed *after* the swap is a real race again.
        """
        from repro.analysis.rules import _declared_key_field, _is_keyed_stateful

        if self.inner is not None:
            # The inner observer grows the shared arrays in place, so
            # this detector's references stay coherent automatically.
            self.inner.on_rescale(
                engine, now, op_id, old_gids, new_gids, migrated_keys,
                pause_s,
            )
        else:
            grow = len(engine._runtimes) - len(self.tuples_in)
            if grow > 0:
                self.tuples_in.extend([0] * grow)
                self.tuples_out.extend([0] * grow)
                self.shuffle_bytes.extend([0.0] * grow)
                self.stall_s.extend([0.0] * grow)
        for gid in old_gids:
            self._keyed.pop(gid, None)
        op = engine.logical.operator(op_id)
        if len(new_gids) > 1 and _is_keyed_stateful(op):
            key_field = _declared_key_field(op)
            for gid in new_gids:
                self._keyed[gid] = (op_id, key_field)
            self._owners[op_id] = {}
        else:
            self._owners.pop(op_id, None)

    def on_checkpoint(self, engine, record) -> None:
        """Delegate checkpoint completion; nothing to record here."""
        if self.inner is not None:
            self.inner.on_checkpoint(engine, record)

    def on_recovery(self, engine, node_id, pause_s, replayed, ckpt_id) -> None:
        """Delegate recovery; key ownership survives (hash routing and
        subtask indices are unchanged by a restart)."""
        if self.inner is not None:
            self.inner.on_recovery(engine, node_id, pause_s, replayed, ckpt_id)

    # ------------------------------------------------------------- report

    @property
    def has_errors(self) -> bool:
        """Whether any ERROR-severity finding was recorded."""
        from repro.analysis.diagnostics import Severity

        return any(d.severity is Severity.ERROR for d in self.findings)

    def report(self, plan_name: str = "<run>") -> AnalysisReport:
        """The findings as a standard :class:`AnalysisReport`."""
        report = AnalysisReport(plan_name=plan_name)
        report.extend(self.findings)
        return report


def compare_ledgers(
    serial: dict[str, str], parallel: dict[str, str]
) -> list[Diagnostic]:
    """DET609 diagnostics for every divergence between two RNG ledgers.

    Equal ledgers mean both runs made identical draws in identical order
    on every named stream; a differing fingerprint (or a stream present
    on only one side) pins the divergence to one operator subtask.
    """
    findings: list[Diagnostic] = []
    for name in sorted(set(serial) | set(parallel)):
        a = serial.get(name)
        b = parallel.get(name)
        if a == b:
            continue
        if a is None or b is None:
            side = "serial" if a is None else "parallel"
            message = f"stream {name!r} exists only in the {side} run"
        else:
            message = (
                f"stream {name!r} ended in different states "
                "(draw count or order diverged between runs)"
            )
        findings.append(
            _diag("DET609", message, op_id=name.split("[")[0])
        )
    return findings
