"""Diagnostic records emitted by the static plan analyzer.

A :class:`Diagnostic` is one finding of the pre-flight analysis pass: a
stable rule code (``PLAN003``, ``SCH102``, ...), a severity, the offending
operator or edge, a human-readable message and a fix hint. Diagnostics are
collected into an :class:`AnalysisReport`, which the engine's pre-flight
gate, the workload generator and the ``repro lint-plan`` CLI all consume.

Severities follow the usual compiler convention: ``ERROR`` means the plan
cannot execute correctly (the engine refuses it), ``WARNING`` means it will
run but likely not measure what the user intended, ``INFO`` is advisory.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.common.errors import PlanError

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "PreflightError",
]


class Severity(enum.Enum):
    """How serious a diagnostic is."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Ordering weight: errors sort first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analysis pass.

    ``code`` is a stable identifier from the rule catalogue
    (:data:`repro.analysis.rules.RULE_CATALOG`); ``op_id`` names the
    offending operator when the finding is operator-local and ``edge``
    names the offending exchange as ``"src->dst"`` when it is edge-local.
    """

    code: str
    severity: Severity
    message: str
    op_id: str | None = None
    edge: str | None = None
    hint: str = ""

    @property
    def location(self) -> str:
        """Where the finding anchors: operator, edge or the whole plan."""
        if self.edge is not None:
            return self.edge
        if self.op_id is not None:
            return self.op_id
        return "<plan>"

    def format(self) -> str:
        """One-line rendering, e.g. ``ERROR PLAN003 [agg]: message``."""
        line = (
            f"{self.severity.value.upper():7s} {self.code} "
            f"[{self.location}]: {self.message}"
        )
        if self.hint:
            line += f" (hint: {self.hint})"
        return line

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by ``lint-plan --format json``)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "op_id": self.op_id,
            "edge": self.edge,
            "hint": self.hint,
        }


@dataclass
class AnalysisReport:
    """All diagnostics of one analysis pass over one plan."""

    plan_name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        """Append an iterable of findings."""
        self.diagnostics.extend(diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # ------------------------------------------------------------ filtering

    def errors(self) -> list[Diagnostic]:
        """Findings with severity ERROR."""
        return self.by_severity(Severity.ERROR)

    def warnings(self) -> list[Diagnostic]:
        """Findings with severity WARNING."""
        return self.by_severity(Severity.WARNING)

    def infos(self) -> list[Diagnostic]:
        """Findings with severity INFO."""
        return self.by_severity(Severity.INFO)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        """Findings of one severity."""
        return [d for d in self.diagnostics if d.severity is severity]

    def by_code(self, code: str) -> list[Diagnostic]:
        """Findings carrying one rule code."""
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> set[str]:
        """The distinct rule codes present."""
        return {d.code for d in self.diagnostics}

    @property
    def has_errors(self) -> bool:
        """Whether any ERROR diagnostic is present."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def is_clean(self) -> bool:
        """Whether the plan produced no diagnostics at all."""
        return not self.diagnostics

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics ordered by severity, then code, then location."""
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.code, d.location),
        )

    # ------------------------------------------------------------ rendering

    def format(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"plan {self.plan_name!r}: {self.summary()}"]
        lines.extend(d.format() for d in self.sorted())
        return "\n".join(lines)

    def summary(self) -> str:
        """e.g. ``2 errors, 1 warning, 0 infos``."""
        counts = (
            len(self.errors()), len(self.warnings()), len(self.infos())
        )
        names = ("error", "warning", "info")
        return ", ".join(
            f"{count} {name}{'s' if count != 1 else ''}"
            for count, name in zip(counts, names)
        )

    def to_json(self, indent: int | None = None) -> str:
        """JSON rendering for tooling (``lint-plan --format json``)."""
        return json.dumps(
            {
                "plan": self.plan_name,
                "clean": self.is_clean,
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "infos": len(self.infos()),
                "diagnostics": [d.to_dict() for d in self.sorted()],
            },
            indent=indent,
        )


class PreflightError(PlanError):
    """Raised by the engine's pre-flight gate when analysis finds ERRORs.

    Carries the full :class:`AnalysisReport` so callers can inspect every
    finding, not just the first.
    """

    def __init__(self, report: AnalysisReport) -> None:
        self.report = report
        errors = report.errors()
        head = (
            f"pre-flight analysis rejected plan {report.plan_name!r}: "
            f"{len(errors)} error(s)"
        )
        details = "; ".join(
            f"{d.code} [{d.location}] {d.message}" for d in errors[:5]
        )
        if len(errors) > 5:
            details += f"; ... and {len(errors) - 5} more"
        super().__init__(f"{head}: {details}", code=errors[0].code
                         if errors else None)
