"""Whole-plan static analysis (the pre-flight pass).

:class:`PlanAnalyzer` prepares an :class:`~repro.analysis.rules.AnalysisContext`
— a cycle-tolerant topological order plus statically propagated output
schemas — and runs the full rule catalogue over it, returning an
:class:`~repro.analysis.diagnostics.AnalysisReport`.

Unlike :meth:`LogicalPlan.validate`, which raises at the first problem,
the analyzer *collects* every finding, never raises on malformed input,
and also covers cluster feasibility and schema/typing concerns that
``validate`` does not look at. The engine's pre-flight gate, the workload
generator and ``repro lint-plan`` all call :func:`analyze_plan`.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    AnalysisReport,
    PreflightError,
)
from repro.analysis.rules import AnalysisContext, run_all_rules
from repro.sps.logical import LogicalPlan, OperatorKind
from repro.sps.types import DataType, Field, Schema

__all__ = ["PlanAnalyzer", "analyze_plan", "preflight"]


def _topological_order(plan: LogicalPlan) -> tuple[list[str], bool]:
    """Kahn's algorithm; returns (partial order, has_cycle).

    On a cyclic plan the order covers only the acyclic prefix, so schema
    propagation still works for everything upstream of the cycle and the
    cycle itself is reported by PLAN003 rather than crashing the pass.
    """
    in_degree = {op_id: 0 for op_id in plan.operators}
    for edge in plan.edges:
        in_degree[edge.dst] += 1
    ready = sorted(
        op_id for op_id, degree in in_degree.items() if degree == 0
    )
    order: list[str] = []
    while ready:
        op_id = ready.pop(0)
        order.append(op_id)
        for edge in plan.out_edges(op_id):
            in_degree[edge.dst] -= 1
            if in_degree[edge.dst] == 0:
                ready.append(edge.dst)
    return order, len(order) < len(plan.operators)


def _propagate_schemas(
    plan: LogicalPlan, order: list[str]
) -> dict[str, Schema | None]:
    """Derive each operator's output schema in topological order.

    ``None`` means *unknown*: the operator (or something upstream of it)
    declares no schema, so downstream field references go unchecked
    rather than producing false errors.
    """
    schemas: dict[str, Schema | None] = {}

    def _input(op_id: str, port: int = 0) -> Schema | None:
        for edge in plan.in_edges(op_id):
            if edge.port == port:
                return schemas.get(edge.src)
        return None

    for op_id in order:
        op = plan.operators[op_id]
        if op.output_schema is not None:
            # a declared schema always wins over inference
            schemas[op_id] = op.output_schema
        elif op.kind in (OperatorKind.FILTER, OperatorKind.SINK):
            schemas[op_id] = _input(op_id)
        elif op.kind is OperatorKind.WINDOW_AGG:
            schemas[op_id] = _aggregate_schema(op, _input(op_id))
        elif op.kind is OperatorKind.WINDOW_JOIN:
            schemas[op_id] = _join_schema(
                _input(op_id, 0), _input(op_id, 1)
            )
        else:
            # SOURCE/MAP/FLATMAP/UDO without a declaration: unknown
            schemas[op_id] = None
    return schemas


def _aggregate_schema(op, upstream: Schema | None) -> Schema | None:
    """Window aggregates emit ``(key, aggregate)`` pairs."""
    key_field = op.metadata.get("key_field")
    if upstream is None or key_field is None:
        return None
    if key_field >= upstream.width:
        return None  # SCH102 reports the bad index
    key = upstream.fields[key_field]
    return Schema(
        fields=(
            Field(name=key.name, dtype=key.dtype),
            Field(name="aggregate", dtype=DataType.DOUBLE),
        )
    )


def _join_schema(
    left: Schema | None, right: Schema | None
) -> Schema | None:
    """Windowed joins concatenate the left and right tuple values."""
    if left is None or right is None:
        return None
    fields = tuple(
        Field(name=f"l_{f.name}", dtype=f.dtype) for f in left.fields
    ) + tuple(
        Field(name=f"r_{f.name}", dtype=f.dtype) for f in right.fields
    )
    return Schema(fields=fields)


class PlanAnalyzer:
    """Runs the full rule catalogue over one logical plan.

    ``cluster`` enables the resource-feasibility family (RES4xx);
    ``placement`` additionally enables the per-node contention check
    (RES403). Both are optional — without them the analyzer covers the
    plan-local families only. ``batch`` additionally runs the advisory
    BAT7xx batch-friendliness family, for plans destined for the
    columnar micro-batch executor; ``checkpoint_interval`` (seconds)
    likewise enables the FT7xx checkpoint-readiness family, for plans
    destined to run with aligned-barrier fault tolerance; ``shards``
    enables the SHD7xx shardability family, for plans destined for the
    multi-process sharded kernel (DESIGN.md §14).
    """

    def __init__(
        self,
        cluster=None,
        placement=None,
        batch=False,
        checkpoint_interval=None,
        shards=None,
    ) -> None:
        self.cluster = cluster
        self.placement = placement
        self.batch = batch
        self.checkpoint_interval = checkpoint_interval
        self.shards = shards

    def analyze(self, plan: LogicalPlan) -> AnalysisReport:
        """Collect every diagnostic for ``plan`` (never raises)."""
        order, has_cycle = _topological_order(plan)
        ctx = AnalysisContext(
            plan=plan,
            cluster=self.cluster,
            placement=self.placement,
            schemas=_propagate_schemas(plan, order),
            order=order,
            has_cycle=has_cycle,
            checkpoint_interval=self.checkpoint_interval,
            shards=self.shards,
        )
        report = AnalysisReport(plan_name=plan.name)
        report.extend(run_all_rules(ctx, include_batch=self.batch))
        return report


def analyze_plan(
    plan: LogicalPlan,
    cluster=None,
    placement=None,
    batch=False,
    checkpoint_interval=None,
    shards=None,
) -> AnalysisReport:
    """One-shot convenience wrapper around :class:`PlanAnalyzer`."""
    return PlanAnalyzer(
        cluster=cluster,
        placement=placement,
        batch=batch,
        checkpoint_interval=checkpoint_interval,
        shards=shards,
    ).analyze(plan)


def preflight(plan: LogicalPlan, cluster=None, placement=None) -> AnalysisReport:
    """Analyze and raise :class:`PreflightError` if any ERROR is found.

    Returns the (warning/info-only) report otherwise, so callers can log
    non-fatal findings.
    """
    report = analyze_plan(plan, cluster=cluster, placement=placement)
    if report.has_errors:
        raise PreflightError(report)
    return report
