"""Fraud Detection (FD) — Markov-model transaction scoring.

From DSPBench's finance suite: score each account's transaction sequence
against a learned Markov transition model; improbable state sequences
indicate fraud. Dataflow::

    transactions -> UDO(per-account Markov scorer) ->
    filter(score > threshold) -> sink
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema

__all__ = ["INFO", "build", "MarkovScoreLogic"]

INFO = AppInfo(
    abbrev="FD",
    name="Fraud Detection",
    area="Finance",
    description="Scores per-account transaction sequences against a "
    "Markov transition model; flags improbable sequences",
    uses_udo=True,
    data_intensity=DataIntensity.HIGH,
    origin="DSPBench [13]",
)

_NUM_ACCOUNTS = 500
#: Transaction state: bucketed (amount band x merchant category).
_NUM_STATES = 12

_SCHEMA = Schema(
    [
        Field("account", DataType.INT),
        Field("state", DataType.INT),
        Field("amount", DataType.DOUBLE),
    ]
)


def _sample_transaction(rng: np.random.Generator) -> tuple:
    account = int(rng.integers(_NUM_ACCOUNTS))
    # Normal accounts walk between neighbouring states; fraudulent
    # bursts jump randomly.
    if rng.random() < 0.03:
        state = int(rng.integers(_NUM_STATES))
    else:
        state = int((account + rng.integers(0, 2)) % _NUM_STATES)
    return (account, state, float(rng.uniform(1.0, 2_000.0)))


def _transition_matrix() -> np.ndarray:
    """A banded 'normal behaviour' transition model."""
    matrix = np.full((_NUM_STATES, _NUM_STATES), 0.01)
    for i in range(_NUM_STATES):
        matrix[i, i] = 0.5
        matrix[i, (i + 1) % _NUM_STATES] = 0.3
        matrix[i, (i - 1) % _NUM_STATES] = 0.15
    return matrix / matrix.sum(axis=1, keepdims=True)


class MarkovScoreLogic(OperatorLogic):
    """Negative log-likelihood of each account's last transition.

    Keeps each account's previous state and a sliding sum of transition
    surprisals; emits ``(account, score, amount)``.
    """

    def __init__(self, history: int = 8) -> None:
        self._matrix = _transition_matrix()
        self._previous: dict[int, int] = {}
        self._scores: dict[int, list[float]] = {}
        self.history = history

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        account, state, amount = tup.values
        previous = self._previous.get(account)
        self._previous[account] = state
        if previous is None:
            return []
        surprisal = -math.log(
            max(float(self._matrix[previous, state]), 1e-9)
        )
        window = self._scores.setdefault(account, [])
        window.append(surprisal)
        if len(window) > self.history:
            window.pop(0)
        score = sum(window) / len(window)
        return [tup.with_values((account, score, amount))]


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the FD dataflow at parallelism 1."""
    plan = LogicalPlan("FD")
    plan.add_operator(
        builders.source(
            "transactions",
            make_generator(_SCHEMA, _sample_transaction),
            _SCHEMA,
            event_rate,
        )
    )
    scorer = builders.udo(
        "markov_score",
        MarkovScoreLogic,
        selectivity=1.0,
        cost_scale=7.0,
        name="per-account Markov scorer",
        output_schema=Schema(
            [
                Field("account", DataType.INT),
                Field("score", DataType.DOUBLE),
                Field("amount", DataType.DOUBLE),
            ]
        ),
    )
    scorer.metadata["key_field"] = 0
    scorer.metadata["key_cardinality"] = _NUM_ACCOUNTS
    plan.add_operator(scorer)
    plan.add_operator(
        builders.filter_op(
            "suspicious",
            Predicate(1, FilterFunction.GT, 2.5, selectivity_hint=0.05),
        )
    )
    plan.add_operator(builders.sink("sink"))
    plan.connect("transactions", "markov_score")
    plan.connect("markov_score", "suspicious")
    plan.connect("suspicious", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
