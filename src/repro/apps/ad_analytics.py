"""Ad Analytics (AD) — the paper's running example (Figure 2, right).

From the S4 platform paper: join ad impressions with clicks over a sliding
window and compute per-campaign click-through rates with custom aggregation
logic. Dataflow::

    impressions --\\
                   join(ad_id, sliding window) -> UDO(CTR aggregation) ->
    clicks ------/                                window avg per campaign -> sink

AD is the paper's example of an app whose "custom aggregation and joining
logic on a sliding window results in non-linear scaling, where increased
parallelism leads to higher overhead, sometimes degrading performance"
(O3), and which fails to benefit from heterogeneous hardware (O5). That
behaviour comes from the CTR UDO's high coordination coefficient: its
state must be reconciled across instances.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.costs import OperatorCost
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, SlidingTimeWindows

__all__ = ["INFO", "build", "CtrLogic"]

INFO = AppInfo(
    abbrev="AD",
    name="Ad Analytics",
    area="Advertising",
    description="Joins impressions with clicks per ad over sliding "
    "windows and aggregates click-through rates per campaign",
    uses_udo=True,
    data_intensity=DataIntensity.MEDIUM,
    origin="S4 [47]",
)

_NUM_ADS = 5_000
_NUM_CAMPAIGNS = 100

_IMPRESSION_SCHEMA = Schema(
    [
        Field("ad_id", DataType.INT),
        Field("campaign", DataType.INT),
        Field("cost", DataType.DOUBLE),
    ]
)
_CLICK_SCHEMA = Schema(
    [Field("ad_id", DataType.INT), Field("value", DataType.DOUBLE)]
)


def _sample_impression(rng: np.random.Generator) -> tuple:
    ad = int(rng.integers(_NUM_ADS))
    return (ad, ad % _NUM_CAMPAIGNS, float(rng.uniform(0.01, 2.0)))


def _sample_click(rng: np.random.Generator) -> tuple:
    # Clicks concentrate on a popular subset of ads.
    if rng.random() < 0.7:
        ad = int(rng.integers(_NUM_ADS // 10))
    else:
        ad = int(rng.integers(_NUM_ADS))
    return (ad, float(rng.uniform(0.1, 5.0)))


class CtrLogic(OperatorLogic):
    """Custom CTR accumulator over joined (impression, click) pairs.

    Consumes join outputs ``(ad_id, campaign, cost, ad_id, value)`` and
    maintains per-campaign impression/click counters, emitting
    ``(campaign, ctr)`` updates. The per-instance counters are what force
    cross-instance reconciliation in a real deployment — modelled by this
    operator's high coordination coefficient.
    """

    def __init__(self, emit_every: int = 8) -> None:
        self._impressions: dict[int, int] = {}
        self._clicks: dict[int, int] = {}
        self._since_emit: dict[int, int] = {}
        self.emit_every = emit_every

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        campaign = tup.values[1]
        self._impressions[campaign] = self._impressions.get(campaign, 0) + 1
        self._clicks[campaign] = self._clicks.get(campaign, 0) + 1
        pending = self._since_emit.get(campaign, 0) + 1
        if pending < self.emit_every:
            self._since_emit[campaign] = pending
            return []
        self._since_emit[campaign] = 0
        ctr = self._clicks[campaign] / max(self._impressions[campaign], 1)
        return [tup.with_values((campaign, ctr))]


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the AD dataflow at parallelism 1.

    ``event_rate`` is split between the two sources (2/3 impressions,
    1/3 clicks), keeping the total comparable with single-source apps.
    """
    impression_rate = event_rate * 2.0 / 3.0
    click_rate = event_rate / 3.0
    plan = LogicalPlan("AD")
    plan.add_operator(
        builders.source(
            "impressions",
            make_generator(_IMPRESSION_SCHEMA, _sample_impression),
            _IMPRESSION_SCHEMA,
            impression_rate,
        )
    )
    plan.add_operator(
        builders.source(
            "clicks",
            make_generator(_CLICK_SCHEMA, _sample_click),
            _CLICK_SCHEMA,
            click_rate,
        )
    )
    window = SlidingTimeWindows(1.0, 0.5)
    join = builders.window_join(
        "ad_join",
        window,
        left_key_field=0,
        right_key_field=0,
        selectivity=1.2,
    )
    plan.add_operator(join)
    ctr = builders.udo(
        "ctr",
        CtrLogic,
        selectivity=1.0 / 8,
        cost=OperatorCost(
            base_cpu_s=40.0e-6 * 2.5,
            coord_kappa=0.030,  # heavy cross-instance state reconciliation
            stateful=True,
            is_udo=True,
            cost_noise=0.30,
        ),
        name="CTR accumulator",
        output_schema=Schema(
            [
                Field("campaign", DataType.INT),
                Field("ctr", DataType.DOUBLE),
            ]
        ),
    )
    ctr.metadata["key_field"] = 1
    ctr.metadata["key_cardinality"] = _NUM_CAMPAIGNS
    plan.add_operator(ctr)
    campaign_avg = builders.window_agg(
        "campaign_ctr",
        SlidingTimeWindows(1.0, 0.5),
        AggregateFunction.AVG,
        value_field=1,
        key_field=0,
        selectivity=0.05,
    )
    campaign_avg.metadata["key_cardinality"] = _NUM_CAMPAIGNS
    plan.add_operator(campaign_avg)
    plan.add_operator(builders.sink("sink"))
    plan.connect("impressions", "ad_join", port=0)
    plan.connect("clicks", "ad_join", port=1)
    plan.connect("ad_join", "ctr")
    plan.connect("ctr", "campaign_ctr")
    plan.connect("campaign_ctr", "sink")
    return AppQuery(
        plan=plan,
        info=INFO,
        event_rate=event_rate,
        params={"impression_rate": impression_rate, "click_rate": click_rate},
    )
