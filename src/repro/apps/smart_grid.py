"""Smart Grid (SG) — DEBS 2014 Grand Challenge outlier query.

Table 2: "energy usage patterns from smart plugs". The DEBS 2014 outlier
query compares each plug's median load against its house's median over a
window and scores plugs that run anomalously hot. Dataflow::

    plug readings -> UDO(per-plug sliding median, keyed by plug) ->
    UDO(per-house median + outlier score, keyed by house) -> sink

Both stages maintain exact order statistics over sliding histories — SG is
one of the paper's most data-intensive apps, the one whose latency only
starts improving at parallelism 64-128 (O2, O4). Keying the heavy median
stage by plug (40 houses x 20 plugs = 800 keys) is what lets parallelism
up to 128 help, exactly as the DEBS data's plug-level granularity does.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema

__all__ = ["INFO", "build", "PlugMedianLogic", "HouseOutlierLogic"]

INFO = AppInfo(
    abbrev="SG",
    name="Smart Grid",
    area="Smart grid / IoT",
    description="DEBS 2014: per-plug median loads vs their house's "
    "median; scores anomalously hot plugs",
    uses_udo=True,
    data_intensity=DataIntensity.HIGH,
    origin="DEBS 2014 Grand Challenge [20]",
)

_NUM_HOUSES = 40
_PLUGS_PER_HOUSE = 20

_SCHEMA = Schema(
    [
        Field("plug_key", DataType.INT),
        Field("house", DataType.INT),
        Field("load", DataType.DOUBLE),
    ]
)


def _sample_reading(rng: np.random.Generator) -> tuple:
    house = int(rng.integers(_NUM_HOUSES))
    plug = int(rng.integers(_PLUGS_PER_HOUSE))
    # Base load per house varies; some plugs run heavy appliances.
    base = 40.0 + 10.0 * (house % 7)
    if (house * _PLUGS_PER_HOUSE + plug) % 13 == 0:
        base *= 2.5
    load = float(max(rng.normal(base, base * 0.2), 0.0))
    return (house * _PLUGS_PER_HOUSE + plug, house, load)


class _SlidingMedian:
    """Exact sliding-window median over the last ``capacity`` values."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._ordered: list[float] = []
        self._fifo: list[float] = []

    def add(self, value: float) -> None:
        bisect.insort(self._ordered, value)
        self._fifo.append(value)
        if len(self._fifo) > self.capacity:
            oldest = self._fifo.pop(0)
            index = bisect.bisect_left(self._ordered, oldest)
            del self._ordered[index]

    def median(self) -> float:
        n = len(self._ordered)
        if n == 0:
            return 0.0
        if n % 2:
            return self._ordered[n // 2]
        return 0.5 * (self._ordered[n // 2 - 1] + self._ordered[n // 2])

    def __len__(self) -> int:
        return len(self._ordered)


class PlugMedianLogic(OperatorLogic):
    """Keyed per-plug sliding median of loads.

    Emits ``(house, plug_median)`` every ``emit_every`` readings of a
    plug, thinning the downstream stream as the real DEBS query does.
    """

    def __init__(self, window: int = 96, emit_every: int = 2) -> None:
        self._medians: dict[tuple, _SlidingMedian] = {}
        self._counts: dict[tuple, int] = {}
        self.window = window
        self.emit_every = emit_every

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        plug_key, house, load = tup.values
        median = self._medians.setdefault(
            plug_key, _SlidingMedian(self.window)
        )
        median.add(load)
        count = self._counts.get(plug_key, 0) + 1
        self._counts[plug_key] = count
        if count % self.emit_every:
            return []
        return [tup.with_values((house, median.median()))]


class HouseOutlierLogic(OperatorLogic):
    """Per-house sliding median of plug medians; scores each plug update.

    Emits ``(house, plug_median, house_median, outlier_score)`` once the
    house has a handful of samples; a score above 1 means the plug runs
    hotter than its house's median (the DEBS outlier criterion).
    """

    def __init__(self, window: int = 128, warmup: int = 4) -> None:
        self._houses: dict[int, _SlidingMedian] = {}
        self.window = window
        self.warmup = warmup

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        house, plug_median = tup.values
        median = self._houses.setdefault(house, _SlidingMedian(self.window))
        median.add(plug_median)
        if len(median) < self.warmup:
            return []
        house_median = median.median()
        score = plug_median / max(house_median, 1e-9)
        return [
            tup.with_values((house, plug_median, house_median, score))
        ]


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the SG dataflow at parallelism 1."""
    plan = LogicalPlan("SG")
    plan.add_operator(
        builders.source(
            "plugs",
            make_generator(_SCHEMA, _sample_reading),
            _SCHEMA,
            event_rate,
        )
    )
    plug_median = builders.udo(
        "plug_median",
        PlugMedianLogic,
        selectivity=1.0 / 2,
        cost_scale=12.0,  # order-statistics maintenance per reading
        name="per-plug sliding median",
        output_schema=Schema(
            [
                Field("house", DataType.INT),
                Field("plug_median", DataType.DOUBLE),
            ]
        ),
    )
    plug_median.metadata["key_field"] = 0
    plug_median.metadata["key_cardinality"] = (
        _NUM_HOUSES * _PLUGS_PER_HOUSE
    )
    plan.add_operator(plug_median)
    outlier = builders.udo(
        "outlier",
        HouseOutlierLogic,
        selectivity=0.9,
        cost_scale=4.0,
        name="per-house outlier scorer",
        output_schema=Schema(
            [
                Field("house", DataType.INT),
                Field("plug_median", DataType.DOUBLE),
                Field("house_median", DataType.DOUBLE),
                Field("score", DataType.DOUBLE),
            ]
        ),
    )
    outlier.metadata["key_field"] = 0
    outlier.metadata["key_cardinality"] = _NUM_HOUSES
    plan.add_operator(outlier)
    plan.add_operator(builders.sink("sink"))
    plan.connect("plugs", "plug_median")
    plan.connect("plug_median", "outlier")
    plan.connect("outlier", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
