"""Trending Topics (TM) — hashtag trend detection.

From TwitterMonitor: extract hashtags from tweets, count them over sliding
windows and keep a top-k. Dataflow::

    tweets -> flatMap(extract hashtags) ->
    window count per tag -> UDO(top-k tracker) -> sink
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, SlidingTimeWindows

__all__ = ["INFO", "build", "TopKLogic"]

INFO = AppInfo(
    abbrev="TM",
    name="Trending Topics",
    area="Social media",
    description="Counts hashtags over sliding windows and tracks the "
    "top-k trending tags",
    uses_udo=True,
    data_intensity=DataIntensity.MEDIUM,
    origin="TwitterMonitor [45]",
)

#: Zipf-profile tag popularity: low ids are far more frequent.
_NUM_TAGS = 1_000

_SCHEMA = Schema([Field("tags", DataType.STRING)])


def _sample_tweet_tags(rng: np.random.Generator) -> tuple:
    count = int(rng.integers(0, 4))
    tags = []
    for _ in range(count):
        # Approximate Zipf via the inverse-power trick.
        tag = int(_NUM_TAGS * (rng.random() ** 3))
        tags.append(f"#t{tag}")
    return (" ".join(tags),)


def _extract_tags(values: tuple) -> list[tuple]:
    if not values[0]:
        return []
    return [(tag, 1.0) for tag in values[0].split(" ")]


class TopKLogic(OperatorLogic):
    """Maintains the running top-k of (tag, windowed count) updates.

    Emits the changed ranking entry whenever a tag enters or moves within
    the top-k.
    """

    def __init__(self, k: int = 10) -> None:
        self.k = k
        self._counts: dict[str, float] = {}

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        tag, count = tup.values
        previous_top = self._top_k()
        self._counts[tag] = max(self._counts.get(tag, 0.0), count)
        if len(self._counts) > 4 * self.k:
            self._prune()
        current_top = self._top_k()
        if current_top != previous_top and tag in dict(current_top):
            rank = [t for t, _ in current_top].index(tag)
            return [tup.with_values((tag, count, float(rank)))]
        return []

    def _top_k(self) -> list[tuple[str, float]]:
        return heapq.nlargest(
            self.k, self._counts.items(), key=lambda item: item[1]
        )

    def _prune(self) -> None:
        keep = heapq.nlargest(
            2 * self.k, self._counts.items(), key=lambda item: item[1]
        )
        self._counts = dict(keep)


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the TM dataflow at parallelism 1."""
    plan = LogicalPlan("TM")
    plan.add_operator(
        builders.source(
            "tweets",
            make_generator(_SCHEMA, _sample_tweet_tags),
            _SCHEMA,
            event_rate,
        )
    )
    plan.add_operator(
        builders.flat_map(
            "extract",
            _extract_tags,
            expected_fanout=1.5,
            output_schema=Schema(
                [
                    Field("tag", DataType.STRING),
                    Field("count", DataType.DOUBLE),
                ]
            ),
        )
    )
    tag_counts = builders.window_agg(
        "tag_counts",
        SlidingTimeWindows(1.0, 0.5),
        AggregateFunction.COUNT,
        value_field=1,
        key_field=0,
        selectivity=0.02,
    )
    tag_counts.metadata["key_cardinality"] = _NUM_TAGS
    plan.add_operator(tag_counts)
    topk = builders.udo(
        "topk",
        TopKLogic,
        selectivity=0.3,
        cost_scale=2.0,
        name="top-k tracker",
        output_schema=Schema(
            [
                Field("tag", DataType.STRING),
                Field("count", DataType.DOUBLE),
                Field("rank", DataType.DOUBLE),
            ]
        ),
    )
    plan.add_operator(topk)
    plan.add_operator(builders.sink("sink"))
    plan.connect("tweets", "extract")
    plan.connect("extract", "tag_counts")
    plan.connect("tag_counts", "topk")
    plan.connect("topk", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
