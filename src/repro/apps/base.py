"""Shared scaffolding for the application suite (paper Table 2).

Each application module defines:

- an :class:`AppInfo` describing it (abbreviation, area, whether it uses
  user-defined operators, how data-intensive those are — the properties the
  paper's observations O1-O7 are phrased in terms of),
- a data generator producing realistic tuples for its domain, and
- a ``build(event_rate, seed, space)`` function returning an
  :class:`AppQuery` whose plan starts at parallelism 1.

The registry in :mod:`repro.apps` maps abbreviations to builders.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sps.logical import LogicalPlan
from repro.sps.tuples import StreamTuple
from repro.sps.types import Schema

__all__ = ["AppInfo", "AppQuery", "make_generator", "DataIntensity"]


class DataIntensity:
    """How compute-heavy an app's operators are, per the paper's grouping.

    ``LOW`` apps (WC, LR) show flat latency across parallelism; ``HIGH``
    apps (SG, SD, SA) keep improving up to parallelism 128 (O1/O2).
    """

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


@dataclass(frozen=True)
class AppInfo:
    """Metadata of one benchmark application (one Table 2 row)."""

    abbrev: str
    name: str
    area: str
    description: str
    uses_udo: bool
    data_intensity: str
    origin: str = ""

    def __post_init__(self) -> None:
        if self.data_intensity not in (
            DataIntensity.LOW,
            DataIntensity.MEDIUM,
            DataIntensity.HIGH,
        ):
            raise ConfigurationError(
                f"{self.abbrev}: invalid data intensity "
                f"{self.data_intensity!r}"
            )


@dataclass
class AppQuery:
    """A built application: plan plus provenance, ready to parallelise."""

    plan: LogicalPlan
    info: AppInfo
    event_rate: float
    params: dict[str, Any] = field(default_factory=dict)

    def set_parallelism(self, degree: int) -> "AppQuery":
        """Apply one parallelism degree to all non-sink operators."""
        self.plan.set_uniform_parallelism(degree)
        return self


def make_generator(
    schema: Schema,
    sampler: Callable[[np.random.Generator], tuple],
):
    """Wrap a value sampler into the engine's tuple-generator signature."""
    size = float(schema.tuple_size_bytes())

    def generate(rng: np.random.Generator, now: float) -> StreamTuple:
        return StreamTuple(
            values=sampler(rng), event_time=now, size_bytes=size
        )

    return generate
