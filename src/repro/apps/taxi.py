"""Taxi Queries (TQ) — DEBS 2015 Grand Challenge frequent routes.

Map taxi trips to a grid, count route (start-cell -> end-cell) frequencies
over sliding windows and track the most frequent routes. Dataflow::

    trips -> map(grid cells) -> window count per route ->
    UDO(top routes) -> sink
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, SlidingTimeWindows

__all__ = ["INFO", "build", "TopRoutesLogic"]

INFO = AppInfo(
    abbrev="TQ",
    name="Taxi Queries",
    area="Transportation",
    description="DEBS 2015: frequent taxi routes on a city grid over "
    "sliding windows",
    uses_udo=True,
    data_intensity=DataIntensity.MEDIUM,
    origin="DEBS 2015 Grand Challenge",
)

_GRID = 30  # 30x30 cells, as in the challenge's 300x300 scaled down

_SCHEMA = Schema(
    [
        Field("pickup_x", DataType.DOUBLE),
        Field("pickup_y", DataType.DOUBLE),
        Field("dropoff_x", DataType.DOUBLE),
        Field("dropoff_y", DataType.DOUBLE),
        Field("fare", DataType.DOUBLE),
    ]
)


def _sample_trip(rng: np.random.Generator) -> tuple:
    # Trips cluster around a few hotspots (midtown-style density).
    def coord() -> float:
        if rng.random() < 0.6:
            return float(np.clip(rng.normal(0.5, 0.08), 0.0, 1.0))
        return float(rng.random())

    return (coord(), coord(), coord(), coord(),
            float(rng.uniform(3.0, 60.0)))


def _to_route(values: tuple) -> tuple:
    px, py, dx, dy, fare = values
    start = int(px * (_GRID - 1)) * _GRID + int(py * (_GRID - 1))
    end = int(dx * (_GRID - 1)) * _GRID + int(dy * (_GRID - 1))
    return (start * _GRID * _GRID + end, fare)


class TopRoutesLogic(OperatorLogic):
    """Tracks the 10 most frequent routes from windowed counts."""

    def __init__(self, k: int = 10) -> None:
        self.k = k
        self._counts: dict[int, float] = {}

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        route, count = tup.values
        self._counts[route] = count
        if len(self._counts) > 8 * self.k:
            keep = heapq.nlargest(
                4 * self.k, self._counts.items(), key=lambda kv: kv[1]
            )
            self._counts = dict(keep)
        top = heapq.nlargest(
            self.k, self._counts.items(), key=lambda kv: kv[1]
        )
        if any(r == route for r, _ in top):
            rank = [r for r, _ in top].index(route)
            return [tup.with_values((route, count, float(rank)))]
        return []


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the TQ dataflow at parallelism 1."""
    plan = LogicalPlan("TQ")
    plan.add_operator(
        builders.source(
            "trips",
            make_generator(_SCHEMA, _sample_trip),
            _SCHEMA,
            event_rate,
        )
    )
    plan.add_operator(
        builders.map_op(
            "route",
            _to_route,
            output_schema=Schema(
                [
                    Field("route_key", DataType.INT),
                    Field("fare", DataType.DOUBLE),
                ]
            ),
        )
    )
    route_counts = builders.window_agg(
        "route_counts",
        SlidingTimeWindows(1.0, 0.5),
        AggregateFunction.COUNT,
        value_field=1,
        key_field=0,
        selectivity=0.05,
    )
    route_counts.metadata["key_cardinality"] = _GRID**2 * 4
    plan.add_operator(route_counts)
    top_routes = builders.udo(
        "top_routes",
        TopRoutesLogic,
        selectivity=0.2,
        cost_scale=3.0,
        name="frequent-route tracker",
        output_schema=Schema(
            [
                Field("route", DataType.INT),
                Field("count", DataType.DOUBLE),
                Field("rank", DataType.DOUBLE),
            ]
        ),
    )
    plan.add_operator(top_routes)
    plan.add_operator(builders.sink("sink"))
    plan.connect("trips", "route")
    plan.connect("route", "route_counts")
    plan.connect("route_counts", "top_routes")
    plan.connect("top_routes", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
