"""Spike Detection (SD) — IoT sensor spike alerts.

From DSPBench/RIoTBench lineage: alert when a sensor's reading exceeds a
multiple of its own moving average. Dataflow::

    sensor readings -> UDO(per-sensor moving average + spike test) -> sink

The moving-average UDO keeps a per-sensor value history; the paper groups
SD with SG and SA as data-intensive apps whose latency keeps improving up
to parallelism 128 (O2).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.operators.base import OperatorLogic
from repro.sps.tuples import StreamTuple
from repro.sps.types import DataType, Field, Schema

__all__ = ["INFO", "build", "SpikeLogic"]

INFO = AppInfo(
    abbrev="SD",
    name="Spike Detection",
    area="IoT sensing",
    description="Alerts when a sensor reading exceeds 1.8x its own "
    "moving average",
    uses_udo=True,
    data_intensity=DataIntensity.HIGH,
    origin="DSPBench [13] / RIoTBench [52]",
)

_NUM_SENSORS = 128

_SCHEMA = Schema(
    [Field("sensor", DataType.INT), Field("value", DataType.DOUBLE)]
)


def _sample_reading(rng: np.random.Generator) -> tuple:
    sensor = int(rng.integers(_NUM_SENSORS))
    value = float(max(rng.normal(20.0 + sensor % 10, 3.0), 0.0))
    if rng.random() < 0.02:
        value *= float(rng.uniform(2.0, 4.0))  # genuine spikes
    return (sensor, value)


class SpikeLogic(OperatorLogic):
    """Per-sensor moving average over the last ``window`` readings.

    Emits ``(sensor, value, moving_avg)`` when
    ``value > threshold * moving_avg``.
    """

    def __init__(self, window: int = 64, threshold: float = 1.8) -> None:
        self._history: dict[int, deque] = {}
        self._sums: dict[int, float] = {}
        self.window = window
        self.threshold = threshold

    def process(
        self, tup: StreamTuple, now: float, port: int = 0
    ) -> list[StreamTuple]:
        sensor, value = tup.values
        history = self._history.setdefault(sensor, deque())
        total = self._sums.get(sensor, 0.0)
        history.append(value)
        total += value
        if len(history) > self.window:
            total -= history.popleft()
        self._sums[sensor] = total
        average = total / len(history)
        if len(history) >= 4 and value > self.threshold * average:
            return [tup.with_values((sensor, value, average))]
        return []


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the SD dataflow at parallelism 1."""
    plan = LogicalPlan("SD")
    plan.add_operator(
        builders.source(
            "sensors",
            make_generator(_SCHEMA, _sample_reading),
            _SCHEMA,
            event_rate,
        )
    )
    spike = builders.udo(
        "spike",
        SpikeLogic,
        selectivity=0.02,
        cost_scale=9.0,  # history maintenance per reading, per sensor
        name="moving-average spike detector",
        output_schema=Schema(
            [
                Field("sensor", DataType.INT),
                Field("value", DataType.DOUBLE),
                Field("average", DataType.DOUBLE),
            ]
        ),
    )
    spike.metadata["key_field"] = 0
    spike.metadata["key_cardinality"] = _NUM_SENSORS
    plan.add_operator(spike)
    plan.add_operator(builders.sink("sink"))
    plan.connect("sensors", "spike")
    plan.connect("spike", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
