"""TPC-H (TPCH) — streaming adaptation of the pricing summary query.

Table 2 lists TPC-H under e-commerce. We stream lineitem-like tuples and
run the Q1-style pricing summary: filter by ship-date horizon, then sum
discounted revenue per (returnflag, linestatus) group over tumbling
windows. Dataflow::

    lineitems -> filter(shipdate <= horizon) -> map(revenue) ->
    window sum(revenue) per group -> sink
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppInfo, AppQuery, DataIntensity, make_generator
from repro.sps import builders
from repro.sps.logical import LogicalPlan
from repro.sps.predicates import FilterFunction, Predicate
from repro.sps.types import DataType, Field, Schema
from repro.sps.windows import AggregateFunction, TumblingTimeWindows

__all__ = ["INFO", "build"]

INFO = AppInfo(
    abbrev="TPCH",
    name="TPC-H Pricing Summary",
    area="E-commerce",
    description="Streaming TPC-H Q1: windowed revenue summary of "
    "lineitems grouped by return flag and line status",
    uses_udo=False,
    data_intensity=DataIntensity.LOW,
    origin="TPC-H [10]",
)

#: (returnflag, linestatus) combinations: R/F, N/F, N/O, A/F.
_NUM_GROUPS = 4
_SHIPDATE_HORIZON = 90  # days, filters ~75% of a 120-day spread

_SCHEMA = Schema(
    [
        Field("group_key", DataType.INT),
        Field("shipdate", DataType.INT),
        Field("quantity", DataType.DOUBLE),
        Field("extendedprice", DataType.DOUBLE),
        Field("discount", DataType.DOUBLE),
    ]
)


def _sample_lineitem(rng: np.random.Generator) -> tuple:
    return (
        int(rng.integers(_NUM_GROUPS)),
        int(rng.integers(120)),
        float(rng.integers(1, 50)),
        float(rng.uniform(900.0, 105_000.0)),
        float(rng.uniform(0.0, 0.1)),
    )


def _revenue(values: tuple) -> tuple:
    group_key, shipdate, quantity, price, discount = values
    return (group_key, price * (1.0 - discount))


def build(
    event_rate: float = 100_000.0, seed: int = 0, space=None
) -> AppQuery:
    """Build the TPCH dataflow at parallelism 1."""
    plan = LogicalPlan("TPCH")
    plan.add_operator(
        builders.source(
            "lineitems",
            make_generator(_SCHEMA, _sample_lineitem),
            _SCHEMA,
            event_rate,
        )
    )
    plan.add_operator(
        builders.filter_op(
            "shipdate_filter",
            Predicate(
                1,
                FilterFunction.LE,
                _SHIPDATE_HORIZON,
                selectivity_hint=_SHIPDATE_HORIZON / 120.0,
            ),
        )
    )
    plan.add_operator(
        builders.map_op(
            "revenue",
            _revenue,
            output_schema=Schema(
                [
                    Field("group_key", DataType.INT),
                    Field("revenue", DataType.DOUBLE),
                ]
            ),
        )
    )
    summary = builders.window_agg(
        "pricing_summary",
        TumblingTimeWindows(0.5),
        AggregateFunction.SUM,
        value_field=1,
        key_field=0,
        selectivity=0.001,
    )
    summary.metadata["key_cardinality"] = _NUM_GROUPS
    plan.add_operator(summary)
    plan.add_operator(builders.sink("sink"))
    plan.connect("lineitems", "shipdate_filter")
    plan.connect("shipdate_filter", "revenue")
    plan.connect("revenue", "pricing_summary")
    plan.connect("pricing_summary", "sink")
    return AppQuery(plan=plan, info=INFO, event_rate=event_rate)
