"""The PDSP-Bench application suite (paper Table 2).

14 real-world applications spanning text analytics, monitoring,
transportation, social media, smart grid, IoT, e-commerce, advertising,
web analytics and finance, plus the 9 synthetic query structures of
:mod:`repro.workload.querygen`. Each application module exposes an ``INFO``
record and a ``build(event_rate, seed)`` function returning an
:class:`~repro.apps.base.AppQuery` at parallelism 1.

>>> from repro import apps
>>> query = apps.build_app("WC", event_rate=10_000)
>>> sorted(apps.REGISTRY)[:4]
['AD', 'BI', 'CA', 'FD']
"""

from __future__ import annotations

from collections.abc import Callable

from repro.apps import (
    ad_analytics,
    bargain_index,
    click_analytics,
    fraud_detection,
    linear_road,
    log_processing,
    machine_outlier,
    sentiment,
    smart_grid,
    spike_detection,
    taxi,
    tpch,
    trending_topics,
    wordcount,
)
from repro.apps.base import AppInfo, AppQuery, DataIntensity
from repro.common.errors import ConfigurationError

__all__ = [
    "AppInfo",
    "AppQuery",
    "DataIntensity",
    "REGISTRY",
    "APP_INFOS",
    "build_app",
    "app_info",
]

_MODULES = (
    wordcount,
    machine_outlier,
    linear_road,
    sentiment,
    smart_grid,
    spike_detection,
    tpch,
    ad_analytics,
    click_analytics,
    trending_topics,
    log_processing,
    taxi,
    fraud_detection,
    bargain_index,
)

#: abbreviation -> builder function
REGISTRY: dict[str, Callable[..., AppQuery]] = {
    module.INFO.abbrev: module.build for module in _MODULES
}

#: abbreviation -> metadata record (one per Table 2 row)
APP_INFOS: dict[str, AppInfo] = {
    module.INFO.abbrev: module.INFO for module in _MODULES
}


def build_app(
    abbrev: str, event_rate: float = 100_000.0, seed: int = 0
) -> AppQuery:
    """Build one application's dataflow by its Table 2 abbreviation."""
    try:
        builder = REGISTRY[abbrev]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise ConfigurationError(
            f"unknown application {abbrev!r}; suite has: {known}"
        ) from None
    return builder(event_rate=event_rate, seed=seed)


def app_info(abbrev: str) -> AppInfo:
    """Metadata for one application."""
    try:
        return APP_INFOS[abbrev]
    except KeyError:
        known = ", ".join(sorted(APP_INFOS))
        raise ConfigurationError(
            f"unknown application {abbrev!r}; suite has: {known}"
        ) from None
